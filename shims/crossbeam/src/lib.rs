//! Offline shim for the `crossbeam` crate (see `shims/README.md`).
//!
//! Only the pieces this workspace could plausibly reach are provided:
//! `crossbeam::scope` delegating to `std::thread::scope`, and an
//! mpsc-backed `channel` module with `unbounded()`.

/// Scoped threads, delegating to `std::thread::scope`.
pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    Ok(std::thread::scope(f))
}

pub mod channel {
    //! Multi-producer channels backed by `std::sync::mpsc`.

    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub type Sender<T> = mpsc::Sender<T>;
    /// Receiving half of an unbounded channel.
    pub type Receiver<T> = mpsc::Receiver<T>;

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn scope_joins() {
        let mut x = 0;
        super::scope(|s| {
            s.spawn(|| ());
            x = 5;
        })
        .unwrap();
        assert_eq!(x, 5);
    }
}
