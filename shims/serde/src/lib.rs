//! Offline shim for the `serde` crate (see `shims/README.md`).
//!
//! Instead of serde's visitor-based data model, this shim routes every type
//! through a single self-describing [`Value`] tree: `Serialize` renders to
//! a `Value`, `Deserialize` parses from one. The `serde_json` shim then
//! maps `Value` to and from JSON text. Semantics follow real serde where
//! the workspace depends on them: externally tagged enums, field/variant
//! `rename`, container-level `try_from`/`into`, missing `Option` fields
//! deserializing to `None`, and unknown fields being ignored.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model both traits go through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer (used when the value exceeds `i64`).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders a value into the [`Value`] data model.
pub trait Serialize {
    /// The value tree for this object.
    fn to_value(&self) -> Value;
}

/// Parses a value out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent entirely. `Option` overrides
    /// this to produce `None` (mirroring serde's `missing_field`); all
    /// other types report the missing field.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------- scalars

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 && v > i64::MAX as i128 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(v as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    Value::F64(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::F64(n) => Ok(*n),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            other => Err(DeError::expected("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<(), DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Real serde deserializes `&str` zero-copy from borrowed input; the
    /// shim's owned `Value` tree can't lend out data, so the string is
    /// leaked. Only tiny static tables (provider catalogs) use this.
    fn from_value(v: &Value) -> Result<&'static str, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, got {s:?}"))),
        }
    }
}

// ----------------------------------------------------------- std wrappers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Option<T>, DeError> {
        Ok(None)
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(x) => Value::Map(vec![("Ok".to_string(), x.to_value())]),
            Err(e) => Value::Map(vec![("Err".to_string(), e.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Result<T, E>, DeError> {
        if let Some(inner) = v.get("Ok") {
            return T::from_value(inner).map(Ok);
        }
        if let Some(inner) = v.get("Err") {
            return E::from_value(inner).map(Err);
        }
        Err(DeError::expected("{\"Ok\": ..} or {\"Err\": ..}", v))
    }
}

// ------------------------------------------------------------ collections

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<std::collections::BTreeSet<T>, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort the rendered elements. HashSet
        // iteration order would otherwise leak into serialized artifacts.
        let mut values: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        values.sort_by_key(|v| format!("{v:?}"));
        Value::Seq(values)
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<std::collections::HashSet<T>, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<($($t,)+), DeError> {
                let Value::Seq(items) = v else {
                    return Err(DeError::expected("tuple sequence", v));
                };
                let expect = [$(stringify!($idx)),+].len();
                if items.len() != expect {
                    return Err(DeError(format!(
                        "expected tuple of {expect}, got {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Renders a map key: serde_json requires string keys, so the key's value
/// form must be a string (or integer, which is stringified like serde_json
/// does).
fn key_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        other => panic!("map keys must serialize to strings, got {}", other.kind()),
    }
}

fn key_from_str<K: Deserialize>(s: &str) -> Result<K, DeError> {
    // Try the string form first, then integer forms (serde_json stringifies
    // integer keys on the way out).
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    Err(DeError(format!("cannot rebuild map key from {s:?}")))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<HashMap<K, V>, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_string(k), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

// ---------------------------------------------------------------- Value
// Identity impls, mirroring real serde_json's `Value: Serialize +
// Deserialize`: a `Value` serializes as itself and deserializes by
// cloning the tree. This is what lets `serde_json::from_str::<Value>`
// parse arbitrary JSON (e.g. the committed BENCH_*.json reports in
// `bench::trend`) without a struct definition per file shape.

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ------------------------------------------------------------- std::net

impl Serialize for std::net::Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v)?
            .parse()
            .map_err(|e| DeError(format!("invalid IPv4 address: {e}")))
    }
}

impl Serialize for std::net::Ipv6Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for std::net::Ipv6Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v)?
            .parse()
            .map_err(|e| DeError(format!("invalid IPv6 address: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(7u32.to_value(), Value::I64(7));
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
        assert_eq!(u64::MAX.to_value(), Value::U64(u64::MAX));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_string().to_value(), Value::Str("x".into()));
    }

    #[test]
    fn option_missing_field_is_none() {
        assert_eq!(Option::<u8>::from_missing("f").unwrap(), None);
        assert!(u8::from_missing("f").is_err());
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&Value::I64(4)).unwrap(), Some(4));
    }

    #[test]
    fn result_externally_tagged() {
        let ok: Result<u8, String> = Ok(1);
        let err: Result<u8, String> = Err("bad".into());
        assert_eq!(ok.to_value().get("Ok"), Some(&Value::I64(1)));
        assert_eq!(err.to_value().get("Err"), Some(&Value::Str("bad".into())));
        assert_eq!(
            Result::<u8, String>::from_value(&ok.to_value()).unwrap(),
            ok
        );
        assert_eq!(
            Result::<u8, String>::from_value(&err.to_value()).unwrap(),
            err
        );
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()).unwrap(), t);
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 5u8);
        assert_eq!(
            BTreeMap::<String, u8>::from_value(&m.to_value()).unwrap(),
            m
        );
    }
}
