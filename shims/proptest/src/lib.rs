//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Deterministic generate-and-check: every `proptest!` test derives its
//! RNG seed from the test's name, draws `cases` inputs per strategy, and
//! runs the body with plain `assert!`-backed `prop_assert!` macros. No
//! shrinking — a failing case panics with the values Debug-printed by the
//! assert itself.

use rand::Rng;

pub use strategy::Strategy;

pub mod test_runner {
    //! Test configuration and RNG plumbing used by the `proptest!` macro.

    use rand::SeedableRng;

    /// The generator driving all strategies.
    pub type TestRng = rand::rngs::SmallRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// FNV-1a over the test name: a stable per-test seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// A fresh deterministic RNG.
    pub fn new_rng(seed: u64) -> TestRng {
        TestRng::seed_from_u64(seed)
    }
}

pub use test_runner::ProptestConfig;
use test_runner::TestRng;

pub mod strategy {
    //! The core [`Strategy`] trait and combinators.

    use super::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Value`.
    ///
    /// Provided combinators carry `Self: Sized` bounds so the trait stays
    /// object-safe for [`prop_oneof!`](crate::prop_oneof).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred`, re-drawing until one passes.
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy for heterogeneous unions.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.reason
            )
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!` core).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub use strategy::Just;

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace draws.

    use super::TestRng;
    use crate::strategy::Strategy;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for b in &mut out {
                *b = rng.gen();
            }
            out
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mix plain ASCII (common case) with arbitrary scalar values so
            // multi-byte boundaries and exotic planes both get exercised.
            if rng.gen::<u8>() < 160 {
                char::from(rng.gen::<u8>() & 0x7F)
            } else {
                loop {
                    let v = rng.gen::<u32>() % 0x11_0000;
                    if let Some(c) = char::from_u32(v) {
                        return c;
                    }
                }
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> String {
            let len = (rng.gen::<u32>() % 64) as usize;
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    /// Strategy yielding arbitrary `T`s.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub use arbitrary::any;

pub mod collection {
    //! Collection strategies.

    use super::TestRng;
    use crate::strategy::Strategy;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from the range.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ------------------------------------------------ string (regex) patterns

/// One atom of the mini pattern language: a character class plus a length
/// range.
struct PatternAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Parses the subset of regex syntax the workspace's patterns use:
/// character classes (`[a-z0-9-]`, ranges and literals, literal `-` last)
/// with optional `{n}` / `{n,m}` quantifiers, plus literal characters.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    set.extend((lo..=hi).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };

        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse().expect("bad quantifier"),
                    hi.parse().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };

        assert!(!choices.is_empty(), "empty class in pattern {pattern:?}");
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
            }
        }
        out
    }
}

// ----------------------------------------------------------------- macros

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = (<$crate::test_runner::ProptestConfig as Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = ($cfg:expr);
     $(
         $(#[$meta:meta])*
         fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = $crate::test_runner::new_rng(
                    $crate::test_runner::seed_from_name(stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Alias so `prop::collection::vec(...)` resolves.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::new_rng;

    #[test]
    fn pattern_strategies_respect_classes() {
        let mut rng = new_rng(1);
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,14}[a-z0-9]".generate(&mut rng);
            assert!(s.len() >= 2 && s.len() <= 16, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn printable_class_range() {
        let mut rng = new_rng(2);
        for _ in 0..100 {
            let s = "[ -~]{0,80}".generate(&mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = new_rng(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(strat.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn map_filter_tuples_and_vec() {
        let strat = crate::collection::vec(
            (0u8..10, Just("x")).prop_map(|(n, s)| format!("{s}{n}")),
            2..=5,
        )
        .prop_filter("non-empty", |v| !v.is_empty());
        let mut rng = new_rng(4);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|s| s.starts_with('x')));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, s in "[a-z]{1,4}") {
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }
    }
}
