//! Offline shim for the `serde_json` crate (see `shims/README.md`).
//!
//! Maps the serde shim's [`Value`] tree to and from JSON text. Output
//! formats mirror the real crate where tests depend on them: compact
//! rendering has no whitespace (`"k":1`), pretty rendering indents by two
//! spaces with `"k": 1` separators, and whole floats render with a
//! trailing `.0`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Alias used by callers that spell out `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// --------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() && x.fract() == 0.0 && x.abs() < 1e15 {
        out.push_str(&format!("{x:.1}"));
    } else if x.is_finite() {
        out.push_str(&format!("{x}"));
    } else {
        // serde_json rejects non-finite floats; rendering null is the
        // closest total behaviour for a shim.
        out.push_str("null");
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serializes to compact JSON (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes to pretty JSON (two-space indent, `": "` separators).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

// --------------------------------------------------------------- parsing

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = JsonParser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&value).map_err(|e| Error(e.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_has_no_spaces() {
        let m = vec![
            ("policy-type".to_string(), Value::Str("sts".to_string())),
            ("n".to_string(), Value::I64(3)),
        ];
        let mut out = String::new();
        write_compact(&mut out, &Value::Map(m));
        assert_eq!(out, r#"{"policy-type":"sts","n":3}"#);
    }

    #[test]
    fn pretty_spaces_after_colon() {
        let v = Value::Map(vec![("v".to_string(), Value::I64(7))]);
        let mut out = String::new();
        write_pretty(&mut out, &v, 0);
        assert_eq!(out, "{\n  \"v\": 7\n}");
    }

    #[test]
    fn floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":[1,-2,3.5],"b":"x\ny","c":null,"d":true}"#;
        let v: Value = {
            let mut p = JsonParser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.parse_value().unwrap()
        };
        let mut out = String::new();
        write_compact(&mut out, &v);
        assert_eq!(out, r#"{"a":[1,-2,3.5],"b":"x\ny","c":null,"d":true}"#);
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let mut m = BTreeMap::new();
        m.insert("k1".to_string(), vec![1u32, 2]);
        m.insert("k2".to_string(), vec![]);
        let json = to_string(&m).unwrap();
        let back: BTreeMap<String, Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unicode_escape_parses() {
        let s: String = from_str(r#""éA""#).unwrap();
        assert_eq!(s, "éA");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<u32>("12,").is_err());
    }
}
