//! Offline shim for the `tokio-macros` crate (see `shims/README.md`).
//!
//! Rewrites `async fn` items into synchronous wrappers that drive the
//! async body through the tokio shim's `runtime::block_on`. Flavor
//! arguments (`flavor = "multi_thread"`, `worker_threads = N`) are
//! accepted and ignored — the shim executor is always the single
//! cooperative thread.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct FnParts {
    /// Attributes (e.g. `#[ignore]`) — stay on the outer test fn.
    attrs: String,
    /// `pub` etc.
    vis: String,
    name: String,
    /// `-> Type` tokens, possibly empty.
    ret: String,
    /// `{ ... }` body.
    body: String,
}

fn parse_async_fn(item: TokenStream) -> FnParts {
    let toks: Vec<TokenTree> = item.into_iter().collect();
    let mut i = 0;

    let mut attrs = String::new();
    while matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        attrs.push_str(&toks[i].to_string());
        attrs.push_str(&toks[i + 1].to_string());
        attrs.push('\n');
        i += 2;
    }

    let mut vis = String::new();
    if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        vis.push_str("pub ");
        i += 1;
        if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            vis.push_str(&toks[i].to_string());
            vis.push(' ');
            i += 1;
        }
    }

    assert!(
        matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "async"),
        "tokio shim: #[tokio::test]/#[tokio::main] requires an async fn"
    );
    i += 1;
    assert!(
        matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "fn"),
        "tokio shim: expected `fn`"
    );
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("tokio shim: expected fn name, got {other:?}"),
    };
    i += 1;
    assert!(
        matches!(&toks.get(i), Some(TokenTree::Group(g))
            if g.delimiter() == Delimiter::Parenthesis && g.stream().is_empty()),
        "tokio shim: async test/main fns must take no arguments"
    );
    i += 1;

    let mut ret = String::new();
    let mut body = String::new();
    for tok in &toks[i..] {
        if let TokenTree::Group(g) = tok {
            if g.delimiter() == Delimiter::Brace {
                body = tok.to_string();
                continue;
            }
        }
        ret.push_str(&tok.to_string());
        ret.push(' ');
    }
    assert!(!body.is_empty(), "tokio shim: missing fn body");

    FnParts {
        attrs,
        vis,
        name,
        ret,
        body,
    }
}

fn expand(item: TokenStream, is_test: bool) -> TokenStream {
    let f = parse_async_fn(item);
    let test_attr = if is_test {
        "#[::core::prelude::v1::test]\n"
    } else {
        ""
    };
    let FnParts {
        attrs,
        vis,
        name,
        ret,
        body,
    } = f;
    format!(
        "{test_attr}{attrs}{vis}fn {name}() {ret} {{\n\
             async fn __tokio_shim_body() {ret} {body}\n\
             tokio::runtime::block_on(__tokio_shim_body())\n\
         }}"
    )
    .parse()
    .expect("tokio shim: generated wrapper failed to parse")
}

/// Shim for `#[tokio::test]`.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    expand(item, true)
}

/// Shim for `#[tokio::main]`.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    expand(item, false)
}
