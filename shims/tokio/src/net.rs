//! Async adapters over std nonblocking sockets.
//!
//! No reactor: `WouldBlock` maps to `Pending` and the tick-based executor
//! re-polls shortly after, which is plenty for loopback test traffic.

use crate::io::{AsyncRead, AsyncWrite, ReadBuf};
use std::future::poll_fn;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, ToSocketAddrs};
use std::pin::Pin;
use std::task::{Context, Poll};

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
    )
}

/// Async TCP connection over a nonblocking std socket.
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connects to `addr` (blocking connect, then nonblocking IO — fine
    /// for the loopback addresses this workspace talks to).
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nonblocking(true)?;
        Ok(TcpStream { inner: stream })
    }

    pub(crate) fn from_std(inner: std::net::TcpStream) -> io::Result<TcpStream> {
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// Local socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Remote socket address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }
}

impl AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        match this.inner.read(buf.initialize_unfilled()) {
            Ok(n) => {
                buf.advance(n);
                Poll::Ready(Ok(()))
            }
            Err(e) if would_block(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let this = self.get_mut();
        match this.inner.write(buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if would_block(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        match self.get_mut().inner.flush() {
            Ok(()) => Poll::Ready(Ok(())),
            Err(e) if would_block(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        // NotConnected after the peer already went away is a non-event.
        match self.get_mut().inner.shutdown(Shutdown::Write) {
            Ok(()) | Err(_) => Poll::Ready(Ok(())),
        }
    }
}

/// Async TCP listener over a nonblocking std socket.
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Binds to `addr`.
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// Bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accepts one connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        poll_fn(|_cx| match self.inner.accept() {
            Ok((stream, peer)) => Poll::Ready(TcpStream::from_std(stream).map(|s| (s, peer))),
            Err(e) if would_block(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}

/// Async UDP socket over a nonblocking std socket.
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    /// Binds to `addr`.
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<UdpSocket> {
        let inner = std::net::UdpSocket::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(UdpSocket { inner })
    }

    /// Bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Receives one datagram.
    pub async fn recv_from(&self, buf: &mut [u8]) -> io::Result<(usize, SocketAddr)> {
        poll_fn(|_cx| match self.inner.recv_from(buf) {
            Ok(out) => Poll::Ready(Ok(out)),
            Err(e) if would_block(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }

    /// Sends one datagram to `target`.
    pub async fn send_to<A: ToSocketAddrs>(&self, buf: &[u8], target: A) -> io::Result<usize> {
        let addr = target
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        poll_fn(|_cx| match self.inner.send_to(buf, addr) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if would_block(&e) => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        })
        .await
    }
}
