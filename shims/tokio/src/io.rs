//! Async IO traits, adapters, and the in-memory duplex pipe.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::poll_fn;
use std::io;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

// ----------------------------------------------------------------- traits

/// A byte buffer being filled by a reader (real-tokio signature subset).
pub struct ReadBuf<'a> {
    buf: &'a mut [u8],
    filled: usize,
}

impl<'a> ReadBuf<'a> {
    /// Wraps a fully initialized buffer.
    pub fn new(buf: &'a mut [u8]) -> ReadBuf<'a> {
        ReadBuf { buf, filled: 0 }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Bytes not yet filled.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.filled
    }

    /// The filled prefix.
    pub fn filled(&self) -> &[u8] {
        &self.buf[..self.filled]
    }

    /// The filled prefix, mutably.
    pub fn filled_mut(&mut self) -> &mut [u8] {
        &mut self.buf[..self.filled]
    }

    /// The unfilled suffix (already initialized in this shim).
    pub fn initialize_unfilled(&mut self) -> &mut [u8] {
        &mut self.buf[self.filled..]
    }

    /// Marks `n` more bytes as filled.
    pub fn advance(&mut self, n: usize) {
        assert!(self.filled + n <= self.buf.len(), "ReadBuf overfill");
        self.filled += n;
    }

    /// Appends bytes to the filled region.
    pub fn put_slice(&mut self, src: &[u8]) {
        let end = self.filled + src.len();
        assert!(end <= self.buf.len(), "ReadBuf overfill");
        self.buf[self.filled..end].copy_from_slice(src);
        self.filled = end;
    }
}

/// Nonblocking read into a [`ReadBuf`]; `Ok(())` with nothing filled
/// means EOF.
pub trait AsyncRead {
    /// Attempts the read.
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>>;
}

/// Nonblocking write/flush/shutdown.
pub trait AsyncWrite {
    /// Attempts to write from `buf`, returning bytes accepted.
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>>;

    /// Attempts to flush buffered data.
    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;

    /// Attempts a graceful write-side shutdown.
    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>>;
}

/// Buffered reading: exposes the internal buffer.
pub trait AsyncBufRead: AsyncRead {
    /// Fills and returns the internal buffer.
    fn poll_fill_buf(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<&[u8]>>;

    /// Consumes `amt` bytes from the internal buffer.
    fn consume(self: Pin<&mut Self>, amt: usize);
}

impl<T: AsyncRead + Unpin + ?Sized> AsyncRead for &mut T {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_read(cx, buf)
    }
}

impl<T: AsyncWrite + Unpin + ?Sized> AsyncWrite for &mut T {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        Pin::new(&mut **self.get_mut()).poll_write(cx, buf)
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_flush(cx)
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut **self.get_mut()).poll_shutdown(cx)
    }
}

// ------------------------------------------------------------ extensions

/// Read helpers, blanket-implemented for every `AsyncRead + Unpin`.
pub trait AsyncReadExt: AsyncRead + Unpin {
    /// Reads some bytes, returning the count (0 = EOF).
    fn read(&mut self, buf: &mut [u8]) -> impl std::future::Future<Output = io::Result<usize>> {
        async move {
            poll_fn(|cx| {
                let mut rb = ReadBuf::new(buf);
                match Pin::new(&mut *self).poll_read(cx, &mut rb) {
                    Poll::Ready(Ok(())) => Poll::Ready(Ok(rb.filled().len())),
                    Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
                    Poll::Pending => Poll::Pending,
                }
            })
            .await
        }
    }

    /// Fills `buf` entirely or fails with `UnexpectedEof`.
    fn read_exact(
        &mut self,
        buf: &mut [u8],
    ) -> impl std::future::Future<Output = io::Result<usize>> {
        async move {
            let mut done = 0;
            while done < buf.len() {
                let n = self.read(&mut buf[done..]).await?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "early eof in read_exact",
                    ));
                }
                done += n;
            }
            Ok(done)
        }
    }

    /// Reads one byte.
    fn read_u8(&mut self) -> impl std::future::Future<Output = io::Result<u8>> {
        async move {
            let mut b = [0u8; 1];
            self.read_exact(&mut b).await?;
            Ok(b[0])
        }
    }

    /// Reads until EOF, appending to `buf`.
    fn read_to_end(
        &mut self,
        buf: &mut Vec<u8>,
    ) -> impl std::future::Future<Output = io::Result<usize>> {
        async move {
            let mut total = 0;
            let mut chunk = [0u8; 4096];
            loop {
                let n = self.read(&mut chunk).await?;
                if n == 0 {
                    return Ok(total);
                }
                buf.extend_from_slice(&chunk[..n]);
                total += n;
            }
        }
    }
}

impl<T: AsyncRead + Unpin + ?Sized> AsyncReadExt for T {}

/// Write helpers, blanket-implemented for every `AsyncWrite + Unpin`.
pub trait AsyncWriteExt: AsyncWrite + Unpin {
    /// Writes some bytes, returning the count accepted.
    fn write(&mut self, buf: &[u8]) -> impl std::future::Future<Output = io::Result<usize>> {
        async move { poll_fn(|cx| Pin::new(&mut *self).poll_write(cx, buf)).await }
    }

    /// Writes all of `buf`.
    fn write_all(&mut self, buf: &[u8]) -> impl std::future::Future<Output = io::Result<()>> {
        async move {
            let mut done = 0;
            while done < buf.len() {
                let n = poll_fn(|cx| Pin::new(&mut *self).poll_write(cx, &buf[done..])).await?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "write_all made no progress",
                    ));
                }
                done += n;
            }
            Ok(())
        }
    }

    /// Flushes buffered data.
    fn flush(&mut self) -> impl std::future::Future<Output = io::Result<()>> {
        async move { poll_fn(|cx| Pin::new(&mut *self).poll_flush(cx)).await }
    }

    /// Gracefully shuts down the write side.
    fn shutdown(&mut self) -> impl std::future::Future<Output = io::Result<()>> {
        async move {
            poll_fn(|cx| Pin::new(&mut *self).poll_flush(cx)).await?;
            poll_fn(|cx| Pin::new(&mut *self).poll_shutdown(cx)).await
        }
    }
}

impl<T: AsyncWrite + Unpin + ?Sized> AsyncWriteExt for T {}

/// Buffered-read helpers.
pub trait AsyncBufReadExt: AsyncBufRead + Unpin {
    /// Appends one line (including the `\n`) to `dst`; returns bytes read
    /// (0 = EOF).
    fn read_line(
        &mut self,
        dst: &mut String,
    ) -> impl std::future::Future<Output = io::Result<usize>> {
        async move {
            let mut total = 0;
            loop {
                let (consumed, finished, chunk) = {
                    let avail = poll_fn(|cx| {
                        Pin::new(&mut *self)
                            .poll_fill_buf(cx)
                            .map(|r| r.map(Vec::from))
                    })
                    .await?;
                    if avail.is_empty() {
                        return Ok(total);
                    }
                    match avail.iter().position(|&b| b == b'\n') {
                        Some(i) => (i + 1, true, avail[..=i].to_vec()),
                        None => (avail.len(), false, avail),
                    }
                };
                Pin::new(&mut *self).consume(consumed);
                dst.push_str(std::str::from_utf8(&chunk).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "stream is not UTF-8")
                })?);
                total += consumed;
                if finished {
                    return Ok(total);
                }
            }
        }
    }

    /// Splits the stream into lines (terminators stripped).
    fn lines(self) -> Lines<Self>
    where
        Self: Sized,
    {
        Lines { reader: self }
    }
}

impl<T: AsyncBufRead + Unpin + ?Sized> AsyncBufReadExt for T {}

/// Line iterator over a buffered reader.
pub struct Lines<R> {
    reader: R,
}

impl<R: AsyncBufRead + Unpin> Lines<R> {
    /// The next line, `None` at EOF.
    pub async fn next_line(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).await?;
        if n == 0 {
            return Ok(None);
        }
        if line.ends_with('\n') {
            line.pop();
            if line.ends_with('\r') {
                line.pop();
            }
        }
        Ok(Some(line))
    }
}

// -------------------------------------------------------------- BufReader

/// Buffered wrapper adding [`AsyncBufRead`] to any reader.
pub struct BufReader<R> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
}

impl<R: AsyncRead + Unpin> BufReader<R> {
    /// Wraps `inner` with an internal buffer.
    pub fn new(inner: R) -> BufReader<R> {
        BufReader {
            inner,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The wrapped reader.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Shared access to the wrapped reader.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Mutable access to the wrapped reader. Writing through this is
    /// safe (the buffer only holds *read* data), which is how the SMTP
    /// code reuses one duplex stream for both directions.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: AsyncRead + Unpin> AsyncRead for BufReader<R> {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let this = self.get_mut();
        if this.pos < this.buf.len() {
            let n = (this.buf.len() - this.pos).min(buf.remaining());
            buf.put_slice(&this.buf[this.pos..this.pos + n]);
            this.pos += n;
            return Poll::Ready(Ok(()));
        }
        Pin::new(&mut this.inner).poll_read(cx, buf)
    }
}

impl<R: AsyncRead + Unpin> AsyncBufRead for BufReader<R> {
    fn poll_fill_buf(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<&[u8]>> {
        let this = self.get_mut();
        if this.pos >= this.buf.len() {
            this.buf.clear();
            this.pos = 0;
            let mut chunk = [0u8; 4096];
            let mut rb = ReadBuf::new(&mut chunk);
            match Pin::new(&mut this.inner).poll_read(cx, &mut rb) {
                Poll::Ready(Ok(())) => this.buf.extend_from_slice(rb.filled()),
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
        Poll::Ready(Ok(&this.buf[this.pos..]))
    }

    fn consume(self: Pin<&mut Self>, amt: usize) {
        let this = self.get_mut();
        this.pos = (this.pos + amt).min(this.buf.len());
    }
}

// ------------------------------------------------------------------ split

/// Read half from [`split`].
pub struct ReadHalf<S> {
    shared: Rc<RefCell<S>>,
}

/// Write half from [`split`].
pub struct WriteHalf<S> {
    shared: Rc<RefCell<S>>,
}

/// Splits a stream into independently usable read and write halves
/// (same-thread only, matching this shim's single-threaded executor).
pub fn split<S>(stream: S) -> (ReadHalf<S>, WriteHalf<S>)
where
    S: AsyncRead + AsyncWrite + Unpin,
{
    let shared = Rc::new(RefCell::new(stream));
    (
        ReadHalf {
            shared: Rc::clone(&shared),
        },
        WriteHalf { shared },
    )
}

impl<S: AsyncRead + Unpin> AsyncRead for ReadHalf<S> {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        Pin::new(&mut *self.shared.borrow_mut()).poll_read(cx, buf)
    }
}

impl<S: AsyncWrite + Unpin> AsyncWrite for WriteHalf<S> {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        Pin::new(&mut *self.shared.borrow_mut()).poll_write(cx, buf)
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut *self.shared.borrow_mut()).poll_flush(cx)
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Pin::new(&mut *self.shared.borrow_mut()).poll_shutdown(cx)
    }
}

// ----------------------------------------------------------------- duplex

/// One direction of a duplex pipe.
struct Pipe {
    buffer: VecDeque<u8>,
    capacity: usize,
    closed: bool,
}

impl Pipe {
    fn new(capacity: usize) -> Rc<RefCell<Pipe>> {
        Rc::new(RefCell::new(Pipe {
            buffer: VecDeque::new(),
            capacity,
            closed: false,
        }))
    }
}

/// One endpoint of an in-memory, bidirectional, bounded byte pipe.
pub struct DuplexStream {
    read: Rc<RefCell<Pipe>>,
    write: Rc<RefCell<Pipe>>,
}

/// Creates a connected pair of duplex streams with `max_buf_size` bytes
/// of buffer in each direction.
pub fn duplex(max_buf_size: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b = Pipe::new(max_buf_size);
    let b_to_a = Pipe::new(max_buf_size);
    (
        DuplexStream {
            read: Rc::clone(&b_to_a),
            write: Rc::clone(&a_to_b),
        },
        DuplexStream {
            read: a_to_b,
            write: b_to_a,
        },
    )
}

impl AsyncRead for DuplexStream {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<io::Result<()>> {
        let mut pipe = self.read.borrow_mut();
        if !pipe.buffer.is_empty() {
            let n = pipe.buffer.len().min(buf.remaining());
            for _ in 0..n {
                let byte = pipe.buffer.pop_front().unwrap();
                buf.put_slice(&[byte]);
            }
            return Poll::Ready(Ok(()));
        }
        if pipe.closed {
            // EOF: ready with nothing filled.
            return Poll::Ready(Ok(()));
        }
        Poll::Pending
    }
}

impl AsyncWrite for DuplexStream {
    fn poll_write(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<io::Result<usize>> {
        let mut pipe = self.write.borrow_mut();
        if pipe.closed {
            return Poll::Ready(Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed",
            )));
        }
        let space = pipe.capacity.saturating_sub(pipe.buffer.len());
        if space == 0 {
            return Poll::Pending;
        }
        let n = space.min(buf.len());
        pipe.buffer.extend(&buf[..n]);
        Poll::Ready(Ok(n))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<io::Result<()>> {
        self.write.borrow_mut().closed = true;
        Poll::Ready(Ok(()))
    }
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        // Closing both directions gives the peer EOF on read and
        // `BrokenPipe` on write, like real tokio.
        self.write.borrow_mut().closed = true;
        self.read.borrow_mut().closed = true;
    }
}
