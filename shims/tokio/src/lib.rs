//! Offline shim for the `tokio` crate (see `shims/README.md`).
//!
//! A single-threaded cooperative runtime: [`runtime::block_on`] drives the
//! root future plus every [`spawn`]ed task, re-polling on a short tick so
//! nonblocking std sockets (which return `WouldBlock` → `Pending`) make
//! progress without an epoll reactor. `flavor = "multi_thread"` test
//! annotations run on this single thread — the workspace's servers are
//! short-lived test fixtures, so cooperative scheduling suffices.

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;

pub use task::spawn;
pub use tokio_macros::{main, test};

/// Two-future select used by the [`select!`] macro.
pub mod future {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::Poll;

    /// Which branch completed first.
    pub enum Either<A, B> {
        /// The first future finished.
        A(A),
        /// The second future finished.
        B(B),
    }

    /// Resolves to whichever of the two futures completes first, polling
    /// the first one with priority (like `tokio::select!` in `biased`
    /// mode — deterministic, which this workspace prefers anyway).
    pub async fn select2<FA, FB>(
        mut a: Pin<&mut FA>,
        mut b: Pin<&mut FB>,
    ) -> Either<FA::Output, FB::Output>
    where
        FA: Future,
        FB: Future,
    {
        std::future::poll_fn(move |cx| {
            if let Poll::Ready(x) = a.as_mut().poll(cx) {
                return Poll::Ready(Either::A(x));
            }
            if let Poll::Ready(x) = b.as_mut().poll(cx) {
                return Poll::Ready(Either::B(x));
            }
            Poll::Pending
        })
        .await
    }
}

/// Two-branch `select!` covering the `pat = future => body` form the
/// workspace's servers use.
#[macro_export]
macro_rules! select {
    ($p1:pat = $f1:expr => $b1:expr, $p2:pat = $f2:expr => $b2:expr $(,)?) => {{
        // Inner block so the futures (and any borrows they hold) are
        // dropped before an arm body runs, like real tokio's select!.
        let __select_result = {
            let mut __select_fut1 = std::pin::pin!($f1);
            let mut __select_fut2 = std::pin::pin!($f2);
            $crate::future::select2(__select_fut1.as_mut(), __select_fut2.as_mut()).await
        };
        match __select_result {
            $crate::future::Either::A($p1) => $b1,
            $crate::future::Either::B($p2) => $b2,
        }
    }};
}
