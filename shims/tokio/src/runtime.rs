//! The cooperative single-threaded executor.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

pub(crate) struct TaskEntry {
    pub(crate) fut: Pin<Box<dyn Future<Output = ()>>>,
    pub(crate) aborted: Rc<std::cell::Cell<bool>>,
}

thread_local! {
    /// `Some` while a `block_on` call is live on this thread; spawned
    /// tasks queue here until the executor adopts them.
    static SPAWN_QUEUE: RefCell<Option<Vec<TaskEntry>>> = const { RefCell::new(None) };
}

pub(crate) fn enqueue(task: TaskEntry) {
    SPAWN_QUEUE.with(|q| match q.borrow_mut().as_mut() {
        Some(queue) => queue.push(task),
        None => panic!("tokio shim: spawn called outside of a runtime context"),
    });
}

fn drain_spawned() -> Vec<TaskEntry> {
    SPAWN_QUEUE.with(|q| {
        q.borrow_mut()
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    })
}

struct RuntimeGuard;

impl Drop for RuntimeGuard {
    fn drop(&mut self) {
        SPAWN_QUEUE.with(|q| *q.borrow_mut() = None);
    }
}

/// Runs `fut` to completion, cooperatively driving every spawned task.
///
/// Tasks still pending when the root future finishes are dropped, which
/// is how the workspace's ephemeral test servers get torn down.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    SPAWN_QUEUE.with(|q| {
        let mut slot = q.borrow_mut();
        assert!(
            slot.is_none(),
            "tokio shim: nested block_on on one thread is not supported"
        );
        *slot = Some(Vec::new());
    });
    let _guard = RuntimeGuard;

    let waker = Waker::noop();
    let mut cx = Context::from_waker(waker);
    let mut root = Box::pin(fut);
    let mut tasks: Vec<TaskEntry> = Vec::new();

    loop {
        tasks.extend(drain_spawned());

        if let Poll::Ready(out) = root.as_mut().poll(&mut cx) {
            return out;
        }

        let mut progressed = false;
        let mut i = 0;
        while i < tasks.len() {
            if tasks[i].aborted.get() {
                tasks.swap_remove(i);
                progressed = true;
                continue;
            }
            match tasks[i].fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    tasks.swap_remove(i);
                    progressed = true;
                }
                Poll::Pending => i += 1,
            }
        }

        if !progressed {
            // Nothing completed this tick: yield briefly so nonblocking
            // socket retries don't spin a core.
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
}
