//! Task spawning and join handles.

use crate::runtime::{enqueue, TaskEntry};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::future::Future;
use std::panic::AssertUnwindSafe;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::mpsc;
use std::task::{Context, Poll};

/// A task failed to produce a value (aborted or panicked).
#[derive(Debug)]
pub struct JoinError(&'static str);

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task failed: {}", self.0)
    }
}

impl std::error::Error for JoinError {}

enum Inner<T> {
    Local {
        result: Rc<RefCell<Option<T>>>,
        aborted: Rc<Cell<bool>>,
    },
    Thread(mpsc::Receiver<std::thread::Result<T>>),
}

/// Awaits a spawned task's output.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Cancels the task: the executor drops it before its next poll.
    pub fn abort(&self) {
        if let Inner::Local { aborted, .. } = &self.inner {
            aborted.set(true);
        }
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        match &self.get_mut().inner {
            Inner::Local { result, aborted } => {
                if let Some(v) = result.borrow_mut().take() {
                    return Poll::Ready(Ok(v));
                }
                if aborted.get() {
                    return Poll::Ready(Err(JoinError("aborted")));
                }
                Poll::Pending
            }
            Inner::Thread(rx) => match rx.try_recv() {
                Ok(Ok(v)) => Poll::Ready(Ok(v)),
                Ok(Err(_)) => Poll::Ready(Err(JoinError("panicked"))),
                Err(mpsc::TryRecvError::Empty) => Poll::Pending,
                Err(mpsc::TryRecvError::Disconnected) => {
                    Poll::Ready(Err(JoinError("worker thread vanished")))
                }
            },
        }
    }
}

/// Spawns a future onto the current runtime.
///
/// Single-threaded executor, so no `Send` bound — strictly more
/// permissive than real tokio, which the workspace satisfies anyway.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let result = Rc::new(RefCell::new(None));
    let aborted = Rc::new(Cell::new(false));
    let result_in_task = Rc::clone(&result);
    enqueue(TaskEntry {
        fut: Box::pin(async move {
            let out = fut.await;
            *result_in_task.borrow_mut() = Some(out);
        }),
        aborted: Rc::clone(&aborted),
    });
    JoinHandle {
        inner: Inner::Local { result, aborted },
    }
}

/// Runs a blocking closure on a dedicated OS thread.
pub fn spawn_blocking<F, R>(f: F) -> JoinHandle<R>
where
    F: FnOnce() -> R + Send + 'static,
    R: Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(std::panic::catch_unwind(AssertUnwindSafe(f)));
    });
    JoinHandle {
        inner: Inner::Thread(rx),
    }
}

/// Yields once back to the executor.
pub async fn yield_now() {
    let mut yielded = false;
    std::future::poll_fn(move |_cx| {
        if yielded {
            Poll::Ready(())
        } else {
            yielded = true;
            Poll::Pending
        }
    })
    .await
}
