//! Synchronization primitives (watch channel only — all this workspace
//! uses).

pub mod watch {
    //! Single-producer, multi-consumer "latest value" channel.

    use std::future::poll_fn;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};
    use std::task::Poll;

    /// Channel errors.
    pub mod error {
        /// The channel closed with no receivers.
        #[derive(Debug)]
        pub struct SendError<T>(pub T);

        /// The sender dropped with no new value observed.
        #[derive(Debug)]
        pub struct RecvError(pub(crate) ());
    }

    struct Shared<T> {
        value: Mutex<T>,
        version: AtomicU64,
        sender_gone: AtomicBool,
    }

    /// Sends replacement values.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Observes the latest value.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
        seen: u64,
    }

    /// Creates a watch channel holding `initial`.
    pub fn channel<T>(initial: T) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            value: Mutex::new(initial),
            version: AtomicU64::new(0),
            sender_gone: AtomicBool::new(false),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared, seen: 0 },
        )
    }

    impl<T> Sender<T> {
        /// Replaces the value and notifies receivers.
        pub fn send(&self, value: T) -> Result<(), error::SendError<T>> {
            *self.shared.value.lock().unwrap() = value;
            self.shared.version.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.sender_gone.store(true, Ordering::SeqCst);
        }
    }

    impl<T: Clone> Receiver<T> {
        /// A clone of the current value.
        pub fn borrow(&self) -> T {
            self.shared.value.lock().unwrap().clone()
        }
    }

    impl<T> Receiver<T> {
        /// Waits for a value newer than the last one seen; errors once
        /// the sender is gone.
        pub async fn changed(&mut self) -> Result<(), error::RecvError> {
            poll_fn(|_cx| {
                let current = self.shared.version.load(Ordering::SeqCst);
                if current != self.seen {
                    self.seen = current;
                    return Poll::Ready(Ok(()));
                }
                if self.shared.sender_gone.load(Ordering::SeqCst) {
                    return Poll::Ready(Err(error::RecvError(())));
                }
                Poll::Pending
            })
            .await
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                shared: Arc::clone(&self.shared),
                seen: self.seen,
            }
        }
    }
}
