//! Offline shim for the `criterion` crate (see `shims/README.md`).
//!
//! A minimal wall-clock harness: each `bench_function` runs a short warmup,
//! then `sample_size` timed batches, and prints the mean per-iteration
//! time. No statistics beyond the mean — enough to keep the workspace's
//! bench targets compiling and producing usable relative numbers offline.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (tests import the std one).
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not differentiated).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures handed over by benchmark bodies.
pub struct Bencher {
    samples: u64,
    iters_per_sample: u64,
    total: Duration,
    total_iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: aim for samples of at least ~1ms.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        self.iters_per_sample =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.total += start.elapsed();
            self.total_iters += self.iters_per_sample;
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// cost from the reported time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.total_iters += 1;
        }
    }

    fn mean(&self) -> Duration {
        if self.total_iters == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.total_iters.min(u64::from(u32::MAX))).unwrap_or(1)
        }
    }
}

/// The benchmark registry/config handle.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let mut b = Bencher {
            samples: self.sample_size,
            iters_per_sample: 1,
            total: Duration::ZERO,
            total_iters: 0,
        };
        f(&mut b);
        println!("{id}: {:?}/iter ({} iters)", b.mean(), b.total_iters);
        self
    }

    /// Final hook (the real crate prints summaries here).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group (`name`/`config`/`targets` form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
