//! Offline shim for the `rand` crate (see `shims/README.md`).
//!
//! Provides a deterministic [`rngs::SmallRng`] driven by a splitmix64 core
//! and the `Rng`/`SeedableRng`/`SliceRandom` surface this workspace uses.
//! Value streams differ from the real crate (the workspace only relies on
//! determinism and uniformity, never on specific sequences).

/// Low-level RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from an RNG via [`Rng::gen`] (the shim's
/// stand-in for `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiplies a uniform `u64` into `[0, n)` without modulo bias worth
/// caring about (Lemire's multiply-shift).
fn bounded(rng_out: u64, n: u64) -> u64 {
    ((u128::from(rng_out) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range over empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range over empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level drawing interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from the "standard" distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64 core).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..4).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            // mean 10_000, sd ≈ 94; allow ±6 sd.
            assert!((9_400..=10_600).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SmallRng::seed_from_u64(4);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut r).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
