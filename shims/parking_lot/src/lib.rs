//! Offline shim for the `parking_lot` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of external crates are replaced by local shims (see
//! `shims/README.md`). This one wraps `std::sync` primitives with
//! parking_lot's non-poisoning API: `lock()`/`read()`/`write()` return
//! guards directly, and a poisoned std lock (a panic while held) is
//! recovered rather than propagated, matching parking_lot's semantics of
//! not poisoning at all.

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
