//! Offline shim for the `serde_derive` crate (see `shims/README.md`).
//!
//! A hand-rolled token parser (no `syn`/`quote`) that expands
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the shapes the
//! workspace actually contains: non-generic named-field structs, tuple
//! structs, and enums with unit, tuple, and struct variants. Supported
//! attributes: field/variant `#[serde(rename = "...")]` and the container
//! pair `#[serde(try_from = "T", into = "T")]`. Output targets the
//! `Value`-based traits in the `serde` shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    try_from: Option<String>,
    into: Option<String>,
}

struct Field {
    ident: String,
    wire_name: String,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    ident: String,
    wire_name: String,
    shape: VariantShape,
}

enum Body {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    body: Body,
}

/// Pulls `key = "value"` pairs and bare flags out of a `serde(...)` group.
fn parse_serde_args(group: &proc_macro::Group) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        let TokenTree::Ident(key) = &toks[i] else {
            i += 1;
            continue;
        };
        let key = key.to_string();
        if i + 2 < toks.len() && matches!(&toks[i + 1], TokenTree::Punct(p) if p.as_char() == '=') {
            let lit = toks[i + 2].to_string();
            let val = lit.trim_matches('"').to_string();
            out.push((key, Some(val)));
            i += 3;
        } else {
            out.push((key, None));
            i += 1;
        }
    }
    out
}

/// A cursor over the item's top-level tokens.
struct Parser {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    /// Consumes attributes, returning any `serde(...)` key/value pairs.
    fn take_attrs(&mut self) -> Vec<(String, Option<String>)> {
        let mut out = Vec::new();
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("serde shim derive: malformed attribute");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if name.to_string() == "serde" {
                    out.extend(parse_serde_args(args));
                }
            }
        }
        out
    }

    /// Consumes `pub`, `pub(crate)`, `pub(super)`, etc.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }
}

/// Splits a token list on top-level commas, tracking `<...>` nesting so
/// generic arguments like `HashMap<String, u32>` stay in one piece.
fn split_top_level_commas(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(t.clone());
    }
    if parts.last().is_some_and(Vec::is_empty) {
        parts.pop();
    }
    parts
}

fn wire_name(ident: &str, attrs: &[(String, Option<String>)]) -> String {
    attrs
        .iter()
        .find(|(k, _)| k == "rename")
        .and_then(|(_, v)| v.clone())
        .unwrap_or_else(|| ident.to_string())
}

/// Parses one field group (`ident: Type` with optional attrs/vis) into a
/// [`Field`]; field groups come from [`split_top_level_commas`].
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    split_top_level_commas(&group.stream().into_iter().collect::<Vec<_>>())
        .into_iter()
        .map(|part| {
            let mut p = Parser { toks: part, pos: 0 };
            let attrs = p.take_attrs();
            p.skip_visibility();
            let Some(TokenTree::Ident(id)) = p.next() else {
                panic!("serde shim derive: expected field name");
            };
            let ident = id.to_string();
            Field {
                wire_name: wire_name(&ident, &attrs),
                ident,
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let mut p = Parser {
        toks: input.into_iter().collect(),
        pos: 0,
    };
    let container = p.take_attrs();
    let mut attrs = ContainerAttrs::default();
    for (k, v) in container {
        match k.as_str() {
            "try_from" => attrs.try_from = v,
            "into" => attrs.into = v,
            _ => {}
        }
    }
    p.skip_visibility();
    let kind = match p.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = p.next() else {
        panic!("serde shim derive: expected type name");
    };
    let name = name.to_string();
    if matches!(p.peek(), Some(TokenTree::Punct(pc)) if pc.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported ({name})");
    }

    let body = match kind.as_str() {
        "struct" => match p.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(&g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = split_top_level_commas(&g.stream().into_iter().collect::<Vec<_>>());
                Body::TupleStruct(fields.len())
            }
            Some(TokenTree::Punct(pc)) if pc.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde shim derive: malformed struct body: {other:?}"),
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = p.next() else {
                panic!("serde shim derive: expected enum body");
            };
            let mut vp = Parser {
                toks: g.stream().into_iter().collect(),
                pos: 0,
            };
            let mut variants = Vec::new();
            while vp.peek().is_some() {
                let vattrs = vp.take_attrs();
                let Some(TokenTree::Ident(id)) = vp.next() else {
                    panic!("serde shim derive: expected variant name");
                };
                let ident = id.to_string();
                let shape = match vp.peek() {
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                        let n =
                            split_top_level_commas(&vg.stream().into_iter().collect::<Vec<_>>())
                                .len();
                        vp.next();
                        VariantShape::Tuple(n)
                    }
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(vg);
                        vp.next();
                        VariantShape::Struct(fields)
                    }
                    _ => VariantShape::Unit,
                };
                // Trailing comma between variants.
                if matches!(vp.peek(), Some(TokenTree::Punct(pc)) if pc.as_char() == ',') {
                    vp.next();
                }
                variants.push(Variant {
                    wire_name: wire_name(&ident, &vattrs),
                    ident,
                    shape,
                });
            }
            Body::Enum(variants)
        }
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    };

    Item { name, attrs, body }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

// ------------------------------------------------------------- Serialize

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.attrs.into {
        format!(
            "let __converted: {into_ty} = \
             std::convert::Into::into(std::clone::Clone::clone(self));\n\
             serde::Serialize::to_value(&__converted)"
        )
    } else {
        match &item.body {
            Body::NamedStruct(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{}\".to_string(), serde::Serialize::to_value(&self.{}))",
                            escape(&f.wire_name),
                            f.ident
                        )
                    })
                    .collect();
                format!("serde::Value::Map(vec![{}])", entries.join(", "))
            }
            Body::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_string(),
            Body::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("serde::Value::Seq(vec![{}])", items.join(", "))
            }
            Body::UnitStruct => "serde::Value::Null".to_string(),
            Body::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let tag = escape(&v.wire_name);
                        let vid = &v.ident;
                        match &v.shape {
                            VariantShape::Unit => {
                                format!("{name}::{vid} => serde::Value::Str(\"{tag}\".to_string())")
                            }
                            VariantShape::Tuple(1) => format!(
                                "{name}::{vid}(__f0) => serde::Value::Map(vec![\
                                 (\"{tag}\".to_string(), serde::Serialize::to_value(__f0))])"
                            ),
                            VariantShape::Tuple(n) => {
                                let binds: Vec<String> =
                                    (0..*n).map(|i| format!("__f{i}")).collect();
                                let items: Vec<String> = (0..*n)
                                    .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                                    .collect();
                                format!(
                                    "{name}::{vid}({}) => serde::Value::Map(vec![\
                                     (\"{tag}\".to_string(), serde::Value::Seq(vec![{}]))])",
                                    binds.join(", "),
                                    items.join(", ")
                                )
                            }
                            VariantShape::Struct(fields) => {
                                let binds: Vec<String> =
                                    fields.iter().map(|f| f.ident.clone()).collect();
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(\"{}\".to_string(), \
                                             serde::Serialize::to_value({}))",
                                            escape(&f.wire_name),
                                            f.ident
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vid} {{ {} }} => serde::Value::Map(vec![\
                                     (\"{tag}\".to_string(), \
                                     serde::Value::Map(vec![{}]))])",
                                    binds.join(", "),
                                    entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(",\n"))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

// ----------------------------------------------------------- Deserialize

fn gen_named_fields_ctor(path: &str, fields: &[Field], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let wire = escape(&f.wire_name);
            format!(
                "{}: match {source}.get(\"{wire}\") {{\n\
                     Some(__x) => serde::Deserialize::from_value(__x)?,\n\
                     None => serde::Deserialize::from_missing(\"{wire}\")?,\n\
                 }}",
                f.ident
            )
        })
        .collect();
    format!("Ok({path} {{ {} }})", inits.join(",\n"))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.attrs.try_from {
        format!(
            "let __raw: {from_ty} = serde::Deserialize::from_value(__v)?;\n\
             match std::convert::TryFrom::try_from(__raw) {{\n\
                 Ok(__x) => Ok(__x),\n\
                 Err(__e) => Err(serde::DeError::custom(__e)),\n\
             }}"
        )
    } else {
        match &item.body {
            Body::NamedStruct(fields) => {
                let ctor = gen_named_fields_ctor(name, fields, "__v");
                format!(
                    "if !matches!(__v, serde::Value::Map(_)) {{\n\
                         return Err(serde::DeError::expected(\"map for {name}\", __v));\n\
                     }}\n{ctor}"
                )
            }
            Body::TupleStruct(1) => {
                format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
            }
            Body::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let serde::Value::Seq(__items) = __v else {{\n\
                         return Err(serde::DeError::expected(\"sequence for {name}\", __v));\n\
                     }};\n\
                     if __items.len() != {n} {{\n\
                         return Err(serde::DeError::custom(format!(\n\
                             \"expected {n} elements for {name}, got {{}}\", __items.len())));\n\
                     }}\n\
                     Ok({name}({}))",
                    items.join(", ")
                )
            }
            Body::UnitStruct => format!("Ok({name})"),
            Body::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.shape, VariantShape::Unit))
                    .map(|v| format!("\"{}\" => Ok({name}::{}),", escape(&v.wire_name), v.ident))
                    .collect();
                let tagged_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let tag = escape(&v.wire_name);
                        let vid = &v.ident;
                        match &v.shape {
                            VariantShape::Unit => None,
                            VariantShape::Tuple(1) => Some(format!(
                                "\"{tag}\" => Ok({name}::{vid}(\
                                 serde::Deserialize::from_value(__inner)?)),"
                            )),
                            VariantShape::Tuple(n) => {
                                let items: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!("serde::Deserialize::from_value(&__items[{i}])?")
                                    })
                                    .collect();
                                Some(format!(
                                    "\"{tag}\" => {{\n\
                                     let serde::Value::Seq(__items) = __inner else {{\n\
                                         return Err(serde::DeError::expected(\n\
                                             \"sequence for {name}::{vid}\", __inner));\n\
                                     }};\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(serde::DeError::custom(format!(\n\
                                             \"expected {n} elements for {name}::{vid}, \
                                              got {{}}\", __items.len())));\n\
                                     }}\n\
                                     Ok({name}::{vid}({}))\n\
                                     }}",
                                    items.join(", ")
                                ))
                            }
                            VariantShape::Struct(fields) => {
                                let ctor = gen_named_fields_ctor(
                                    &format!("{name}::{vid}"),
                                    fields,
                                    "__inner",
                                );
                                Some(format!("\"{tag}\" => {{ {ctor} }}"))
                            }
                        }
                    })
                    .collect();
                format!(
                    "match __v {{\n\
                     serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __other => Err(serde::DeError::custom(format!(\n\
                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {}\n\
                             __other => Err(serde::DeError::custom(format!(\n\
                                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(serde::DeError::expected(\"variant of {name}\", __other)),\n\
                     }}",
                    unit_arms.join("\n"),
                    tagged_arms.join("\n")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables, clippy::all)]\n\
         impl serde::Deserialize for {name} {{\n\
             fn from_value(__v: &serde::Value) -> Result<{name}, serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Derives `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

/// Derives `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}
