//! Offline shim for the `bytes` crate (see `shims/README.md`).
//!
//! [`BytesMut`] is a plain `Vec<u8>` with a read cursor; [`Buf`]/[`BufMut`]
//! carry the big-endian accessors the DNS and TLS codecs use. Network byte
//! order throughout, like the real crate.

use std::ops::{Deref, DerefMut};

/// Read-side buffer access, big-endian accessors.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The current unread region.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics when the buffer is exhausted (matches the real crate).
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Copies `dst.len()` bytes out of the buffer.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side buffer access, big-endian accessors.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A growable byte buffer with a read cursor.
///
/// Derefs to the *unread* bytes, so indexing and `copy_from_slice`-style
/// patching behave like the real `BytesMut`.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor: bytes before this index have been consumed.
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Drops all content.
    pub fn clear(&mut self) {
        self.data.clear();
        self.head = 0;
    }

    /// Splits off the first `at` unread bytes into a new buffer.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let out = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        BytesMut { data: out, head: 0 }
    }

    /// The unread bytes as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.head..].to_vec()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.to_vec())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.head..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.head..]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:02x?})", &self[..])
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut {
            data: src.to_vec(),
            head: 0,
        }
    }
}

/// An immutable byte buffer (plain `Vec` here; the real crate refcounts).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Vec::new())
    }

    /// Copies a slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The content as an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:02x?})", &self.0)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 10);
        assert_eq!(b.get_u8(), 0xAB);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn slice_buf_advances() {
        let data = [5u8, 0, 7];
        let mut cursor = &data[..];
        assert_eq!(cursor.get_u8(), 5);
        assert_eq!(cursor.get_u16(), 7);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn index_patching_matches_real_crate() {
        // The DNS encoder reserves two bytes then patches them in place.
        let mut b = BytesMut::new();
        b.put_u16(0);
        b.put_slice(b"xyz");
        let rdlen = 3u16;
        b[0..2].copy_from_slice(&rdlen.to_be_bytes());
        assert_eq!(b.to_vec(), vec![0, 3, b'x', b'y', b'z']);
    }

    #[test]
    fn split_and_freeze() {
        let mut b = BytesMut::from(&b"headbody"[..]);
        let head = b.split_to(4);
        assert_eq!(&head[..], b"head");
        assert_eq!(&b.freeze()[..], b"body");
    }
}
