//! Umbrella crate re-exporting the full mta-sts-lab workspace API.
pub use danelite;
pub use dns;
pub use ecosystem;
pub use httpsim;
pub use mtasts;
pub use netbase;
pub use pkix;
pub use report;
pub use scanner;
pub use sender;
pub use simnet;
pub use smtp;
pub use survey;
pub use tlssim;
