//! The MX server: greeting, EHLO/HELO, STARTTLS upgrade, mail transaction.
//!
//! Fault injection mirrors the behaviours the paper encounters in the wild:
//! servers that hide STARTTLS behind greylisting (§4.2 footnote), servers
//! without EHLO support (the client falls back to HELO, §4.1), providers
//! rejecting recipients of unsubscribed customers (Tutanota, §5), and MX
//! hosts presenting arbitrary certificate chains (Figure 6's taxonomy).

use crate::types::{Capability, Envelope, ReplyCode};
use netbase::DomainName;
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::Arc;
use tlssim::{server_handshake, ServerConfig};
use tokio::io::{AsyncRead, AsyncWrite, AsyncWriteExt, BufReader};
use tokio::net::TcpListener;
use tokio::sync::watch;

/// Server-side fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MxBehavior {
    /// Normal ESMTP with STARTTLS (if a TLS config is present).
    #[default]
    Normal,
    /// Supports TLS but does not advertise STARTTLS (greylisting-style
    /// hiding; the paper excludes such MXes from TLS analysis).
    HideStartTls,
    /// What an on-path STARTTLS-stripping attacker leaves the client
    /// facing: the capability is gone from EHLO and an explicit STARTTLS
    /// attempt gets 454 (RFC 3207's temporary failure), so only a cached
    /// MTA-STS policy tells the sender anything is wrong.
    StartTlsStripped,
    /// Replies 500 to EHLO, forcing the HELO fallback.
    HeloOnly,
    /// Tempfails everything after the greeting (421).
    TempfailAll,
}

/// Who the server accepts mail for.
#[derive(Debug, Clone, Default)]
pub enum RecipientPolicy {
    /// Accept every recipient.
    #[default]
    AcceptAll,
    /// Reject every recipient with 550 (e.g. a provider that terminated
    /// the customer but still receives the connections).
    RejectAll,
    /// Reject recipients in these domains with 550, accept the rest.
    RejectDomains(Vec<DomainName>),
}

impl RecipientPolicy {
    fn accepts(&self, rcpt: &str) -> bool {
        match self {
            RecipientPolicy::AcceptAll => true,
            RecipientPolicy::RejectAll => false,
            RecipientPolicy::RejectDomains(domains) => {
                let Some((_, domain)) = rcpt.rsplit_once('@') else {
                    return false;
                };
                let Ok(domain) = domain.parse::<DomainName>() else {
                    return false;
                };
                !domains.contains(&domain)
            }
        }
    }
}

/// Messages accepted by a server, observable by tests and the notification
/// campaign analysis.
#[derive(Clone, Default)]
pub struct MailSink {
    inner: Arc<Mutex<Vec<Envelope>>>,
}

impl MailSink {
    /// Creates an empty sink.
    pub fn new() -> MailSink {
        MailSink::default()
    }

    /// Records a delivered message.
    pub fn push(&self, envelope: Envelope) {
        self.inner.lock().push(envelope);
    }

    /// Snapshot of everything delivered so far.
    pub fn messages(&self) -> Vec<Envelope> {
        self.inner.lock().clone()
    }

    /// Number of delivered messages.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

/// MX server configuration.
#[derive(Clone)]
pub struct MxConfig {
    /// The hostname announced in the greeting and EHLO reply.
    pub hostname: DomainName,
    /// STARTTLS support: `None` disables the capability entirely.
    pub tls: Option<ServerConfig>,
    /// Fault injection.
    pub behavior: MxBehavior,
    /// FCrDNS enforcement: when set, EHLO/HELO names not matching this
    /// expected reverse name are tempfailed (450), modelling greylisting of
    /// hosts without forward-confirmed reverse DNS (§4.1).
    pub expected_client_name: Option<DomainName>,
    /// Which recipients are accepted.
    pub recipient_policy: RecipientPolicy,
    /// Where accepted mail goes.
    pub sink: MailSink,
}

impl MxConfig {
    /// A plain, accepting server for `hostname` with optional TLS.
    pub fn new(hostname: DomainName, tls: Option<ServerConfig>) -> MxConfig {
        MxConfig {
            hostname,
            tls,
            behavior: MxBehavior::Normal,
            expected_client_name: None,
            recipient_policy: RecipientPolicy::AcceptAll,
            sink: MailSink::new(),
        }
    }
}

/// What a session loop ended with.
enum SessionExit {
    /// Client quit or the connection ended.
    Done,
    /// Client issued STARTTLS and the server agreed; the caller upgrades.
    UpgradeRequested,
}

/// Writes a single-line reply.
async fn reply<S: AsyncWrite + Unpin>(
    w: &mut S,
    code: ReplyCode,
    text: &str,
) -> std::io::Result<()> {
    w.write_all(format!("{code} {text}\r\n").as_bytes()).await?;
    w.flush().await
}

/// Writes a multi-line reply (EHLO capability list).
async fn reply_multi<S: AsyncWrite + Unpin>(
    w: &mut S,
    code: ReplyCode,
    lines: &[String],
) -> std::io::Result<()> {
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        let sep = if i + 1 == lines.len() { ' ' } else { '-' };
        out.push_str(&format!("{code}{sep}{line}\r\n"));
    }
    w.write_all(out.as_bytes()).await?;
    w.flush().await
}

/// Reads one CRLF-terminated command line.
async fn read_line<S: AsyncRead + Unpin>(
    reader: &mut BufReader<S>,
) -> std::io::Result<Option<String>> {
    use tokio::io::AsyncBufReadExt;
    let mut line = String::new();
    let n = reader.read_line(&mut line).await?;
    if n == 0 {
        return Ok(None);
    }
    Ok(Some(line.trim_end_matches(['\r', '\n']).to_string()))
}

/// The command loop; runs once in plaintext and (after upgrade) once over
/// TLS. `tls_active` gates STARTTLS availability.
async fn session_loop<S: AsyncRead + AsyncWrite + Unpin>(
    stream: &mut S,
    config: &MxConfig,
    tls_active: bool,
) -> std::io::Result<SessionExit> {
    let mut reader = BufReader::new(stream);
    let mut greeted = false;
    let mut mail_from: Option<String> = None;
    let mut rcpt_to: Vec<String> = Vec::new();
    loop {
        let Some(line) = read_line(&mut reader).await? else {
            return Ok(SessionExit::Done);
        };
        let upper = line.to_ascii_uppercase();
        let stream = reader.get_mut();
        if config.behavior == MxBehavior::TempfailAll && upper != "QUIT" {
            reply(
                stream,
                ReplyCode::UNAVAILABLE,
                "service temporarily unavailable",
            )
            .await?;
            continue;
        }
        if let Some(name) = upper.strip_prefix("EHLO") {
            if config.behavior == MxBehavior::HeloOnly {
                reply(stream, ReplyCode::SYNTAX, "command not recognized").await?;
                continue;
            }
            if !check_client_name(config, name) {
                reply(
                    stream,
                    ReplyCode::TEMPFAIL,
                    "resolve your reverse DNS first",
                )
                .await?;
                continue;
            }
            let mut lines = vec![format!("{} greets you", config.hostname)];
            lines.push(Capability::Pipelining.keyword());
            lines.push(Capability::Size(35_882_577).keyword());
            lines.push(Capability::EightBitMime.keyword());
            let advertise_tls = config.tls.is_some()
                && !tls_active
                && !matches!(
                    config.behavior,
                    MxBehavior::HideStartTls | MxBehavior::StartTlsStripped
                );
            if advertise_tls {
                lines.push(Capability::StartTls.keyword());
            }
            reply_multi(stream, ReplyCode::OK, &lines).await?;
            greeted = true;
        } else if let Some(name) = upper.strip_prefix("HELO") {
            if !check_client_name(config, name) {
                reply(
                    stream,
                    ReplyCode::TEMPFAIL,
                    "resolve your reverse DNS first",
                )
                .await?;
                continue;
            }
            reply(stream, ReplyCode::OK, &config.hostname.to_string()).await?;
            greeted = true;
        } else if upper == "STARTTLS" {
            if tls_active {
                reply(stream, ReplyCode::BAD_SEQUENCE, "TLS already active").await?;
            } else if config.behavior == MxBehavior::StartTlsStripped {
                reply(
                    stream,
                    ReplyCode::TLS_NOT_AVAILABLE,
                    "TLS not available due to temporary reason",
                )
                .await?;
            } else if config.tls.is_none() {
                reply(stream, ReplyCode::NOT_IMPLEMENTED, "TLS unavailable").await?;
            } else {
                reply(stream, ReplyCode::READY, "ready to start TLS").await?;
                return Ok(SessionExit::UpgradeRequested);
            }
        } else if upper.starts_with("MAIL FROM:") {
            if !greeted {
                reply(stream, ReplyCode::BAD_SEQUENCE, "send EHLO first").await?;
                continue;
            }
            mail_from = Some(extract_address(&line));
            rcpt_to.clear();
            reply(stream, ReplyCode::OK, "sender ok").await?;
        } else if upper.starts_with("RCPT TO:") {
            if mail_from.is_none() {
                reply(stream, ReplyCode::BAD_SEQUENCE, "MAIL first").await?;
                continue;
            }
            let rcpt = extract_address(&line);
            if config.recipient_policy.accepts(&rcpt) {
                rcpt_to.push(rcpt);
                reply(stream, ReplyCode::OK, "recipient ok").await?;
            } else {
                reply(stream, ReplyCode::REJECTED, "no such user here").await?;
            }
        } else if upper == "DATA" {
            if mail_from.is_none() || rcpt_to.is_empty() {
                reply(stream, ReplyCode::BAD_SEQUENCE, "need MAIL and RCPT").await?;
                continue;
            }
            reply(stream, ReplyCode::START_INPUT, "end with <CRLF>.<CRLF>").await?;
            let mut body = String::new();
            loop {
                let Some(data_line) = read_line(&mut reader).await? else {
                    return Ok(SessionExit::Done);
                };
                if data_line == "." {
                    break;
                }
                // Dot-unstuffing per RFC 5321 §4.5.2.
                let unstuffed = data_line
                    .strip_prefix('.')
                    .map_or(data_line.as_str(), |s| s);
                body.push_str(unstuffed);
                body.push('\n');
            }
            config.sink.push(Envelope {
                mail_from: mail_from.take().expect("checked above"),
                rcpt_to: std::mem::take(&mut rcpt_to),
                body,
            });
            reply(reader.get_mut(), ReplyCode::OK, "message accepted").await?;
        } else if upper == "RSET" {
            mail_from = None;
            rcpt_to.clear();
            reply(stream, ReplyCode::OK, "reset").await?;
        } else if upper == "NOOP" {
            reply(stream, ReplyCode::OK, "ok").await?;
        } else if upper == "QUIT" {
            reply(stream, ReplyCode::CLOSING, "bye").await?;
            return Ok(SessionExit::Done);
        } else {
            reply(stream, ReplyCode::SYNTAX, "command not recognized").await?;
        }
    }
}

/// FCrDNS-style check of the client's EHLO/HELO parameter.
fn check_client_name(config: &MxConfig, raw: &str) -> bool {
    let Some(expected) = &config.expected_client_name else {
        return true;
    };
    raw.trim()
        .parse::<DomainName>()
        .map(|name| name == *expected)
        .unwrap_or(false)
}

/// Extracts the address from `MAIL FROM:<a@b>` / `RCPT TO:<a@b>`.
fn extract_address(line: &str) -> String {
    let after_colon = line.split_once(':').map_or("", |(_, rest)| rest);
    after_colon
        .trim()
        .trim_start_matches('<')
        .trim_end_matches('>')
        .to_string()
}

/// Serves one SMTP connection to completion (including an optional single
/// STARTTLS upgrade).
pub async fn serve_connection<S: AsyncRead + AsyncWrite + Unpin>(mut io: S, config: &MxConfig) {
    if reply(
        &mut io,
        ReplyCode::READY,
        &format!("{} ESMTP mta-sts-lab", config.hostname),
    )
    .await
    .is_err()
    {
        return;
    }
    if let Ok(SessionExit::UpgradeRequested) = session_loop(&mut io, config, false).await {
        let tls = config.tls.as_ref().expect("upgrade only offered with TLS");
        let Ok(session) = server_handshake(io, tls).await else {
            return;
        };
        let mut tls_stream = session.stream;
        // Fresh state post-upgrade per RFC 3207 §4.2.
        let _ = session_loop(&mut tls_stream, config, true).await;
    }
}

/// An MX server on a real TCP listener.
pub struct MxServer {
    addr: SocketAddr,
    shutdown: watch::Sender<bool>,
    handle: tokio::task::JoinHandle<()>,
}

impl MxServer {
    /// Binds and serves `config` until shutdown. The config is shared via
    /// `Arc<Mutex<..>>` so tests can rotate certificates or flip behaviour
    /// between connections.
    pub async fn spawn(
        bind: SocketAddr,
        config: Arc<Mutex<MxConfig>>,
    ) -> std::io::Result<MxServer> {
        let listener = TcpListener::bind(bind).await?;
        let addr = listener.local_addr()?;
        let (shutdown, mut shutdown_rx) = watch::channel(false);
        let handle = tokio::spawn(async move {
            loop {
                tokio::select! {
                    _ = shutdown_rx.changed() => break,
                    accepted = listener.accept() => {
                        let Ok((socket, _)) = accepted else { break };
                        let config = config.lock().clone();
                        tokio::spawn(async move {
                            serve_connection(socket, &config).await;
                        });
                    }
                }
            }
        });
        Ok(MxServer {
            addr,
            shutdown,
            handle,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections.
    pub async fn shutdown(self) {
        let _ = self.shutdown.send(true);
        let _ = self.handle.await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokio::io::{AsyncBufReadExt, AsyncWriteExt};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    /// Drives a scripted plaintext session and returns all server lines.
    async fn run_script(config: MxConfig, script: &[&str]) -> Vec<String> {
        let (client, server) = tokio::io::duplex(8192);
        let server_task = tokio::spawn(async move {
            serve_connection(server, &config).await;
        });
        let mut lines = Vec::new();
        let (read_half, mut write_half) = tokio::io::split(client);
        let mut reader = BufReader::new(read_half);
        // Greeting.
        let mut greeting = String::new();
        reader.read_line(&mut greeting).await.unwrap();
        lines.push(greeting.trim_end().to_string());
        for cmd in script {
            write_half
                .write_all(format!("{cmd}\r\n").as_bytes())
                .await
                .unwrap();
            // Read one reply (possibly multi-line).
            loop {
                let mut reply_line = String::new();
                if reader.read_line(&mut reply_line).await.unwrap() == 0 {
                    break;
                }
                let trimmed = reply_line.trim_end().to_string();
                let done = trimmed.len() < 4 || trimmed.as_bytes()[3] == b' ';
                lines.push(trimmed);
                if done {
                    break;
                }
            }
        }
        drop(write_half);
        drop(reader);
        server_task.abort();
        lines
    }

    #[tokio::test]
    async fn greeting_ehlo_and_quit() {
        let config = MxConfig::new(n("mx.example.com"), None);
        let lines = run_script(config, &["EHLO scanner.example", "QUIT"]).await;
        assert!(lines[0].starts_with("220 mx.example.com"));
        assert!(lines.iter().any(|l| l.contains("PIPELINING")));
        // No TLS config: STARTTLS must not be advertised.
        assert!(!lines.iter().any(|l| l.contains("STARTTLS")));
        assert!(lines.last().unwrap().starts_with("221"));
    }

    #[tokio::test]
    async fn helo_fallback_when_ehlo_unsupported() {
        let mut config = MxConfig::new(n("mx.example.com"), None);
        config.behavior = MxBehavior::HeloOnly;
        let lines = run_script(config, &["EHLO scanner.example", "HELO scanner.example"]).await;
        assert!(lines[1].starts_with("500"));
        assert!(lines[2].starts_with("250"));
    }

    #[tokio::test]
    async fn starttls_advertised_and_hidden() {
        let tls = ServerConfig::default();
        let mut config = MxConfig::new(n("mx.example.com"), Some(tls.clone()));
        let lines = run_script(config.clone(), &["EHLO x.test"]).await;
        assert!(lines.iter().any(|l| l.contains("STARTTLS")));
        config.behavior = MxBehavior::HideStartTls;
        let lines = run_script(config, &["EHLO x.test"]).await;
        assert!(!lines.iter().any(|l| l.contains("STARTTLS")));
    }

    #[tokio::test]
    async fn stripped_starttls_disappears_and_tempfails() {
        // The stripped server is TLS-capable, but a victim of on-path
        // stripping sees no STARTTLS capability and gets 454 (not the
        // 502 of a genuinely TLS-less host) when it insists anyway.
        let mut config = MxConfig::new(n("mx.example.com"), Some(ServerConfig::default()));
        config.behavior = MxBehavior::StartTlsStripped;
        let lines = run_script(config, &["EHLO x.test", "STARTTLS", "QUIT"]).await;
        assert!(!lines.iter().any(|l| l.contains("STARTTLS")));
        assert!(lines.iter().any(|l| l.starts_with("454")));
        assert!(lines.last().unwrap().starts_with("221"));
    }

    #[tokio::test]
    async fn starttls_rejected_without_tls_config() {
        let config = MxConfig::new(n("mx.example.com"), None);
        let lines = run_script(config, &["EHLO x.test", "STARTTLS"]).await;
        assert!(lines.last().unwrap().starts_with("502"));
    }

    #[tokio::test]
    async fn mail_transaction_reaches_sink() {
        let config = MxConfig::new(n("mx.example.com"), None);
        let sink = config.sink.clone();
        let lines = run_script(
            config,
            &[
                "EHLO notify.scanner.example",
                "MAIL FROM:<notify@scanner.example>",
                "RCPT TO:<postmaster@example.com>",
                "DATA",
                "Subject: MTA-STS misconfiguration\n\nYour policy host fails TLS.\n.",
                "QUIT",
            ],
        )
        .await;
        assert!(lines.iter().any(|l| l.starts_with("354")));
        assert_eq!(sink.len(), 1);
        let msg = &sink.messages()[0];
        assert_eq!(msg.mail_from, "notify@scanner.example");
        assert_eq!(msg.rcpt_to, vec!["postmaster@example.com".to_string()]);
        assert!(msg.body.contains("policy host fails TLS"));
    }

    #[tokio::test]
    async fn recipient_rejection() {
        let mut config = MxConfig::new(n("mail.tutanota.de"), None);
        config.recipient_policy = RecipientPolicy::RejectDomains(vec![n("cancelled.com")]);
        let sink = config.sink.clone();
        let lines = run_script(
            config,
            &[
                "EHLO x.test",
                "MAIL FROM:<a@b.test>",
                "RCPT TO:<user@cancelled.com>",
                "RCPT TO:<user@active.com>",
            ],
        )
        .await;
        assert!(lines[lines.len() - 2].starts_with("550"));
        assert!(lines[lines.len() - 1].starts_with("250"));
        assert!(sink.is_empty());
    }

    #[tokio::test]
    async fn fcrdns_mismatch_tempfails() {
        let mut config = MxConfig::new(n("mx.example.com"), None);
        config.expected_client_name = Some(n("scanner.example.org"));
        let lines = run_script(
            config,
            &["EHLO wrong.name.test", "EHLO scanner.example.org"],
        )
        .await;
        assert!(lines[1].starts_with("450"));
        assert!(lines[2].starts_with("250"));
    }

    #[tokio::test]
    async fn bad_sequences_rejected() {
        let config = MxConfig::new(n("mx.example.com"), None);
        let lines = run_script(
            config,
            &[
                "MAIL FROM:<a@b.test>", // before EHLO
                "EHLO x.test",
                "RCPT TO:<c@d.test>", // before MAIL
                "DATA",               // before MAIL+RCPT
                "BOGUS",              // unknown
            ],
        )
        .await;
        assert!(lines[1].starts_with("503"));
        assert!(lines[lines.len() - 3].starts_with("503"));
        assert!(lines[lines.len() - 2].starts_with("503"));
        assert!(lines[lines.len() - 1].starts_with("500"));
    }

    #[tokio::test]
    async fn tempfail_all_behavior() {
        let mut config = MxConfig::new(n("mx.example.com"), None);
        config.behavior = MxBehavior::TempfailAll;
        let lines = run_script(config, &["EHLO x.test", "NOOP"]).await;
        assert!(lines[1].starts_with("421"));
        assert!(lines[2].starts_with("421"));
    }

    #[test]
    fn address_extraction() {
        assert_eq!(extract_address("MAIL FROM:<a@b.c>"), "a@b.c");
        assert_eq!(extract_address("RCPT TO: <x@y.z> "), "x@y.z");
        assert_eq!(extract_address("MAIL FROM:plain@addr"), "plain@addr");
    }
}
