//! SMTP protocol types.

use netbase::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SMTP reply codes used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReplyCode(pub u16);

impl ReplyCode {
    /// 220: service ready (greeting, STARTTLS go-ahead).
    pub const READY: ReplyCode = ReplyCode(220);
    /// 221: closing.
    pub const CLOSING: ReplyCode = ReplyCode(221);
    /// 250: OK.
    pub const OK: ReplyCode = ReplyCode(250);
    /// 354: start mail input.
    pub const START_INPUT: ReplyCode = ReplyCode(354);
    /// 421: service not available (greylisting tempfail).
    pub const UNAVAILABLE: ReplyCode = ReplyCode(421);
    /// 450: mailbox unavailable, try again (greylisting).
    pub const TEMPFAIL: ReplyCode = ReplyCode(450);
    /// 454: TLS not available due to temporary reason (RFC 3207 §4).
    pub const TLS_NOT_AVAILABLE: ReplyCode = ReplyCode(454);
    /// 500: syntax error.
    pub const SYNTAX: ReplyCode = ReplyCode(500);
    /// 502: command not implemented.
    pub const NOT_IMPLEMENTED: ReplyCode = ReplyCode(502);
    /// 503: bad sequence of commands.
    pub const BAD_SEQUENCE: ReplyCode = ReplyCode(503);
    /// 530: must issue STARTTLS first.
    pub const MUST_STARTTLS: ReplyCode = ReplyCode(530);
    /// 550: mailbox unavailable / recipient rejected.
    pub const REJECTED: ReplyCode = ReplyCode(550);
    /// 554: transaction failed.
    pub const FAILED: ReplyCode = ReplyCode(554);

    /// 2xx/3xx are positive.
    pub fn is_positive(self) -> bool {
        self.0 < 400
    }

    /// 4xx are transient failures.
    pub fn is_transient(self) -> bool {
        (400..500).contains(&self.0)
    }

    /// 5xx are permanent failures.
    pub fn is_permanent(self) -> bool {
        self.0 >= 500
    }
}

impl fmt::Display for ReplyCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// ESMTP capabilities advertised in the EHLO response.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Capability {
    /// RFC 3207 STARTTLS.
    StartTls,
    /// RFC 2920 command pipelining.
    Pipelining,
    /// RFC 1870 SIZE with a limit.
    Size(u64),
    /// RFC 6152 8BITMIME.
    EightBitMime,
    /// Anything else, verbatim.
    Other(String),
}

impl Capability {
    /// The EHLO keyword line for this capability.
    pub fn keyword(&self) -> String {
        match self {
            Capability::StartTls => "STARTTLS".to_string(),
            Capability::Pipelining => "PIPELINING".to_string(),
            Capability::Size(n) => format!("SIZE {n}"),
            Capability::EightBitMime => "8BITMIME".to_string(),
            Capability::Other(s) => s.clone(),
        }
    }

    /// Parses an EHLO keyword line.
    pub fn parse(line: &str) -> Capability {
        let upper = line.trim().to_ascii_uppercase();
        if upper == "STARTTLS" {
            Capability::StartTls
        } else if upper == "PIPELINING" {
            Capability::Pipelining
        } else if upper == "8BITMIME" {
            Capability::EightBitMime
        } else if let Some(size) = upper.strip_prefix("SIZE") {
            size.trim()
                .parse()
                .map(Capability::Size)
                .unwrap_or_else(|_| Capability::Other(line.trim().to_string()))
        } else {
            Capability::Other(line.trim().to_string())
        }
    }
}

/// A mail envelope plus message body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// Envelope sender (MAIL FROM), e.g. `notify@scanner.example`.
    pub mail_from: String,
    /// Envelope recipients (RCPT TO).
    pub rcpt_to: Vec<String>,
    /// Message body (headers + text, DATA section).
    pub body: String,
}

impl Envelope {
    /// A single-recipient message.
    pub fn new(from: &str, to: &str, body: &str) -> Envelope {
        Envelope {
            mail_from: from.to_string(),
            rcpt_to: vec![to.to_string()],
            body: body.to_string(),
        }
    }

    /// The domain part of the first recipient, if well-formed.
    pub fn first_rcpt_domain(&self) -> Option<DomainName> {
        self.rcpt_to
            .first()
            .and_then(|r| r.rsplit_once('@'))
            .and_then(|(_, d)| d.parse().ok())
    }
}

/// Client-side SMTP failures, layered for the error taxonomy.
#[derive(Debug)]
pub enum SmtpError {
    /// Transport failure (connect/read/write).
    Io(std::io::Error),
    /// The server replied with an unexpected code.
    UnexpectedReply {
        /// Command or phase during which the reply arrived.
        phase: &'static str,
        /// Code received.
        code: ReplyCode,
        /// First reply line text.
        text: String,
    },
    /// The server's reply could not be parsed.
    Malformed(String),
    /// A reply line exceeded the client's length cap before a terminator
    /// arrived (hostile or broken peer; RFC 5321 §4.5.3.1.5 caps reply
    /// lines at 512 octets).
    ReplyLineTooLong {
        /// The enforced cap, in octets.
        limit: usize,
    },
    /// A multiline reply kept continuing past the client's line-count cap
    /// (a `250-`-forever peer would otherwise pin the client reading).
    TooManyReplyLines {
        /// The enforced cap.
        limit: usize,
    },
    /// STARTTLS was required by the client's policy but not offered.
    StartTlsNotOffered,
    /// The TLS upgrade failed.
    Tls(tlssim::HandshakeError),
    /// Certificate validation failed under the client's policy.
    Cert(pkix::CertError),
}

impl fmt::Display for SmtpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtpError::Io(e) => write!(f, "smtp i/o error: {e}"),
            SmtpError::UnexpectedReply { phase, code, text } => {
                write!(f, "unexpected {code} during {phase}: {text}")
            }
            SmtpError::Malformed(l) => write!(f, "malformed reply: {l:?}"),
            SmtpError::ReplyLineTooLong { limit } => {
                write!(f, "reply line exceeded {limit} octets")
            }
            SmtpError::TooManyReplyLines { limit } => {
                write!(f, "multiline reply exceeded {limit} lines")
            }
            SmtpError::StartTlsNotOffered => write!(f, "STARTTLS not offered"),
            SmtpError::Tls(e) => write!(f, "starttls upgrade failed: {e}"),
            SmtpError::Cert(e) => write!(f, "certificate validation failed: {e}"),
        }
    }
}

impl std::error::Error for SmtpError {}

impl From<std::io::Error> for SmtpError {
    fn from(e: std::io::Error) -> SmtpError {
        SmtpError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_code_classes() {
        assert!(ReplyCode::OK.is_positive());
        assert!(ReplyCode::START_INPUT.is_positive());
        assert!(ReplyCode::TEMPFAIL.is_transient());
        assert!(ReplyCode::REJECTED.is_permanent());
        assert!(!ReplyCode::OK.is_permanent());
    }

    #[test]
    fn capability_roundtrip() {
        for cap in [
            Capability::StartTls,
            Capability::Pipelining,
            Capability::Size(35_882_577),
            Capability::EightBitMime,
            Capability::Other("DSN".to_string()),
        ] {
            assert_eq!(Capability::parse(&cap.keyword()), cap);
        }
    }

    #[test]
    fn capability_parse_is_case_insensitive() {
        assert_eq!(Capability::parse("starttls"), Capability::StartTls);
        assert_eq!(Capability::parse("Size 100"), Capability::Size(100));
    }

    #[test]
    fn envelope_rcpt_domain() {
        let e = Envelope::new("a@scanner.test", "postmaster@example.com", "hi");
        assert_eq!(e.first_rcpt_domain().unwrap().to_string(), "example.com");
        let bad = Envelope::new("a@scanner.test", "no-at-sign", "hi");
        assert_eq!(bad.first_rcpt_domain(), None);
    }
}
