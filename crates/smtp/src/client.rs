//! The SMTP client side: the instrumented probe and the delivering sender.
//!
//! [`probe_mx`] is the paper's measurement client (§4.1): it connects from a
//! host with forward-confirmed reverse DNS, EHLOs (falling back to HELO),
//! checks the STARTTLS capability, upgrades, captures the presented
//! certificate chain, and quits without sending mail.
//!
//! [`deliver`] is a real sender with a configurable [`TlsPolicy`], covering
//! the behaviours §6.2 measures: plaintext-only, opportunistic TLS (93.2% of
//! senders), and PKIX-required (the validation step MTA-STS/DANE enforcement
//! builds on).

use crate::types::{Capability, Envelope, ReplyCode, SmtpError};
use netbase::{DomainName, SimInstant};
use pkix::{validate_chain, CertError, SimCert, TrustStore};
use tlssim::{client_handshake, ClientConfig};
use tokio::io::{AsyncRead, AsyncWrite, AsyncWriteExt, BufReader};

/// TLS enforcement levels for [`deliver`].
#[derive(Debug, Clone)]
pub enum TlsPolicy {
    /// Never upgrade; send in plaintext (legacy senders).
    Disabled,
    /// Upgrade when STARTTLS is offered; accept any certificate; fall back
    /// to plaintext when it is not offered.
    Opportunistic,
    /// Opportunistic delivery with PKIX accounting: upgrade when offered
    /// and never fail the delivery, but validate the certificate for
    /// `host` against `roots` and surface the verdict via
    /// [`DeliveryOutcome::Delivered::cert_validated`] — the behaviour an
    /// MTA-STS `testing` policy wants (§2.4: report, don't refuse).
    OpportunisticAudit {
        /// Trust anchors.
        roots: TrustStore,
        /// Validation time.
        now: SimInstant,
        /// The host name the certificate must cover (the MX hostname).
        host: DomainName,
    },
    /// Require STARTTLS and a PKIX-valid certificate for `host`, validated
    /// against `roots` at `now`. Fail delivery otherwise — the behaviour
    /// MTA-STS "enforce" mandates (§2.4).
    RequirePkix {
        /// Trust anchors.
        roots: TrustStore,
        /// Validation time.
        now: SimInstant,
        /// The host name the certificate must cover (the MX hostname).
        host: DomainName,
    },
}

/// Probe configuration (§4.1's instrumented client).
#[derive(Debug, Clone)]
pub struct ProbeConfig {
    /// EHLO/HELO parameter — the scanner's FCrDNS-confirmed name.
    pub helo_name: DomainName,
    /// The MX hostname, used as TLS SNI.
    pub mx_hostname: DomainName,
    /// Handshake nonce (deterministic in simulations).
    pub nonce: u64,
    /// DH secret.
    pub dh_secret: u64,
}

/// What the probe observed.
#[derive(Debug)]
pub struct ProbeResult {
    /// The server's greeting line.
    pub greeting: String,
    /// Whether EHLO failed and HELO was used instead.
    pub used_helo_fallback: bool,
    /// Capabilities advertised in the EHLO reply (empty after HELO).
    pub capabilities: Vec<Capability>,
    /// Whether STARTTLS was advertised.
    pub starttls_offered: bool,
    /// When STARTTLS was offered: the result of the upgrade — the presented
    /// chain on success (validated offline by the scanner), or the error.
    pub tls: Option<Result<Vec<SimCert>, String>>,
}

impl ProbeResult {
    /// Convenience: the chain if TLS succeeded.
    pub fn peer_chain(&self) -> Option<&[SimCert]> {
        match &self.tls {
            Some(Ok(chain)) => Some(chain),
            _ => None,
        }
    }
}

/// Longest reply line the client accepts, in octets before the
/// terminator (RFC 5321 §4.5.3.1.5 specifies 512 including CRLF; hostile
/// peers get no slack beyond that).
pub const MAX_REPLY_LINE_LEN: usize = 512;

/// Most continuation lines one reply may carry. Real EHLO responses top
/// out at a couple dozen capability lines; a `250-`-forever peer is an
/// attack on the client's memory and patience, not a mail server.
pub const MAX_REPLY_LINES: usize = 64;

/// Reads one line without the unbounded buffering of `read_line`: bytes
/// accumulate through the `BufReader` until `\n`, and the read aborts
/// with [`SmtpError::ReplyLineTooLong`] the moment the cap is crossed —
/// a peer streaming an endless line cannot grow the buffer past it.
async fn read_bounded_line<S: AsyncRead + Unpin>(
    reader: &mut BufReader<S>,
) -> Result<String, SmtpError> {
    use std::pin::Pin;
    use tokio::io::AsyncBufRead;
    let mut line: Vec<u8> = Vec::new();
    loop {
        let (consumed, finished) = {
            let available = std::future::poll_fn(|cx| {
                Pin::new(&mut *reader)
                    .poll_fill_buf(cx)
                    .map(|r| r.map(Vec::from))
            })
            .await?;
            if available.is_empty() {
                return Err(SmtpError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-reply",
                )));
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&available[..i]);
                    (i + 1, true)
                }
                None => {
                    line.extend_from_slice(&available);
                    (available.len(), false)
                }
            }
        };
        Pin::new(&mut *reader).consume(consumed);
        if line.len() > MAX_REPLY_LINE_LEN {
            return Err(SmtpError::ReplyLineTooLong {
                limit: MAX_REPLY_LINE_LEN,
            });
        }
        if finished {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map_err(|e| SmtpError::Malformed(format!("non-UTF-8 reply: {e}")));
        }
    }
}

/// Reads one (possibly multi-line) SMTP reply.
///
/// Hostility bounds: each line is capped at [`MAX_REPLY_LINE_LEN`] octets
/// and a multiline reply at [`MAX_REPLY_LINES`] lines; crossing either
/// cap yields a typed [`SmtpError`] instead of an unbounded read. Public
/// so the hostile-bytes test suite can drive it directly.
pub async fn read_reply<S: AsyncRead + Unpin>(
    reader: &mut BufReader<S>,
) -> Result<(ReplyCode, Vec<String>), SmtpError> {
    let mut lines = Vec::new();
    loop {
        let line = read_bounded_line(reader).await?;
        if line.len() < 3 {
            return Err(SmtpError::Malformed(line));
        }
        // `get` (not a direct slice): a multibyte char straddling byte 3
        // must surface as Malformed, not a char-boundary panic.
        let code: u16 = line
            .get(..3)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SmtpError::Malformed(line.clone()))?;
        let more = line.as_bytes().get(3) == Some(&b'-');
        let text = line.get(4..).unwrap_or("").to_string();
        lines.push(text);
        if !more {
            return Ok((ReplyCode(code), lines));
        }
        if lines.len() >= MAX_REPLY_LINES {
            return Err(SmtpError::TooManyReplyLines {
                limit: MAX_REPLY_LINES,
            });
        }
    }
}

/// Sends one command and reads the reply.
async fn command<S: AsyncRead + AsyncWrite + Unpin>(
    reader: &mut BufReader<S>,
    line: &str,
) -> Result<(ReplyCode, Vec<String>), SmtpError> {
    reader
        .get_mut()
        .write_all(format!("{line}\r\n").as_bytes())
        .await?;
    reader.get_mut().flush().await?;
    read_reply(reader).await
}

/// Expects a specific reply class, otherwise returns `UnexpectedReply`.
fn expect_positive(
    phase: &'static str,
    reply: (ReplyCode, Vec<String>),
) -> Result<(ReplyCode, Vec<String>), SmtpError> {
    if reply.0.is_positive() {
        Ok(reply)
    } else {
        Err(SmtpError::UnexpectedReply {
            phase,
            code: reply.0,
            text: reply.1.first().cloned().unwrap_or_default(),
        })
    }
}

/// Runs the instrumented probe over an established transport stream.
pub async fn probe_mx<S: AsyncRead + AsyncWrite + Unpin>(
    io: S,
    config: &ProbeConfig,
) -> Result<ProbeResult, SmtpError> {
    let mut reader = BufReader::new(io);
    let (code, greeting_lines) = read_reply(&mut reader).await?;
    if !code.is_positive() {
        return Err(SmtpError::UnexpectedReply {
            phase: "greeting",
            code,
            text: greeting_lines.first().cloned().unwrap_or_default(),
        });
    }
    let greeting = greeting_lines.first().cloned().unwrap_or_default();

    // EHLO, falling back to HELO on 500-class refusals (§4.1 footnote 3).
    let mut used_helo_fallback = false;
    let mut capabilities = Vec::new();
    let ehlo = command(&mut reader, &format!("EHLO {}", config.helo_name)).await?;
    if ehlo.0.is_positive() {
        capabilities = ehlo
            .1
            .iter()
            .skip(1)
            .map(|l| Capability::parse(l))
            .collect();
    } else {
        used_helo_fallback = true;
        expect_positive(
            "HELO",
            command(&mut reader, &format!("HELO {}", config.helo_name)).await?,
        )?;
    }
    let starttls_offered = capabilities.contains(&Capability::StartTls);

    // STARTTLS + certificate retrieval (opportunistic: we validate offline).
    if starttls_offered {
        let go_ahead = command(&mut reader, "STARTTLS").await?;
        if go_ahead.0 != ReplyCode::READY {
            let _ = command(&mut reader, "QUIT").await;
            return Ok(ProbeResult {
                greeting,
                used_helo_fallback,
                capabilities,
                starttls_offered,
                tls: Some(Err(format!("STARTTLS refused with {}", go_ahead.0))),
            });
        }
        let inner = reader.into_inner();
        let tls = match client_handshake(
            inner,
            ClientConfig::opportunistic(config.mx_hostname.clone(), config.nonce, config.dh_secret),
        )
        .await
        {
            Ok(session) => {
                // End the session politely over TLS, ignoring failures —
                // the evidence is already in hand.
                let chain = session.peer_chain;
                let mut tls_reader = BufReader::new(session.stream);
                let _ = command(&mut tls_reader, "QUIT").await;
                Ok(chain)
            }
            Err(e) => Err(e.to_string()),
        };
        return Ok(ProbeResult {
            greeting,
            used_helo_fallback,
            capabilities,
            starttls_offered,
            tls: Some(tls),
        });
    }

    // No STARTTLS: quit in plaintext.
    let _ = command(&mut reader, "QUIT").await;
    Ok(ProbeResult {
        greeting,
        used_helo_fallback,
        capabilities,
        starttls_offered,
        tls: None,
    })
}

/// How a delivery attempt concluded.
#[derive(Debug)]
pub enum DeliveryOutcome {
    /// The message was accepted.
    Delivered {
        /// Whether the session was upgraded to TLS.
        tls_used: bool,
        /// Whether the certificate was validated (PKIX policy only).
        cert_validated: bool,
    },
    /// The server rejected the transaction (5xx/4xx on MAIL/RCPT/DATA).
    Rejected {
        /// Phase in which rejection occurred.
        phase: &'static str,
        /// Reply code.
        code: ReplyCode,
        /// Reply text.
        text: String,
    },
}

/// The mail transaction once a (possibly TLS) session is established and
/// greeted.
async fn transact<S: AsyncRead + AsyncWrite + Unpin>(
    reader: &mut BufReader<S>,
    envelope: &Envelope,
) -> Result<Option<(&'static str, ReplyCode, String)>, SmtpError> {
    let from = command(reader, &format!("MAIL FROM:<{}>", envelope.mail_from)).await?;
    if !from.0.is_positive() {
        return Ok(Some((
            "MAIL",
            from.0,
            from.1.first().cloned().unwrap_or_default(),
        )));
    }
    for rcpt in &envelope.rcpt_to {
        let r = command(reader, &format!("RCPT TO:<{rcpt}>")).await?;
        if !r.0.is_positive() {
            return Ok(Some((
                "RCPT",
                r.0,
                r.1.first().cloned().unwrap_or_default(),
            )));
        }
    }
    let data = command(reader, "DATA").await?;
    if data.0 != ReplyCode::START_INPUT {
        return Ok(Some((
            "DATA",
            data.0,
            data.1.first().cloned().unwrap_or_default(),
        )));
    }
    // Dot-stuff the body per RFC 5321 §4.5.2.
    let mut payload = String::new();
    for line in envelope.body.lines() {
        if line.starts_with('.') {
            payload.push('.');
        }
        payload.push_str(line);
        payload.push_str("\r\n");
    }
    payload.push_str(".\r\n");
    reader.get_mut().write_all(payload.as_bytes()).await?;
    reader.get_mut().flush().await?;
    let fin = read_reply(reader).await?;
    if !fin.0.is_positive() {
        return Ok(Some((
            "END-OF-DATA",
            fin.0,
            fin.1.first().cloned().unwrap_or_default(),
        )));
    }
    let _ = command(reader, "QUIT").await;
    Ok(None)
}

/// Delivers `envelope` over an established transport under `policy`.
pub async fn deliver<S: AsyncRead + AsyncWrite + Unpin>(
    io: S,
    helo_name: &DomainName,
    mx_hostname: &DomainName,
    envelope: &Envelope,
    policy: &TlsPolicy,
    nonce: u64,
    dh_secret: u64,
) -> Result<DeliveryOutcome, SmtpError> {
    let mut reader = BufReader::new(io);
    expect_positive("greeting", read_reply(&mut reader).await?)?;
    let ehlo = command(&mut reader, &format!("EHLO {helo_name}")).await?;
    let capabilities: Vec<Capability> = if ehlo.0.is_positive() {
        ehlo.1
            .iter()
            .skip(1)
            .map(|l| Capability::parse(l))
            .collect()
    } else {
        expect_positive(
            "HELO",
            command(&mut reader, &format!("HELO {helo_name}")).await?,
        )?;
        Vec::new()
    };
    let starttls_offered = capabilities.contains(&Capability::StartTls);

    let want_tls = !matches!(policy, TlsPolicy::Disabled);
    let must_tls = matches!(policy, TlsPolicy::RequirePkix { .. });
    if must_tls && !starttls_offered {
        return Err(SmtpError::StartTlsNotOffered);
    }

    if want_tls && starttls_offered {
        let go_ahead = command(&mut reader, "STARTTLS").await?;
        if go_ahead.0 != ReplyCode::READY {
            if must_tls {
                return Err(SmtpError::UnexpectedReply {
                    phase: "STARTTLS",
                    code: go_ahead.0,
                    text: go_ahead.1.first().cloned().unwrap_or_default(),
                });
            }
            // Opportunistic: carry on in plaintext.
            return finish_plaintext(&mut reader, helo_name, envelope).await;
        }
        let inner = reader.into_inner();
        let session = client_handshake(
            inner,
            ClientConfig::opportunistic(mx_hostname.clone(), nonce, dh_secret),
        )
        .await
        .map_err(SmtpError::Tls)?;

        let mut cert_validated = false;
        match policy {
            TlsPolicy::RequirePkix { roots, now, host } => {
                validate_cert(&session.peer_chain, host, *now, roots)?;
                cert_validated = true;
            }
            TlsPolicy::OpportunisticAudit { roots, now, host } => {
                // Audit-only: a bad chain is recorded, never fatal.
                cert_validated = validate_chain(&session.peer_chain, host, *now, roots).is_ok();
            }
            _ => {}
        }

        let mut tls_reader = BufReader::new(session.stream);
        // Fresh EHLO over TLS per RFC 3207.
        let ehlo2 = command(&mut tls_reader, &format!("EHLO {helo_name}")).await?;
        expect_positive("EHLO-over-TLS", ehlo2)?;
        return match transact(&mut tls_reader, envelope).await? {
            None => Ok(DeliveryOutcome::Delivered {
                tls_used: true,
                cert_validated,
            }),
            Some((phase, code, text)) => Ok(DeliveryOutcome::Rejected { phase, code, text }),
        };
    }

    finish_plaintext(&mut reader, helo_name, envelope).await
}

async fn finish_plaintext<S: AsyncRead + AsyncWrite + Unpin>(
    reader: &mut BufReader<S>,
    _helo_name: &DomainName,
    envelope: &Envelope,
) -> Result<DeliveryOutcome, SmtpError> {
    match transact(reader, envelope).await? {
        None => Ok(DeliveryOutcome::Delivered {
            tls_used: false,
            cert_validated: false,
        }),
        Some((phase, code, text)) => Ok(DeliveryOutcome::Rejected { phase, code, text }),
    }
}

fn validate_cert(
    chain: &[SimCert],
    host: &DomainName,
    now: SimInstant,
    roots: &TrustStore,
) -> Result<(), SmtpError> {
    validate_chain(chain, host, now, roots).map_err(SmtpError::Cert)
}

/// Re-export for callers that classify probe chains offline.
pub fn classify_chain(
    chain: &[SimCert],
    host: &DomainName,
    now: SimInstant,
    roots: &TrustStore,
) -> Result<(), CertError> {
    validate_chain(chain, host, now, roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{serve_connection, MxBehavior, MxConfig, RecipientPolicy};
    use netbase::SimDate;
    use pkix::CertAuthority;
    use tlssim::{ServerConfig, ServerIdentity};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn now() -> SimInstant {
        SimDate::ymd(2024, 9, 29).at_midnight()
    }

    struct Pki {
        root: CertAuthority,
        store: TrustStore,
    }

    fn pki() -> Pki {
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let root = CertAuthority::new_root("Root", nb, na);
        let mut store = TrustStore::empty();
        store.add_root(&root);
        Pki { root, store }
    }

    fn mx_with_cert(pki: &mut Pki, host: &str) -> MxConfig {
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let dn = n(host);
        let mut identity = ServerIdentity::empty();
        identity.install(
            dn.clone(),
            vec![pki.root.issue_leaf(std::slice::from_ref(&dn), nb, na)],
        );
        MxConfig::new(
            dn,
            Some(ServerConfig {
                identity,
                behavior: Default::default(),
                nonce: 77,
                dh_secret: 777,
            }),
        )
    }

    fn probe_config(mx: &str) -> ProbeConfig {
        ProbeConfig {
            helo_name: n("scanner.example.org"),
            mx_hostname: n(mx),
            nonce: 5,
            dh_secret: 55,
        }
    }

    #[tokio::test]
    async fn probe_retrieves_certificate() {
        let mut pki = pki();
        let config = mx_with_cert(&mut pki, "mx.example.com");
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move { serve_connection(server_io, &config).await });
        let result = probe_mx(client_io, &probe_config("mx.example.com"))
            .await
            .unwrap();
        assert!(result.greeting.contains("mx.example.com"));
        assert!(!result.used_helo_fallback);
        assert!(result.starttls_offered);
        let chain = result.peer_chain().expect("chain retrieved");
        assert!(classify_chain(chain, &n("mx.example.com"), now(), &pki.store).is_ok());
    }

    #[tokio::test]
    async fn probe_detects_missing_starttls() {
        let config = MxConfig::new(n("mx.plain.com"), None);
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move { serve_connection(server_io, &config).await });
        let result = probe_mx(client_io, &probe_config("mx.plain.com"))
            .await
            .unwrap();
        assert!(!result.starttls_offered);
        assert!(result.tls.is_none());
    }

    #[tokio::test]
    async fn probe_helo_fallback() {
        let mut config = MxConfig::new(n("mx.old.com"), None);
        config.behavior = MxBehavior::HeloOnly;
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move { serve_connection(server_io, &config).await });
        let result = probe_mx(client_io, &probe_config("mx.old.com"))
            .await
            .unwrap();
        assert!(result.used_helo_fallback);
        assert!(result.capabilities.is_empty());
    }

    #[tokio::test]
    async fn probe_sees_invalid_certificates_too() {
        // Self-signed MX: the probe still retrieves the chain; offline
        // classification reports SelfSigned (§4.3.4's taxonomy).
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let dn = n("mx.selfsigned.com");
        let mut identity = ServerIdentity::empty();
        identity.install(
            dn.clone(),
            vec![pkix::authority::self_signed_leaf(
                std::slice::from_ref(&dn),
                nb,
                na,
            )],
        );
        let config = MxConfig::new(
            dn.clone(),
            Some(ServerConfig {
                identity,
                behavior: Default::default(),
                nonce: 1,
                dh_secret: 2,
            }),
        );
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move { serve_connection(server_io, &config).await });
        let result = probe_mx(client_io, &probe_config("mx.selfsigned.com"))
            .await
            .unwrap();
        let chain = result.peer_chain().unwrap();
        let verdict = classify_chain(chain, &dn, now(), &pki().store);
        assert_eq!(verdict, Err(CertError::SelfSigned));
    }

    #[tokio::test]
    async fn deliver_opportunistic_with_tls() {
        let mut pki = pki();
        let config = mx_with_cert(&mut pki, "mx.example.com");
        let sink = config.sink.clone();
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move { serve_connection(server_io, &config).await });
        let envelope = Envelope::new("a@sender.org", "user@example.com", "hello\n.dot-stuffed\n");
        let outcome = deliver(
            client_io,
            &n("sender.org"),
            &n("mx.example.com"),
            &envelope,
            &TlsPolicy::Opportunistic,
            1,
            2,
        )
        .await
        .unwrap();
        assert!(matches!(
            outcome,
            DeliveryOutcome::Delivered {
                tls_used: true,
                cert_validated: false
            }
        ));
        assert_eq!(sink.len(), 1);
        assert!(sink.messages()[0].body.contains(".dot-stuffed"));
    }

    #[tokio::test]
    async fn deliver_opportunistic_falls_back_to_plaintext() {
        let config = MxConfig::new(n("mx.plain.com"), None);
        let sink = config.sink.clone();
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move { serve_connection(server_io, &config).await });
        let envelope = Envelope::new("a@sender.org", "user@plain.com", "body");
        let outcome = deliver(
            client_io,
            &n("sender.org"),
            &n("mx.plain.com"),
            &envelope,
            &TlsPolicy::Opportunistic,
            1,
            2,
        )
        .await
        .unwrap();
        assert!(matches!(
            outcome,
            DeliveryOutcome::Delivered {
                tls_used: false,
                ..
            }
        ));
        assert_eq!(sink.len(), 1);
    }

    #[tokio::test]
    async fn deliver_pkix_required_rejects_self_signed() {
        let nb = SimDate::ymd(2023, 1, 1).at_midnight();
        let na = SimDate::ymd(2026, 1, 1).at_midnight();
        let dn = n("mx.selfsigned.com");
        let mut identity = ServerIdentity::empty();
        identity.install(
            dn.clone(),
            vec![pkix::authority::self_signed_leaf(
                std::slice::from_ref(&dn),
                nb,
                na,
            )],
        );
        let config = MxConfig::new(
            dn.clone(),
            Some(ServerConfig {
                identity,
                behavior: Default::default(),
                nonce: 1,
                dh_secret: 2,
            }),
        );
        let sink = config.sink.clone();
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move { serve_connection(server_io, &config).await });
        let envelope = Envelope::new("a@sender.org", "user@selfsigned.com", "body");
        let err = deliver(
            client_io,
            &n("sender.org"),
            &dn,
            &envelope,
            &TlsPolicy::RequirePkix {
                roots: pki().store,
                now: now(),
                host: dn.clone(),
            },
            1,
            2,
        )
        .await
        .err()
        .expect("delivery must fail");
        assert!(matches!(err, SmtpError::Cert(CertError::SelfSigned)));
        assert!(
            sink.is_empty(),
            "no mail must be delivered on enforce-failure"
        );
    }

    #[tokio::test]
    async fn deliver_pkix_required_fails_without_starttls() {
        let config = MxConfig::new(n("mx.plain.com"), None);
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move { serve_connection(server_io, &config).await });
        let envelope = Envelope::new("a@sender.org", "user@plain.com", "body");
        let err = deliver(
            client_io,
            &n("sender.org"),
            &n("mx.plain.com"),
            &envelope,
            &TlsPolicy::RequirePkix {
                roots: pki().store,
                now: now(),
                host: n("mx.plain.com"),
            },
            1,
            2,
        )
        .await
        .err()
        .expect("must fail");
        assert!(matches!(err, SmtpError::StartTlsNotOffered));
    }

    #[tokio::test]
    async fn deliver_surfaces_recipient_rejection() {
        let mut config = MxConfig::new(n("mail.tutanota.de"), None);
        config.recipient_policy = RecipientPolicy::RejectAll;
        let (client_io, server_io) = tokio::io::duplex(8192);
        tokio::spawn(async move { serve_connection(server_io, &config).await });
        let envelope = Envelope::new("a@sender.org", "user@cancelled.com", "body");
        let outcome = deliver(
            client_io,
            &n("sender.org"),
            &n("mail.tutanota.de"),
            &envelope,
            &TlsPolicy::Disabled,
            1,
            2,
        )
        .await
        .unwrap();
        let DeliveryOutcome::Rejected { phase, code, .. } = outcome else {
            panic!("expected rejection")
        };
        assert_eq!(phase, "RCPT");
        assert_eq!(code, ReplyCode::REJECTED);
    }
}
