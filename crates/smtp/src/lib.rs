//! SMTP with STARTTLS: the mail-transport substrate.
//!
//! The paper probes every MX of every MTA-STS domain with an instrumented
//! SMTP client (§4.1): connect, EHLO (HELO fallback), check the STARTTLS
//! capability, upgrade, retrieve the certificate, quit without sending
//! mail. Sender-side analysis (§6) additionally needs real delivery
//! attempts under different TLS policies. This crate provides both sides:
//!
//! - [`types`]: reply codes, capabilities, envelopes, error taxonomy;
//! - [`server`]: an async MX server with a correct EHLO/STARTTLS state
//!   machine, per-SNI certificates, greylisting and fault injection, and a
//!   recipient policy hook (Tutanota-style rejection of unsubscribed
//!   customers, §5);
//! - [`client`]: the instrumented probe ([`client::probe_mx`]) and a
//!   delivering client ([`client::deliver`]) with configurable TLS
//!   enforcement (none / opportunistic / PKIX-required) matching the sender
//!   behaviours of §6.2.

pub mod client;
pub mod server;
pub mod types;

pub use client::{
    deliver, probe_mx, read_reply, DeliveryOutcome, ProbeConfig, ProbeResult, TlsPolicy,
    MAX_REPLY_LINES, MAX_REPLY_LINE_LEN,
};
pub use server::{serve_connection, MxBehavior, MxConfig, MxServer};
pub use types::{Capability, Envelope, ReplyCode, SmtpError};
