//! MX-record ↔ mx-pattern consistency: matching and mismatch taxonomy.
//!
//! Even when every component is individually healthy, MTA-STS fails if the
//! domain's actual MX records don't match the policy's `mx` patterns
//! (§4.4 of the paper). This module provides the sender-side match test and
//! the paper's four-way classification of mismatches:
//!
//! - **TLD mismatch** — pattern and MX differ in their top-level domain;
//! - **Complete domain mismatch** — no meaningful overlap;
//! - **Partial (3LD+) mismatch** — same effective SLD, labels diverge from
//!   the third level (often a stray `mta-sts.` label from misreading the
//!   RFC: 597 of 730 such domains in the paper's latest snapshot);
//! - **Typo** — edit distance ≤ 3 to some MX (and not a TLD mismatch).

use crate::policy::{MxPattern, Policy};
use netbase::{levenshtein_within, DomainName};
use serde::{Deserialize, Serialize};

/// Edit-distance bound for the typo class (§4.4 uses ≤ 3).
pub const TYPO_EDIT_DISTANCE: usize = 3;

/// Whether `mx_host` matches at least one pattern of `policy` (RFC 8461
/// §4.1 — the test a sender runs before opening the TLS session).
pub fn mx_matches_policy(mx_host: &DomainName, policy: &Policy) -> bool {
    policy.mx.iter().any(|p| p.matches(mx_host))
}

/// Whether *every* listed MX matches, whether *some* match, or none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverageOutcome {
    /// Every MX host matches some pattern.
    AllMatch,
    /// At least one matches, at least one does not.
    PartialMatch,
    /// No MX host matches any pattern.
    NoneMatch,
    /// The domain has no MX hosts to check.
    NoMxHosts,
}

/// Evaluates pattern coverage over a domain's full MX set.
pub fn coverage(mx_hosts: &[DomainName], policy: &Policy) -> CoverageOutcome {
    if mx_hosts.is_empty() {
        return CoverageOutcome::NoMxHosts;
    }
    let matched = mx_hosts
        .iter()
        .filter(|h| mx_matches_policy(h, policy))
        .count();
    if matched == mx_hosts.len() {
        CoverageOutcome::AllMatch
    } else if matched > 0 {
        CoverageOutcome::PartialMatch
    } else {
        CoverageOutcome::NoneMatch
    }
}

/// The paper's mismatch classes (§4.4, Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MismatchKind {
    /// The TLDs differ.
    Tld,
    /// Entirely different domain names (different eSLDs, not a typo).
    CompleteDomain,
    /// Same effective SLD, divergence from the third label on.
    PartialThirdLabel,
    /// Within edit distance ≤ 3 of an actual MX (and not a TLD mismatch).
    Typo,
}

impl MismatchKind {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            MismatchKind::Tld => "tld-mismatch",
            MismatchKind::CompleteDomain => "complete-domain-mismatch",
            MismatchKind::PartialThirdLabel => "3ld+-mismatch",
            MismatchKind::Typo => "typo",
        }
    }
}

/// Classifies why `pattern` fails to match any of `mx_hosts`.
///
/// Per the paper's definitions, the checks run in this order: typo (edit
/// distance ≤ 3 to some MX, TLD mismatches excluded), TLD mismatch, 3LD+
/// (same eSLD), complete mismatch. Returns `None` when the pattern in fact
/// matches some MX.
pub fn classify_mismatch(pattern: &MxPattern, mx_hosts: &[DomainName]) -> Option<MismatchKind> {
    if mx_hosts.iter().any(|h| pattern.matches(h)) {
        return None;
    }
    let pname = pattern.name();
    // Typo: small edit distance to some MX, where the TLD still agrees
    // ("TLD mismatches do not qualify as typos").
    let is_typo = mx_hosts.iter().any(|h| {
        h.tld() == pname.tld()
            && levenshtein_within(&h.to_string(), &pname.to_string(), TYPO_EDIT_DISTANCE)
                .map(|d| d > 0)
                .unwrap_or(false)
    });
    if is_typo {
        return Some(MismatchKind::Typo);
    }
    // TLD mismatch: the pattern's TLD differs from every MX's TLD.
    if !mx_hosts.is_empty() && mx_hosts.iter().all(|h| h.tld() != pname.tld()) {
        return Some(MismatchKind::Tld);
    }
    // 3LD+: shares an effective SLD with some MX but diverges above it.
    if mx_hosts.iter().any(|h| h.same_esld(pname)) {
        return Some(MismatchKind::PartialThirdLabel);
    }
    Some(MismatchKind::CompleteDomain)
}

/// Classifies a whole policy against the MX set: the dominant mismatch per
/// pattern, for Figure 8-style aggregation. Patterns that match are skipped.
pub fn classify_policy_mismatches(
    policy: &Policy,
    mx_hosts: &[DomainName],
) -> Vec<(MxPattern, MismatchKind)> {
    policy
        .mx
        .iter()
        .filter_map(|p| classify_mismatch(p, mx_hosts).map(|k| (p.clone(), k)))
        .collect()
}

/// The "stray mta-sts label" detector: the paper found 81.8% of 3LD+
/// mismatches embed the literal `mta-sts` label in the pattern, a
/// misreading of RFC 8461.
pub fn has_stray_mta_sts_label(pattern: &MxPattern) -> bool {
    pattern
        .name()
        .labels()
        .iter()
        .any(|l| l == "mta-sts" || l == "_mta-sts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Mode;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn pat(s: &str) -> MxPattern {
        MxPattern::parse(s).unwrap()
    }

    fn policy(patterns: &[&str]) -> Policy {
        Policy::new(
            Mode::Enforce,
            86_400,
            patterns.iter().map(|p| pat(p)).collect(),
        )
    }

    #[test]
    fn sender_match_test() {
        let p = policy(&["mx1.example.com", "*.example.net"]);
        assert!(mx_matches_policy(&n("mx1.example.com"), &p));
        assert!(mx_matches_policy(&n("in.example.net"), &p));
        assert!(!mx_matches_policy(&n("mx2.example.com"), &p));
    }

    #[test]
    fn coverage_classes() {
        let p = policy(&["mx1.example.com"]);
        assert_eq!(
            coverage(&[n("mx1.example.com")], &p),
            CoverageOutcome::AllMatch
        );
        assert_eq!(
            coverage(&[n("mx1.example.com"), n("mx2.example.com")], &p),
            CoverageOutcome::PartialMatch
        );
        assert_eq!(coverage(&[n("other.org")], &p), CoverageOutcome::NoneMatch);
        assert_eq!(coverage(&[], &p), CoverageOutcome::NoMxHosts);
    }

    #[test]
    fn match_is_not_a_mismatch() {
        assert_eq!(
            classify_mismatch(&pat("mx.example.com"), &[n("mx.example.com")]),
            None
        );
        assert_eq!(
            classify_mismatch(&pat("*.example.com"), &[n("mx.example.com")]),
            None
        );
    }

    #[test]
    fn tld_mismatch() {
        // Classic: policy says .com, MX lives under .net.
        assert_eq!(
            classify_mismatch(&pat("mx.example.com"), &[n("mx.example.net")]),
            Some(MismatchKind::Tld)
        );
    }

    #[test]
    fn complete_domain_mismatch() {
        assert_eq!(
            classify_mismatch(&pat("mx.oldprovider.com"), &[n("in.newprovider.com")]),
            Some(MismatchKind::CompleteDomain)
        );
    }

    #[test]
    fn third_label_mismatch_with_stray_mta_sts() {
        // The paper's signature error: the pattern embeds `mta-sts.`.
        let p = pat("mta-sts.example.com");
        assert_eq!(
            classify_mismatch(&p, &[n("mx.example.com")]),
            Some(MismatchKind::PartialThirdLabel)
        );
        assert!(has_stray_mta_sts_label(&p));
        assert!(!has_stray_mta_sts_label(&pat("mx.example.com")));
    }

    #[test]
    fn typo_detection() {
        // mx1 vs mx — edit distance 1, same TLD.
        assert_eq!(
            classify_mismatch(&pat("mx.example.com"), &[n("mx1.example.com")]),
            Some(MismatchKind::Typo)
        );
        // Transposition typo.
        assert_eq!(
            classify_mismatch(&pat("mial.example.com"), &[n("mail.example.com")]),
            Some(MismatchKind::Typo)
        );
    }

    #[test]
    fn tld_mismatch_never_counts_as_typo() {
        // mx.example.com vs mx.example.con — distance 1 but TLD differs.
        assert_eq!(
            classify_mismatch(&pat("mx.example.con"), &[n("mx.example.com")]),
            Some(MismatchKind::Tld)
        );
    }

    #[test]
    fn typo_takes_precedence_over_3ld() {
        // Same eSLD *and* tiny edit distance: the paper's taxonomy calls
        // this a typo (manual-entry artefact).
        assert_eq!(
            classify_mismatch(&pat("mx0.example.com"), &[n("mx1.example.com")]),
            Some(MismatchKind::Typo)
        );
    }

    #[test]
    fn wildcard_pattern_mismatch_classification() {
        // Wildcard for the wrong domain entirely.
        assert_eq!(
            classify_mismatch(&pat("*.googlemail.com"), &[n("mx.example.org")]),
            Some(MismatchKind::Tld)
        );
    }

    #[test]
    fn whole_policy_classification() {
        let p = policy(&["mx1.example.com", "mta-sts.example.com", "mx.other.net"]);
        let mx = vec![n("mx1.example.com"), n("mx2.example.com")];
        let mismatches = classify_policy_mismatches(&p, &mx);
        // First pattern matches; the other two are classified.
        assert_eq!(mismatches.len(), 2);
        assert_eq!(mismatches[0].1, MismatchKind::PartialThirdLabel);
        assert_eq!(mismatches[1].1, MismatchKind::Tld);
    }

    #[test]
    fn labels_stable() {
        assert_eq!(MismatchKind::Typo.label(), "typo");
        assert_eq!(MismatchKind::PartialThirdLabel.label(), "3ld+-mismatch");
    }
}
