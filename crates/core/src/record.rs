//! The MTA-STS DNS record (`_mta-sts.<domain> IN TXT`), RFC 8461 §3.1.
//!
//! Grammar:
//!
//! ```text
//! sts-text-record = sts-version 1*(field-delim sts-field) [field-delim]
//! sts-version     = "v=STSv1"
//! field-delim     = *WSP ";" *WSP
//! sts-field       = sts-id / sts-extension
//! sts-id          = "id=" 1*32(ALPHA / DIGIT)
//! sts-extension   = sts-ext-name "=" sts-ext-value
//! sts-ext-name    = (ALPHA / DIGIT) *31(ALPHA / DIGIT / "_" / "-" / ".")
//! ```
//!
//! §4.3.2 of the paper classifies wild records into exactly the error
//! classes this module produces: missing `id` (19.6% of broken records),
//! invalid `id` such as dates with dashes (61%), bad version prefix
//! (15.7%), and invalid extension fields. A domain publishing more than one
//! `v=STSv1` record is treated as *not deployed* per the RFC.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed, valid MTA-STS record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StsRecord {
    /// The policy instance identifier (changes signal a new policy).
    pub id: String,
    /// Extension fields, in order of appearance.
    pub extensions: Vec<(String, String)>,
}

/// Ways a record (or record set) fails, mirroring §4.3.2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordError {
    /// The text does not begin with `v=STSv1` (bad version prefix).
    BadVersionPrefix,
    /// No `id` field present.
    MissingId,
    /// The `id` value violates `1*32(ALPHA / DIGIT)` — e.g. contains `-`.
    InvalidId(String),
    /// More than one `id` field.
    DuplicateId,
    /// An extension field violates the ABNF (bad name, missing `=`, or the
    /// study's observed `mx:`/`mode:` misfields inside the TXT record).
    InvalidExtension(String),
    /// More than one record in the set begins with `v=STSv1`: MTA-STS is
    /// treated as not deployed.
    MultipleRecords(usize),
    /// No record beginning with `v=STSv1` exists at the name.
    NoRecord,
}

impl RecordError {
    /// Short machine-readable label used in scan reports.
    pub fn label(&self) -> &'static str {
        match self {
            RecordError::BadVersionPrefix => "bad-version-prefix",
            RecordError::MissingId => "missing-id",
            RecordError::InvalidId(_) => "invalid-id",
            RecordError::DuplicateId => "duplicate-id",
            RecordError::InvalidExtension(_) => "invalid-extension",
            RecordError::MultipleRecords(_) => "multiple-records",
            RecordError::NoRecord => "no-record",
        }
    }
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::BadVersionPrefix => write!(f, "record does not begin with v=STSv1"),
            RecordError::MissingId => write!(f, "record has no id field"),
            RecordError::InvalidId(id) => {
                write!(f, "invalid id {id:?} (must be 1*32 alphanumeric)")
            }
            RecordError::DuplicateId => write!(f, "record has more than one id field"),
            RecordError::InvalidExtension(e) => write!(f, "invalid extension field {e:?}"),
            RecordError::MultipleRecords(n) => {
                write!(f, "{n} records begin with v=STSv1 (at most one allowed)")
            }
            RecordError::NoRecord => write!(f, "no MTA-STS record present"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Whether `s` is a valid `sts-id`: 1 to 32 ASCII alphanumerics.
fn valid_id(s: &str) -> bool {
    !s.is_empty() && s.len() <= 32 && s.bytes().all(|b| b.is_ascii_alphanumeric())
}

/// Whether `s` is a valid `sts-ext-name`.
fn valid_ext_name(s: &str) -> bool {
    let bytes = s.as_bytes();
    let Some(&first) = bytes.first() else {
        return false;
    };
    if !first.is_ascii_alphanumeric() || bytes.len() > 32 {
        return false;
    }
    bytes[1..]
        .iter()
        .all(|&b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
}

/// Whether `s` is a valid `sts-ext-value` (visible ASCII except `;`, per the
/// RFC's `%x21-3A / %x3C / %x3E-7E`).
fn valid_ext_value(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| matches!(b, 0x21..=0x3A | 0x3C | 0x3E..=0x7E))
}

/// Parses a single TXT string as an MTA-STS record.
pub fn parse_record(text: &str) -> Result<StsRecord, RecordError> {
    // The version tag must come first, byte-for-byte.
    let Some(rest) = text.strip_prefix("v=STSv1") else {
        return Err(RecordError::BadVersionPrefix);
    };
    let mut id: Option<String> = None;
    let mut extensions = Vec::new();
    for raw_field in rest.split(';') {
        let field = raw_field.trim();
        if field.is_empty() {
            continue; // field-delim allows trailing/padded delimiters
        }
        let Some((name, value)) = field.split_once('=') else {
            return Err(RecordError::InvalidExtension(field.to_string()));
        };
        let name = name.trim();
        let value = value.trim();
        if name == "id" {
            if id.is_some() {
                return Err(RecordError::DuplicateId);
            }
            if !valid_id(value) {
                return Err(RecordError::InvalidId(value.to_string()));
            }
            id = Some(value.to_string());
        } else {
            if !valid_ext_name(name) || !valid_ext_value(value) {
                return Err(RecordError::InvalidExtension(field.to_string()));
            }
            extensions.push((name.to_string(), value.to_string()));
        }
    }
    let Some(id) = id else {
        return Err(RecordError::MissingId);
    };
    Ok(StsRecord { id, extensions })
}

/// Evaluates the full TXT record set at `_mta-sts.<domain>` per RFC 8461:
/// TXT strings not beginning with `v=STSv1` are ignored; exactly one
/// STS record must remain; it must parse.
pub fn evaluate_record_set(txt_strings: &[String]) -> Result<StsRecord, RecordError> {
    let sts: Vec<&String> = txt_strings
        .iter()
        .filter(|s| s.starts_with("v=STSv1"))
        .collect();
    match sts.len() {
        0 => {
            // Distinguish "nothing here" from "a record exists but with a
            // bad version prefix" — the paper reports the latter class.
            if txt_strings.iter().any(|s| looks_like_sts_attempt(s)) {
                Err(RecordError::BadVersionPrefix)
            } else {
                Err(RecordError::NoRecord)
            }
        }
        1 => parse_record(sts[0]),
        n => Err(RecordError::MultipleRecords(n)),
    }
}

/// Heuristic for "this was meant to be an MTA-STS record": mentions STS in
/// a v= tag but with wrong spelling/case, e.g. `v=STSv1.` or `V=stsv1`.
fn looks_like_sts_attempt(s: &str) -> bool {
    let lower = s.to_ascii_lowercase();
    lower.contains("stsv1") || lower.starts_with("v=sts")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_record() {
        let r = parse_record("v=STSv1; id=20240131000000;").unwrap();
        assert_eq!(r.id, "20240131000000");
        assert!(r.extensions.is_empty());
    }

    #[test]
    fn parses_without_trailing_delimiter() {
        let r = parse_record("v=STSv1; id=abc123").unwrap();
        assert_eq!(r.id, "abc123");
    }

    #[test]
    fn parses_with_extensions() {
        let r = parse_record("v=STSv1; id=1a; ext-1=foo; a.b_c=bar;").unwrap();
        assert_eq!(r.extensions.len(), 2);
        assert_eq!(r.extensions[0], ("ext-1".to_string(), "foo".to_string()));
    }

    #[test]
    fn rejects_bad_version_prefix() {
        for bad in [
            "v=STSv2; id=1;",
            "STSv1; id=1;",
            " v=STSv1; id=1;",
            "v=stsv1; id=1;",
        ] {
            assert_eq!(
                parse_record(bad),
                Err(RecordError::BadVersionPrefix),
                "{bad}"
            );
        }
    }

    #[test]
    fn rejects_missing_id() {
        assert_eq!(parse_record("v=STSv1;"), Err(RecordError::MissingId));
        assert_eq!(parse_record("v=STSv1"), Err(RecordError::MissingId));
    }

    #[test]
    fn rejects_invalid_ids() {
        // The paper: 61% of broken records carry ids with characters like
        // '-', which the RFC forbids.
        for bad_id in ["2024-01-31", "a b", "", "x".repeat(33).as_str(), "id!"] {
            let text = format!("v=STSv1; id={bad_id};");
            match parse_record(&text) {
                Err(RecordError::InvalidId(_)) | Err(RecordError::MissingId) => {}
                other => panic!("id={bad_id:?} gave {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_duplicate_id() {
        assert_eq!(
            parse_record("v=STSv1; id=1; id=2;"),
            Err(RecordError::DuplicateId)
        );
    }

    #[test]
    fn rejects_invalid_extensions() {
        // The paper's example: "v=STSv1; id=1; mx: a.com; mode: testing;"
        // (policy fields stuffed into the record with colons, not `=`).
        assert!(matches!(
            parse_record("v=STSv1; id=1; mx: a.com; mode: testing;"),
            Err(RecordError::InvalidExtension(_))
        ));
        assert!(matches!(
            parse_record("v=STSv1; id=1; _badname=x;"),
            Err(RecordError::InvalidExtension(_))
        ));
        assert!(matches!(
            parse_record("v=STSv1; id=1; name=;"),
            Err(RecordError::InvalidExtension(_))
        ));
    }

    #[test]
    fn record_set_ignores_foreign_txt() {
        let set = vec![
            "google-site-verification=abcdef".to_string(),
            "v=STSv1; id=20240101;".to_string(),
            "v=spf1 -all".to_string(),
        ];
        assert_eq!(evaluate_record_set(&set).unwrap().id, "20240101");
    }

    #[test]
    fn record_set_rejects_multiple_sts_records() {
        let set = vec!["v=STSv1; id=1;".to_string(), "v=STSv1; id=2;".to_string()];
        assert_eq!(
            evaluate_record_set(&set),
            Err(RecordError::MultipleRecords(2))
        );
    }

    #[test]
    fn record_set_empty_is_no_record() {
        assert_eq!(evaluate_record_set(&[]), Err(RecordError::NoRecord));
        assert_eq!(
            evaluate_record_set(&["v=spf1 -all".to_string()]),
            Err(RecordError::NoRecord)
        );
    }

    #[test]
    fn record_set_detects_botched_version() {
        // Wrong case / misspelling counts as a bad version prefix, not as
        // absence — the paper's 15.7% class.
        let set = vec!["V=stsv1; id=1;".to_string()];
        assert_eq!(
            evaluate_record_set(&set),
            Err(RecordError::BadVersionPrefix)
        );
    }

    #[test]
    fn error_labels_stable() {
        assert_eq!(RecordError::MissingId.label(), "missing-id");
        assert_eq!(RecordError::InvalidId("x-y".into()).label(), "invalid-id");
        assert_eq!(RecordError::MultipleRecords(2).label(), "multiple-records");
    }

    #[test]
    fn id_grammar_boundaries() {
        assert!(valid_id("a"));
        assert!(valid_id(&"a".repeat(32)));
        assert!(!valid_id(&"a".repeat(33)));
        assert!(!valid_id("has-dash"));
        assert!(!valid_id(""));
    }
}
