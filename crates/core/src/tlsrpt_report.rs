//! SMTP TLS Report generation (RFC 8460 §4): the sender side of the
//! feedback loop.
//!
//! Appendix B of the paper observes that many domains publish TLSRPT
//! records but only two major providers actually *send* reports. This
//! module is the sending half: it aggregates a day's delivery outcomes per
//! recipient domain into the RFC 8460 JSON report structure, mapping
//! MTA-STS validation failures onto the standard result types.

use crate::engine::{StsFailure, StsOutcome};
use netbase::{DomainName, SimDate};
use pkix::CertError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// RFC 8460 §4.3 result types (the subset MTA-STS senders emit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResultType {
    /// `starttls-not-supported`.
    #[serde(rename = "starttls-not-supported")]
    StartTlsNotSupported,
    /// `certificate-expired`.
    #[serde(rename = "certificate-expired")]
    CertificateExpired,
    /// `certificate-not-trusted`.
    #[serde(rename = "certificate-not-trusted")]
    CertificateNotTrusted,
    /// `certificate-host-mismatch`.
    #[serde(rename = "certificate-host-mismatch")]
    CertificateHostMismatch,
    /// `validation-failure` (catch-all).
    #[serde(rename = "validation-failure")]
    ValidationFailure,
    /// `sts-policy-fetch-error`.
    #[serde(rename = "sts-policy-fetch-error")]
    StsPolicyFetchError,
    /// `sts-policy-invalid`.
    #[serde(rename = "sts-policy-invalid")]
    StsPolicyInvalid,
    /// `sts-webpki-invalid` (the MX failed PKIX under an STS policy).
    #[serde(rename = "sts-webpki-invalid")]
    StsWebpkiInvalid,
}

impl ResultType {
    /// Maps an engine outcome to the result type a report would carry.
    /// `None` means the delivery was successful or MTA-STS did not apply
    /// (nothing to report).
    pub fn from_outcome(outcome: &StsOutcome) -> Option<ResultType> {
        match outcome {
            StsOutcome::NotApplicable | StsOutcome::Validated { .. } => None,
            StsOutcome::RecordInvalid(_) => Some(ResultType::StsPolicyInvalid),
            StsOutcome::PolicyUnavailable { reason } => {
                if reason.contains("parse") {
                    Some(ResultType::StsPolicyInvalid)
                } else if reason.contains("certificate") {
                    // RFC 8460 §4.3.2: the policy could not be
                    // authenticated by PKIX — the policy host's HTTPS
                    // certificate failed validation (e.g. a MITM cert).
                    Some(ResultType::StsWebpkiInvalid)
                } else {
                    Some(ResultType::StsPolicyFetchError)
                }
            }
            StsOutcome::Failed { failure, .. } => Some(match failure {
                StsFailure::MxNotListed => ResultType::ValidationFailure,
                StsFailure::StartTlsUnavailable => ResultType::StartTlsNotSupported,
                StsFailure::CertInvalid(e) => match e {
                    CertError::Expired | CertError::IntermediateExpired => {
                        ResultType::CertificateExpired
                    }
                    CertError::NameMismatch { .. } => ResultType::CertificateHostMismatch,
                    CertError::SelfSigned | CertError::UnknownIssuer => {
                        ResultType::CertificateNotTrusted
                    }
                    _ => ResultType::StsWebpkiInvalid,
                },
                // DANE failures have no dedicated RFC 8460 result type;
                // they land in the generic validation bucket.
                StsFailure::DaneInvalid { .. } => ResultType::ValidationFailure,
            }),
        }
    }
}

/// One failure-details entry (RFC 8460 §4.4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureDetail {
    /// The result type.
    #[serde(rename = "result-type")]
    pub result_type: ResultType,
    /// The receiving MX the failure occurred against.
    #[serde(rename = "receiving-mx-hostname")]
    pub receiving_mx_hostname: String,
    /// Number of failed sessions of this kind.
    #[serde(rename = "failed-session-count")]
    pub failed_session_count: u64,
}

/// Per-policy result block (RFC 8460 §4.2; one per recipient domain here).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyResult {
    /// `sts`, `tlsa` or `no-policy-found`.
    #[serde(rename = "policy-type")]
    pub policy_type: String,
    /// The recipient domain the policy belongs to.
    #[serde(rename = "policy-domain")]
    pub policy_domain: String,
    /// Sessions that negotiated TLS successfully.
    #[serde(rename = "total-successful-session-count")]
    pub total_successful: u64,
    /// Sessions that failed.
    #[serde(rename = "total-failure-session-count")]
    pub total_failure: u64,
    /// Failure breakdown.
    #[serde(rename = "failure-details")]
    pub failure_details: Vec<FailureDetail>,
}

/// A full daily report (RFC 8460 §4.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlsReport {
    /// The reporting organization.
    #[serde(rename = "organization-name")]
    pub organization_name: String,
    /// Report window start (`YYYY-MM-DD`, midnight).
    #[serde(rename = "date-range-start")]
    pub date_range_start: String,
    /// Report window end.
    #[serde(rename = "date-range-end")]
    pub date_range_end: String,
    /// Contact address.
    #[serde(rename = "contact-info")]
    pub contact_info: String,
    /// Unique report id.
    #[serde(rename = "report-id")]
    pub report_id: String,
    /// One block per recipient-domain policy.
    pub policies: Vec<PolicyResult>,
}

/// Aggregates one day's delivery outcomes into per-domain reports.
#[derive(Debug, Clone, Default)]
pub struct ReportBuilder {
    /// (domain → (successes, failures by (type, mx))).
    domains: BTreeMap<DomainName, DomainTally>,
}

#[derive(Debug, Clone, Default)]
struct DomainTally {
    successes: u64,
    failures: BTreeMap<(ResultType, String), u64>,
}

impl ReportBuilder {
    /// An empty builder.
    pub fn new() -> ReportBuilder {
        ReportBuilder::default()
    }

    /// Records one delivery attempt's outcome against `mx`.
    pub fn record(&mut self, domain: &DomainName, mx: &DomainName, outcome: &StsOutcome) {
        let tally = self.domains.entry(domain.clone()).or_default();
        match ResultType::from_outcome(outcome) {
            None => tally.successes += 1,
            Some(result_type) => {
                *tally
                    .failures
                    .entry((result_type, mx.to_string()))
                    .or_default() += 1;
            }
        }
    }

    /// Number of recipient domains with recorded traffic.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Builds the final report for the given day.
    pub fn build(&self, organization: &str, contact: &str, day: SimDate) -> TlsReport {
        let policies = self
            .domains
            .iter()
            .map(|(domain, tally)| {
                let total_failure: u64 = tally.failures.values().sum();
                PolicyResult {
                    policy_type: "sts".to_string(),
                    policy_domain: domain.to_string(),
                    total_successful: tally.successes,
                    total_failure,
                    failure_details: tally
                        .failures
                        .iter()
                        .map(|((result_type, mx), count)| FailureDetail {
                            result_type: *result_type,
                            receiving_mx_hostname: mx.clone(),
                            failed_session_count: *count,
                        })
                        .collect(),
                }
            })
            .collect();
        TlsReport {
            organization_name: organization.to_string(),
            date_range_start: format!("{day}"),
            date_range_end: format!("{}", day.add_days(1)),
            contact_info: contact.to_string(),
            report_id: format!("{}-{}", day, organization.replace(' ', "-").to_lowercase()),
            policies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Mode;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn outcome_mapping() {
        assert_eq!(ResultType::from_outcome(&StsOutcome::NotApplicable), None);
        assert_eq!(
            ResultType::from_outcome(&StsOutcome::Validated {
                mode: Mode::Enforce,
                from_cache: false
            }),
            None
        );
        assert_eq!(
            ResultType::from_outcome(&StsOutcome::Failed {
                mode: Mode::Enforce,
                failure: StsFailure::StartTlsUnavailable,
                from_cache: false
            }),
            Some(ResultType::StartTlsNotSupported)
        );
        assert_eq!(
            ResultType::from_outcome(&StsOutcome::Failed {
                mode: Mode::Testing,
                failure: StsFailure::CertInvalid(CertError::Expired),
                from_cache: true
            }),
            Some(ResultType::CertificateExpired)
        );
        assert_eq!(
            ResultType::from_outcome(&StsOutcome::PolicyUnavailable {
                reason: "policy fetch failure: tls".into()
            }),
            Some(ResultType::StsPolicyFetchError)
        );
        assert_eq!(
            ResultType::from_outcome(&StsOutcome::PolicyUnavailable {
                reason: "policy parse failure: empty".into()
            }),
            Some(ResultType::StsPolicyInvalid)
        );
        // A policy-fetch TLS *certificate* failure is the PKIX
        // authentication failure RFC 8460 calls sts-webpki-invalid.
        assert_eq!(
            ResultType::from_outcome(&StsOutcome::PolicyUnavailable {
                reason: "policy fetch failure: tls: certificate: unknown issuer".into()
            }),
            Some(ResultType::StsWebpkiInvalid)
        );
    }

    #[test]
    fn builder_aggregates_per_domain_and_mx() {
        let mut b = ReportBuilder::new();
        let ok = StsOutcome::Validated {
            mode: Mode::Enforce,
            from_cache: false,
        };
        let bad = StsOutcome::Failed {
            mode: Mode::Testing,
            failure: StsFailure::CertInvalid(CertError::SelfSigned),
            from_cache: false,
        };
        for _ in 0..3 {
            b.record(&n("a.com"), &n("mx.a.com"), &ok);
        }
        b.record(&n("a.com"), &n("mx.a.com"), &bad);
        b.record(&n("a.com"), &n("mx2.a.com"), &bad);
        b.record(&n("b.com"), &n("mx.b.com"), &ok);
        assert_eq!(b.domain_count(), 2);

        let report = b.build(
            "Example Sender",
            "mailto:tls@sender.example",
            SimDate::ymd(2024, 6, 1),
        );
        assert_eq!(report.policies.len(), 2);
        let a = &report.policies[0];
        assert_eq!(a.policy_domain, "a.com");
        assert_eq!(a.total_successful, 3);
        assert_eq!(a.total_failure, 2);
        assert_eq!(a.failure_details.len(), 2); // two distinct MXes
        assert!(a
            .failure_details
            .iter()
            .all(|d| d.result_type == ResultType::CertificateNotTrusted));
        assert_eq!(report.date_range_start, "2024-06-01");
        assert_eq!(report.date_range_end, "2024-06-02");
    }

    #[test]
    fn report_serializes_with_rfc8460_field_names() {
        let mut b = ReportBuilder::new();
        b.record(
            &n("a.com"),
            &n("mx.a.com"),
            &StsOutcome::Failed {
                mode: Mode::Enforce,
                failure: StsFailure::MxNotListed,
                from_cache: false,
            },
        );
        let report = b.build("Org", "mailto:x@y.z", SimDate::ymd(2024, 6, 1));
        // Verified through the serde rename attributes; spot-check a few.
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"organization-name\""));
        assert!(json.contains("\"policy-type\":\"sts\""));
        assert!(json.contains("\"result-type\":\"validation-failure\""));
        assert!(json.contains("\"failed-session-count\":1"));
        // And it round-trips.
        let back: TlsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
