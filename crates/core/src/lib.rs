//! `mtasts` — a complete implementation of SMTP MTA Strict Transport
//! Security (RFC 8461), the subject of the reproduced study.
//!
//! The paper (IMC '25, Ashiq/Fiebig/Chung) measures how MTA-STS is deployed
//! and managed in the wild. This crate is the protocol engine everything
//! else builds on:
//!
//! - [`record`]: the `_mta-sts.<domain>` TXT record — strict RFC 8461 §3.1
//!   parsing with the study's observed error classes (missing `id`,
//!   non-alphanumeric `id`, bad version prefix, bad extension fields,
//!   multiple records ⇒ not deployed);
//! - [`policy`]: the `.well-known/mta-sts.txt` document — §3.2 syntax
//!   (`version`/`mode`/`max_age`/`mx`), pattern validity (the paper finds
//!   email addresses, trailing dots and empty patterns in the wild), and
//!   empty-file handling (treated as a parse failure ⇒ sender behaves as
//!   `none`, §5);
//! - [`matching`]: MX-pattern matching (§4.1 of the RFC) and the paper's
//!   inconsistency taxonomy (TLD mismatch / complete mismatch / 3LD+ /
//!   typos with edit distance ≤ 3, §4.4);
//! - [`cache`]: the sender-side TOFU policy cache with `max_age` expiry and
//!   `id`-triggered refresh (§2.4);
//! - [`engine`]: the sender decision procedure — fetch, match, validate,
//!   and the enforce/testing/none semantics deciding delivery;
//! - [`delegation`]: CNAME-based policy-delegation analysis (§2.5, §5) and
//!   the same-provider inference of §4.5.1;
//! - [`removal`]: the RFC 8461 §8.3 removal procedure checker (§2.6);
//! - [`tlsrpt`]: SMTP TLS Reporting (RFC 8460) record parsing (Appendix B).

pub mod cache;
pub mod delegation;
pub mod engine;
pub mod matching;
pub mod policy;
pub mod record;
pub mod removal;
pub mod tlsrpt;
pub mod tlsrpt_report;

pub use cache::{CacheDecision, CachedPolicy, PolicyCache, RefreshReason};
pub use engine::{DeliveryObservation, SenderAction, SenderEngine, StsFailure, StsOutcome};
pub use matching::{
    classify_mismatch, classify_policy_mismatches, mx_matches_policy, MismatchKind,
};
pub use policy::{parse_policy, Mode, MxPattern, Policy, PolicyError};
pub use record::{evaluate_record_set, parse_record, RecordError, StsRecord};
pub use tlsrpt::{parse_tlsrpt, TlsRptError, TlsRptRecord};
pub use tlsrpt_report::{ReportBuilder, ResultType, TlsReport};

/// The DNS label under which the policy record lives (`_mta-sts.<domain>`).
pub const RECORD_LABEL: &str = "_mta-sts";
/// The DNS label of the policy host (`mta-sts.<domain>`).
pub const POLICY_HOST_LABEL: &str = "mta-sts";
/// The well-known HTTPS path of the policy document.
pub const WELL_KNOWN_PATH: &str = "/.well-known/mta-sts.txt";
/// The TLSRPT record lives at `_smtp._tls.<domain>`.
pub const TLSRPT_LABEL: &str = "_smtp._tls";
