//! SMTP TLS Reporting records (RFC 8460; paper Appendix B, Figure 12).
//!
//! A TLSRPT record is a TXT record at `_smtp._tls.<domain>`:
//!
//! ```text
//! v=TLSRPTv1; rua=mailto:tls-reports@example.com
//! ```
//!
//! `rua` may carry multiple comma-separated URIs (`mailto:` or `https:`).
//! The paper tracks TLSRPT adoption alongside MTA-STS: domains that cannot
//! receive reports have no feedback channel for the misconfigurations the
//! study quantifies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed TLSRPT record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlsRptRecord {
    /// Reporting URIs in order (`mailto:...` or `https://...`).
    pub rua: Vec<String>,
    /// Extension fields.
    pub extensions: Vec<(String, String)>,
}

/// TLSRPT parse failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TlsRptError {
    /// Does not begin with `v=TLSRPTv1`.
    BadVersionPrefix,
    /// No `rua` field.
    MissingRua,
    /// A reporting URI is neither `mailto:` nor `https:`.
    BadRuaUri(String),
    /// A field is not a `key=value` pair.
    MalformedField(String),
    /// More than one TLSRPT record in the set.
    MultipleRecords(usize),
    /// No TLSRPT record in the set.
    NoRecord,
}

impl fmt::Display for TlsRptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsRptError::BadVersionPrefix => write!(f, "record does not begin with v=TLSRPTv1"),
            TlsRptError::MissingRua => write!(f, "no rua field"),
            TlsRptError::BadRuaUri(u) => write!(f, "bad reporting URI {u:?}"),
            TlsRptError::MalformedField(x) => write!(f, "malformed field {x:?}"),
            TlsRptError::MultipleRecords(n) => write!(f, "{n} TLSRPT records present"),
            TlsRptError::NoRecord => write!(f, "no TLSRPT record present"),
        }
    }
}

impl std::error::Error for TlsRptError {}

/// Parses a single TXT string as a TLSRPT record.
pub fn parse_tlsrpt(text: &str) -> Result<TlsRptRecord, TlsRptError> {
    let Some(rest) = text.strip_prefix("v=TLSRPTv1") else {
        return Err(TlsRptError::BadVersionPrefix);
    };
    let mut rua: Option<Vec<String>> = None;
    let mut extensions = Vec::new();
    for field in rest.split(';') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let Some((key, value)) = field.split_once('=') else {
            return Err(TlsRptError::MalformedField(field.to_string()));
        };
        let key = key.trim();
        let value = value.trim();
        if key == "rua" {
            let uris: Vec<String> = value.split(',').map(|u| u.trim().to_string()).collect();
            for uri in &uris {
                if !uri.starts_with("mailto:") && !uri.starts_with("https://") {
                    return Err(TlsRptError::BadRuaUri(uri.clone()));
                }
            }
            rua = Some(uris);
        } else {
            extensions.push((key.to_string(), value.to_string()));
        }
    }
    let rua = rua.ok_or(TlsRptError::MissingRua)?;
    Ok(TlsRptRecord { rua, extensions })
}

/// Evaluates the full TXT set at `_smtp._tls.<domain>`.
pub fn evaluate_tlsrpt_set(txt_strings: &[String]) -> Result<TlsRptRecord, TlsRptError> {
    let candidates: Vec<&String> = txt_strings
        .iter()
        .filter(|s| s.starts_with("v=TLSRPTv1"))
        .collect();
    match candidates.len() {
        0 => Err(TlsRptError::NoRecord),
        1 => parse_tlsrpt(candidates[0]),
        n => Err(TlsRptError::MultipleRecords(n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mailto() {
        let r = parse_tlsrpt("v=TLSRPTv1; rua=mailto:tls@example.com").unwrap();
        assert_eq!(r.rua, vec!["mailto:tls@example.com"]);
    }

    #[test]
    fn parses_multiple_uris() {
        let r = parse_tlsrpt("v=TLSRPTv1; rua=mailto:a@x.com, https://collector.x.com/v1").unwrap();
        assert_eq!(r.rua.len(), 2);
        assert!(r.rua[1].starts_with("https://"));
    }

    #[test]
    fn rejects_bad_version() {
        assert_eq!(
            parse_tlsrpt("v=TLSRPT1; rua=mailto:a@x.com"),
            Err(TlsRptError::BadVersionPrefix)
        );
    }

    #[test]
    fn rejects_missing_rua() {
        assert_eq!(parse_tlsrpt("v=TLSRPTv1;"), Err(TlsRptError::MissingRua));
    }

    #[test]
    fn rejects_bad_uri_scheme() {
        assert_eq!(
            parse_tlsrpt("v=TLSRPTv1; rua=ftp://x.com/reports"),
            Err(TlsRptError::BadRuaUri("ftp://x.com/reports".into()))
        );
    }

    #[test]
    fn set_semantics() {
        let set = vec![
            "v=spf1 -all".to_string(),
            "v=TLSRPTv1; rua=mailto:t@x.com".to_string(),
        ];
        assert!(evaluate_tlsrpt_set(&set).is_ok());
        assert_eq!(evaluate_tlsrpt_set(&[]), Err(TlsRptError::NoRecord));
        let dup = vec![
            "v=TLSRPTv1; rua=mailto:a@x.com".to_string(),
            "v=TLSRPTv1; rua=mailto:b@x.com".to_string(),
        ];
        assert_eq!(
            evaluate_tlsrpt_set(&dup),
            Err(TlsRptError::MultipleRecords(2))
        );
    }

    #[test]
    fn extensions_preserved() {
        let r = parse_tlsrpt("v=TLSRPTv1; rua=mailto:t@x.com; ext=1").unwrap();
        assert_eq!(r.extensions, vec![("ext".to_string(), "1".to_string())]);
    }
}
