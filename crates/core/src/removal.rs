//! The MTA-STS removal procedure checker (RFC 8461 §8.3, paper §2.6).
//!
//! Removing MTA-STS abruptly strands senders with cached `enforce`
//! policies. The correct sequence is:
//!
//! 1. publish a new policy with mode `none` and a small `max_age`;
//! 2. publish a new record `id` so senders refetch;
//! 3. wait max(old `max_age`, new `max_age`);
//! 4. remove the record, the policy host, and the document.
//!
//! The checker consumes a timeline of observed `(record, policy)` states —
//! exactly what the longitudinal scanner records — and reports whether a
//! removal it witnesses was performed safely. §5 of the paper audits
//! provider opt-out behaviour against this procedure (none of the eight
//! providers follow it).

use crate::policy::{Mode, Policy};
use netbase::{Duration, SimInstant};
use serde::{Deserialize, Serialize};

/// One observed state of a domain's MTA-STS deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeploymentSnapshot {
    /// Observation time.
    pub at: SimInstant,
    /// The record's `id`, when a valid record was present.
    pub record_id: Option<String>,
    /// The served policy, when one was retrievable and parsable.
    pub policy: Option<Policy>,
}

/// Verdict on an observed removal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RemovalVerdict {
    /// No removal happened in the window (deployment persisted or never
    /// existed).
    NoRemovalObserved,
    /// Removal followed the RFC sequence.
    Clean {
        /// When the none-mode policy first appeared.
        none_published_at: SimInstant,
        /// When the deployment disappeared.
        removed_at: SimInstant,
    },
    /// The deployment vanished while the last served policy was still
    /// `enforce`/`testing` — senders with the cached policy may refuse
    /// delivery until it expires.
    Abrupt {
        /// The last policy seen before disappearance.
        last_mode: Mode,
        /// The last policy's max_age: the worst-case stranding window.
        stranded_for: Duration,
        /// When the deployment disappeared.
        removed_at: SimInstant,
    },
    /// A none-mode policy was published, but the removal happened before
    /// the required waiting period elapsed.
    RemovedTooSoon {
        /// The wait the RFC requires.
        required_wait: Duration,
        /// The wait actually observed.
        observed_wait: Duration,
    },
    /// The record `id` was not changed when the none policy was published,
    /// so senders with fresh caches never refetched it.
    IdNotBumped,
}

/// Analyzes a chronological timeline of snapshots for removal correctness.
///
/// # Panics
///
/// Panics if `timeline` is not sorted by time (scanner output always is).
pub fn check_removal(timeline: &[DeploymentSnapshot]) -> RemovalVerdict {
    assert!(
        timeline.windows(2).all(|w| w[0].at <= w[1].at),
        "timeline must be chronological"
    );
    // Find the last snapshot with a live deployment and the first
    // subsequent snapshot without one.
    let Some(last_live_idx) = timeline
        .iter()
        .rposition(|s| s.record_id.is_some() || s.policy.is_some())
    else {
        return RemovalVerdict::NoRemovalObserved;
    };
    let Some(removed) = timeline.get(last_live_idx + 1) else {
        return RemovalVerdict::NoRemovalObserved; // still deployed at the end
    };
    let removed_at = removed.at;

    // Walk backwards over the live period to find the final policy era.
    let live = &timeline[..=last_live_idx];
    let last_policy_snapshot = live.iter().rev().find(|s| s.policy.is_some());
    let Some(last_snapshot) = last_policy_snapshot else {
        // Record existed but no policy was ever retrievable; nothing could
        // have been cached, so disappearance is harmless.
        return RemovalVerdict::Clean {
            none_published_at: removed_at,
            removed_at,
        };
    };
    let last_policy = last_snapshot.policy.as_ref().expect("selected above");

    if last_policy.mode != Mode::None {
        return RemovalVerdict::Abrupt {
            last_mode: last_policy.mode,
            stranded_for: Duration::seconds(last_policy.max_age as i64),
            removed_at,
        };
    }

    // The none policy: find when it first appeared (the start of the final
    // none era) and the era just before it.
    let mut none_start_idx = live.len() - 1;
    while none_start_idx > 0 {
        let prev = &live[none_start_idx - 1];
        match &prev.policy {
            Some(p) if p.mode == Mode::None => none_start_idx -= 1,
            Some(_) => break,
            // Gaps (unretrievable policy) within the none era are tolerated.
            None => none_start_idx -= 1,
        }
    }
    let none_published_at = live[none_start_idx].at;

    // The id must have changed when the none policy appeared, otherwise
    // cached senders never refetched (§2.6 step 2).
    if none_start_idx > 0 {
        let before = live[..none_start_idx]
            .iter()
            .rev()
            .find_map(|s| s.record_id.as_ref());
        let after = live[none_start_idx..]
            .iter()
            .find_map(|s| s.record_id.as_ref());
        if let (Some(old), Some(new)) = (before, after) {
            if old == new {
                return RemovalVerdict::IdNotBumped;
            }
        }
    }

    // Required wait: max of the previous policy's max_age and the none
    // policy's max_age.
    let prev_max_age = live[..none_start_idx]
        .iter()
        .rev()
        .find_map(|s| s.policy.as_ref())
        .map(|p| p.max_age)
        .unwrap_or(0);
    let none_max_age = last_policy.max_age;
    let required_wait = Duration::seconds(prev_max_age.max(none_max_age) as i64);
    let observed_wait = removed_at.since(none_published_at);
    if observed_wait < required_wait {
        return RemovalVerdict::RemovedTooSoon {
            required_wait,
            observed_wait,
        };
    }
    RemovalVerdict::Clean {
        none_published_at,
        removed_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MxPattern;
    use netbase::SimDate;

    fn at(day: u32) -> SimInstant {
        SimDate::ymd(2024, 6, day).at_midnight()
    }

    fn pol(mode: Mode, max_age: u64) -> Policy {
        let mx = if mode == Mode::None {
            vec![]
        } else {
            vec![MxPattern::parse("mx.example.com").unwrap()]
        };
        Policy::new(mode, max_age, mx)
    }

    fn snap(day: u32, id: Option<&str>, policy: Option<Policy>) -> DeploymentSnapshot {
        DeploymentSnapshot {
            at: at(day),
            record_id: id.map(String::from),
            policy,
        }
    }

    #[test]
    fn persistent_deployment_is_no_removal() {
        let tl = vec![
            snap(1, Some("a"), Some(pol(Mode::Enforce, 86_400))),
            snap(8, Some("a"), Some(pol(Mode::Enforce, 86_400))),
        ];
        assert_eq!(check_removal(&tl), RemovalVerdict::NoRemovalObserved);
    }

    #[test]
    fn never_deployed_is_no_removal() {
        let tl = vec![snap(1, None, None), snap(8, None, None)];
        assert_eq!(check_removal(&tl), RemovalVerdict::NoRemovalObserved);
    }

    #[test]
    fn clean_removal() {
        let tl = vec![
            snap(1, Some("a"), Some(pol(Mode::Enforce, 86_400))),
            // Step 1+2: none policy, small max_age, new id.
            snap(8, Some("b"), Some(pol(Mode::None, 86_400))),
            // Step 3: waiting (86 400 s = 1 day needed, 7 days given).
            snap(15, Some("b"), Some(pol(Mode::None, 86_400))),
            // Step 4: gone.
            snap(22, None, None),
        ];
        let RemovalVerdict::Clean {
            none_published_at, ..
        } = check_removal(&tl)
        else {
            panic!("expected clean, got {:?}", check_removal(&tl))
        };
        assert_eq!(none_published_at, at(8));
    }

    #[test]
    fn abrupt_removal_detected() {
        let tl = vec![
            snap(1, Some("a"), Some(pol(Mode::Enforce, 604_800))),
            snap(8, None, None),
        ];
        let RemovalVerdict::Abrupt {
            last_mode,
            stranded_for,
            ..
        } = check_removal(&tl)
        else {
            panic!("expected abrupt")
        };
        assert_eq!(last_mode, Mode::Enforce);
        assert_eq!(stranded_for, Duration::seconds(604_800));
    }

    #[test]
    fn removed_too_soon_detected() {
        let tl = vec![
            snap(1, Some("a"), Some(pol(Mode::Enforce, 2_592_000))), // 30 days
            snap(8, Some("b"), Some(pol(Mode::None, 86_400))),
            snap(9, None, None), // only 1 day after none; 30 required
        ];
        let RemovalVerdict::RemovedTooSoon {
            required_wait,
            observed_wait,
        } = check_removal(&tl)
        else {
            panic!("expected too-soon")
        };
        assert_eq!(required_wait, Duration::seconds(2_592_000));
        assert_eq!(observed_wait, Duration::days(1));
    }

    #[test]
    fn id_not_bumped_detected() {
        let tl = vec![
            snap(1, Some("same"), Some(pol(Mode::Enforce, 86_400))),
            snap(8, Some("same"), Some(pol(Mode::None, 86_400))),
            snap(22, None, None),
        ];
        assert_eq!(check_removal(&tl), RemovalVerdict::IdNotBumped);
    }

    #[test]
    fn record_without_policy_removal_is_clean() {
        // Nothing retrievable was ever cached; removal cannot strand.
        let tl = vec![snap(1, Some("a"), None), snap(8, None, None)];
        assert!(matches!(check_removal(&tl), RemovalVerdict::Clean { .. }));
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn unsorted_timeline_panics() {
        let tl = vec![snap(8, None, None), snap(1, Some("a"), None)];
        let _ = check_removal(&tl);
    }
}
