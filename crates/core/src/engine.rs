//! The sender decision procedure: RFC 8461 §4/§5 end to end.
//!
//! Given the observations a sending MTA makes — the `_mta-sts` TXT lookup,
//! the HTTPS policy fetch, the chosen MX host, and the STARTTLS certificate
//! verdict — the engine produces the protocol outcome and the final action
//! (deliver / refuse). It owns the TOFU [`PolicyCache`], so repeated
//! deliveries to the same domain exercise caching, `id`-triggered refresh
//! and the downgrade protections the paper discusses (§2.4, §2.6).
//!
//! The engine is deliberately transport-free: the `sender` and `simnet`
//! crates plug in real lookups; unit tests script the observations.

use crate::cache::{CacheDecision, PolicyCache};
use crate::matching::mx_matches_policy;
use crate::policy::{parse_policy, Mode, Policy};
use crate::record::{evaluate_record_set, RecordError};
use netbase::{DomainName, SimInstant};
use pkix::CertError;
use serde::{Deserialize, Serialize};

/// Why MTA-STS validation failed for a delivery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StsFailure {
    /// The selected MX matches no `mx` pattern.
    MxNotListed,
    /// The MX does not offer STARTTLS at all.
    StartTlsUnavailable,
    /// The MX certificate failed PKIX validation.
    CertInvalid(CertError),
    /// DANE governed the attempt (TLSA records present, RFC 7672
    /// precedence) and the presented chain failed DANE validation.
    DaneInvalid {
        /// The DANE validation error, rendered.
        reason: String,
    },
}

impl StsFailure {
    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            StsFailure::MxNotListed => "mx-not-listed",
            StsFailure::StartTlsUnavailable => "starttls-unavailable",
            StsFailure::CertInvalid(_) => "cert-invalid",
            StsFailure::DaneInvalid { .. } => "dane-invalid",
        }
    }
}

/// The protocol-level outcome of evaluating one delivery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StsOutcome {
    /// The domain does not use MTA-STS (no record, nothing cached).
    NotApplicable,
    /// A record exists but is invalid — MTA-STS counts as not deployed
    /// (RFC 8461 §3.1), so no protection applies.
    RecordInvalid(RecordError),
    /// The record was fine but the policy could not be fetched or parsed
    /// and nothing usable was cached; the sender proceeds unprotected
    /// (this is the "TLS fallback" degradation the paper highlights).
    PolicyUnavailable {
        /// Human-readable fetch/parse failure.
        reason: String,
    },
    /// Validation ran and passed.
    Validated {
        /// The policy's mode.
        mode: Mode,
        /// Whether the policy came from cache (vs a fresh fetch).
        from_cache: bool,
    },
    /// Validation ran and failed; the action depends on the mode.
    Failed {
        /// The policy's mode.
        mode: Mode,
        /// What failed.
        failure: StsFailure,
        /// Whether the policy came from cache.
        from_cache: bool,
    },
}

/// The final action for the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SenderAction {
    /// Deliver; MTA-STS validated successfully.
    Deliver,
    /// Deliver without MTA-STS protection (no/invalid policy, or a failure
    /// under `testing`/`none`).
    DeliverUnvalidated,
    /// Do not deliver (failure under `enforce`). The message is queued or
    /// bounced — the delivery failures §4.4/Figure 7-8 quantify.
    Refuse,
}

/// Derives the action from the protocol outcome (RFC 8461 §5.3).
pub fn action_for(outcome: &StsOutcome) -> SenderAction {
    match outcome {
        StsOutcome::NotApplicable
        | StsOutcome::RecordInvalid(_)
        | StsOutcome::PolicyUnavailable { .. } => SenderAction::DeliverUnvalidated,
        StsOutcome::Validated { mode, .. } => match mode {
            // A `none` policy means "do not validate" — the successful
            // validation is vacuous, the message is simply delivered.
            Mode::None => SenderAction::DeliverUnvalidated,
            _ => SenderAction::Deliver,
        },
        StsOutcome::Failed { mode, .. } => match mode {
            Mode::Enforce => SenderAction::Refuse,
            Mode::Testing | Mode::None => SenderAction::DeliverUnvalidated,
        },
    }
}

/// The observations the engine needs for one delivery attempt.
pub struct DeliveryObservation<'a, FetchFn, CertFn>
where
    FetchFn: FnOnce() -> Result<String, String>,
    CertFn: FnOnce() -> Result<(), StsFailure>,
{
    /// The recipient domain.
    pub domain: &'a DomainName,
    /// The TXT strings at `_mta-sts.<domain>`, or `None` when the lookup
    /// failed or the name does not exist.
    pub record_txts: Option<&'a [String]>,
    /// Fetches the policy document over HTTPS (strict TLS per the RFC).
    pub fetch_policy: FetchFn,
    /// The MX host selected for this delivery.
    pub mx_host: &'a DomainName,
    /// Establishes STARTTLS to the MX and validates its certificate.
    pub check_mx_tls: CertFn,
    /// Current time.
    pub now: SimInstant,
}

/// A stateful MTA-STS-validating sender.
#[derive(Debug, Default)]
pub struct SenderEngine {
    cache: PolicyCache,
    fetch_fallbacks: u64,
}

impl SenderEngine {
    /// A fresh engine with an empty cache.
    pub fn new() -> SenderEngine {
        SenderEngine::default()
    }

    /// Access to the cache (instrumentation; the `cache` bench reads
    /// hit/fetch counters).
    pub fn cache(&self) -> &PolicyCache {
        &self.cache
    }

    /// Drops any cached policy for `domain` (the always-refetch ablation).
    pub fn evict(&mut self, domain: &DomainName) -> bool {
        self.cache.evict(domain)
    }

    /// How many times a failed refresh fell back to a still-fresh cached
    /// policy (RFC 8461 §3.3 degraded mode).
    pub fn fetch_fallbacks(&self) -> u64 {
        self.fetch_fallbacks
    }

    /// The still-fresh cached policy for `domain`, if a failed refresh can
    /// fall back to it.
    fn stale_fallback(&self, domain: &DomainName, now: SimInstant) -> Option<Policy> {
        self.cache
            .peek(domain)
            .filter(|entry| entry.is_fresh(now))
            .map(|entry| entry.policy.clone())
    }

    /// Evaluates one delivery, updating the cache, and returns the
    /// protocol outcome plus the action to take.
    pub fn evaluate<FetchFn, CertFn>(
        &mut self,
        obs: DeliveryObservation<'_, FetchFn, CertFn>,
    ) -> (StsOutcome, SenderAction)
    where
        FetchFn: FnOnce() -> Result<String, String>,
        CertFn: FnOnce() -> Result<(), StsFailure>,
    {
        let record = obs.record_txts.map(evaluate_record_set);
        let record_id: Option<String> = match &record {
            Some(Ok(r)) => Some(r.id.clone()),
            _ => None,
        };

        // Cache consultation drives whether we fetch.
        let decision = self.cache.decide(obs.domain, record_id.as_deref(), obs.now);

        let (policy, from_cache): (Policy, bool) = match decision {
            CacheDecision::UseCached(entry) | CacheDecision::UseCachedDespiteDns(entry) => {
                (entry.policy, true)
            }
            CacheDecision::Fetch(_) => {
                // A fetch requires a currently valid record.
                let record = match record {
                    None => return (StsOutcome::NotApplicable, SenderAction::DeliverUnvalidated),
                    Some(Err(RecordError::NoRecord)) => {
                        return (StsOutcome::NotApplicable, SenderAction::DeliverUnvalidated)
                    }
                    Some(Err(e)) => {
                        let outcome = StsOutcome::RecordInvalid(e);
                        let action = action_for(&outcome);
                        return (outcome, action);
                    }
                    Some(Ok(r)) => r,
                };
                match (obs.fetch_policy)() {
                    Ok(document) => match parse_policy(&document) {
                        Ok(policy) => {
                            self.cache.store(
                                obs.domain.clone(),
                                policy.clone(),
                                &record.id,
                                obs.now,
                            );
                            (policy, false)
                        }
                        Err(e) => {
                            // A refresh that yields garbage must not defeat
                            // a still-fresh cached policy (RFC 8461 §3.3):
                            // an attacker able to swap the document (after
                            // changing the record id) would otherwise
                            // downgrade the domain to unprotected delivery.
                            if let Some(policy) = self.stale_fallback(obs.domain, obs.now) {
                                self.fetch_fallbacks += 1;
                                (policy, true)
                            } else {
                                // Unparsable (e.g. empty) policy: sender
                                // treats the domain as unprotected
                                // (≈ `none`, §5).
                                let outcome = StsOutcome::PolicyUnavailable {
                                    reason: format!("policy parse failure: {e}"),
                                };
                                let action = action_for(&outcome);
                                return (outcome, action);
                            }
                        }
                    },
                    Err(e) => {
                        // Same degraded mode for a broken fetch: keep
                        // honoring the cached policy until `max_age` runs
                        // out rather than dropping to unprotected delivery.
                        if let Some(policy) = self.stale_fallback(obs.domain, obs.now) {
                            self.fetch_fallbacks += 1;
                            (policy, true)
                        } else {
                            let outcome = StsOutcome::PolicyUnavailable {
                                reason: format!("policy fetch failure: {e}"),
                            };
                            let action = action_for(&outcome);
                            return (outcome, action);
                        }
                    }
                }
            }
        };

        // `none` mode: no validation at all.
        if policy.mode == Mode::None {
            let outcome = StsOutcome::Validated {
                mode: Mode::None,
                from_cache,
            };
            let action = action_for(&outcome);
            return (outcome, action);
        }

        // MX pattern matching precedes the TLS session (§2.4).
        if !mx_matches_policy(obs.mx_host, &policy) {
            let outcome = StsOutcome::Failed {
                mode: policy.mode,
                failure: StsFailure::MxNotListed,
                from_cache,
            };
            let action = action_for(&outcome);
            return (outcome, action);
        }

        // STARTTLS + certificate validation.
        match (obs.check_mx_tls)() {
            Ok(()) => {
                let outcome = StsOutcome::Validated {
                    mode: policy.mode,
                    from_cache,
                };
                let action = action_for(&outcome);
                (outcome, action)
            }
            Err(failure) => {
                let outcome = StsOutcome::Failed {
                    mode: policy.mode,
                    failure,
                    from_cache,
                };
                let action = action_for(&outcome);
                (outcome, action)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::{Duration, SimDate};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn t0() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    fn record() -> Vec<String> {
        vec!["v=STSv1; id=20240601;".to_string()]
    }

    fn doc(mode: &str) -> String {
        format!("version: STSv1\r\nmode: {mode}\r\nmx: mx.example.com\r\nmax_age: 604800\r\n")
    }

    fn eval(
        engine: &mut SenderEngine,
        txts: Option<Vec<String>>,
        fetch: Result<String, String>,
        mx: &str,
        cert: Result<(), StsFailure>,
        now: SimInstant,
    ) -> (StsOutcome, SenderAction) {
        let domain = n("example.com");
        let mx = n(mx);
        engine.evaluate(DeliveryObservation {
            domain: &domain,
            record_txts: txts.as_deref(),
            fetch_policy: move || fetch,
            mx_host: &mx,
            check_mx_tls: move || cert,
            now,
        })
    }

    #[test]
    fn no_record_means_not_applicable() {
        let mut e = SenderEngine::new();
        let (outcome, action) = eval(
            &mut e,
            Some(vec![]),
            Err("unused".into()),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        assert_eq!(outcome, StsOutcome::NotApplicable);
        assert_eq!(action, SenderAction::DeliverUnvalidated);
    }

    #[test]
    fn invalid_record_means_not_deployed() {
        let mut e = SenderEngine::new();
        let (outcome, action) = eval(
            &mut e,
            Some(vec!["v=STSv1; id=2024-06-01;".to_string()]),
            Err("unused".into()),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        assert!(matches!(
            outcome,
            StsOutcome::RecordInvalid(RecordError::InvalidId(_))
        ));
        assert_eq!(action, SenderAction::DeliverUnvalidated);
    }

    #[test]
    fn happy_path_enforce_validates_and_delivers() {
        let mut e = SenderEngine::new();
        let (outcome, action) = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        assert_eq!(
            outcome,
            StsOutcome::Validated {
                mode: Mode::Enforce,
                from_cache: false
            }
        );
        assert_eq!(action, SenderAction::Deliver);
    }

    #[test]
    fn second_delivery_hits_cache() {
        let mut e = SenderEngine::new();
        let _ = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        let (outcome, _) = eval(
            &mut e,
            Some(record()),
            Err("network should not be touched".into()),
            "mx.example.com",
            Ok(()),
            t0() + Duration::hours(1),
        );
        assert_eq!(
            outcome,
            StsOutcome::Validated {
                mode: Mode::Enforce,
                from_cache: true
            }
        );
    }

    #[test]
    fn id_change_refetches() {
        let mut e = SenderEngine::new();
        let _ = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        // New id, new policy says testing.
        let (outcome, _) = eval(
            &mut e,
            Some(vec!["v=STSv1; id=20240701;".to_string()]),
            Ok(doc("testing")),
            "mx.example.com",
            Ok(()),
            t0() + Duration::hours(2),
        );
        assert_eq!(
            outcome,
            StsOutcome::Validated {
                mode: Mode::Testing,
                from_cache: false
            }
        );
    }

    #[test]
    fn dns_blocking_cannot_downgrade_cached_domain() {
        let mut e = SenderEngine::new();
        let _ = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        // Attacker blocks the record lookup; MX fails validation.
        let (outcome, action) = eval(
            &mut e,
            None,
            Err("blocked".into()),
            "evil.attacker.net",
            Ok(()),
            t0() + Duration::days(1),
        );
        assert!(matches!(
            outcome,
            StsOutcome::Failed {
                mode: Mode::Enforce,
                failure: StsFailure::MxNotListed,
                from_cache: true
            }
        ));
        assert_eq!(action, SenderAction::Refuse);
    }

    #[test]
    fn enforce_refuses_on_bad_cert() {
        let mut e = SenderEngine::new();
        let (outcome, action) = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.example.com",
            Err(StsFailure::CertInvalid(CertError::Expired)),
            t0(),
        );
        assert!(matches!(outcome, StsOutcome::Failed { .. }));
        assert_eq!(action, SenderAction::Refuse);
    }

    #[test]
    fn testing_delivers_despite_failure() {
        let mut e = SenderEngine::new();
        let (outcome, action) = eval(
            &mut e,
            Some(record()),
            Ok(doc("testing")),
            "mx.example.com",
            Err(StsFailure::CertInvalid(CertError::SelfSigned)),
            t0(),
        );
        assert!(matches!(
            outcome,
            StsOutcome::Failed {
                mode: Mode::Testing,
                ..
            }
        ));
        assert_eq!(action, SenderAction::DeliverUnvalidated);
    }

    #[test]
    fn none_mode_skips_validation() {
        let mut e = SenderEngine::new();
        let doc_none = "version: STSv1\r\nmode: none\r\nmax_age: 86400\r\n".to_string();
        let (outcome, action) = eval(
            &mut e,
            Some(record()),
            Ok(doc_none),
            "anything.anywhere.net",
            Err(StsFailure::StartTlsUnavailable), // would fail, but never runs
            t0(),
        );
        assert_eq!(
            outcome,
            StsOutcome::Validated {
                mode: Mode::None,
                from_cache: false
            }
        );
        assert_eq!(action, SenderAction::DeliverUnvalidated);
    }

    #[test]
    fn fetch_failure_means_unprotected_delivery() {
        // The degradation the paper warns about: validation failure at
        // fetch time falls back to opportunistic behaviour.
        let mut e = SenderEngine::new();
        let (outcome, action) = eval(
            &mut e,
            Some(record()),
            Err("tls handshake failed: certificate expired".into()),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        assert!(matches!(outcome, StsOutcome::PolicyUnavailable { .. }));
        assert_eq!(action, SenderAction::DeliverUnvalidated);
    }

    #[test]
    fn empty_policy_file_behaves_like_none() {
        // DMARCReport's opt-out artefact (§5): empty file → parse failure →
        // unprotected delivery.
        let mut e = SenderEngine::new();
        let (outcome, action) = eval(
            &mut e,
            Some(record()),
            Ok(String::new()),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        let StsOutcome::PolicyUnavailable { reason } = &outcome else {
            panic!("expected PolicyUnavailable, got {outcome:?}")
        };
        assert!(reason.contains("empty"), "{reason}");
        assert_eq!(action, SenderAction::DeliverUnvalidated);
    }

    #[test]
    fn mx_not_listed_under_enforce_refuses() {
        // The lucidgrow incident shape (§4.4): policy lists patterns that
        // match none of the real MXes, mode enforce → delivery failure.
        let mut e = SenderEngine::new();
        let (outcome, action) = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.lucidgrow-customer.com",
            Ok(()),
            t0(),
        );
        assert!(matches!(
            outcome,
            StsOutcome::Failed {
                failure: StsFailure::MxNotListed,
                ..
            }
        ));
        assert_eq!(action, SenderAction::Refuse);
    }

    #[test]
    fn starttls_unavailable_under_enforce_refuses() {
        let mut e = SenderEngine::new();
        let (_, action) = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.example.com",
            Err(StsFailure::StartTlsUnavailable),
            t0(),
        );
        assert_eq!(action, SenderAction::Refuse);
    }

    #[test]
    fn tofu_refresh_race_keeps_old_policy() {
        // Satellite: record id changed (attacker- or operator-initiated)
        // while the HTTPS fetch is faulted. RFC 8461 §3.3: the still-fresh
        // cached policy must keep applying — the engine must NOT drop to
        // unprotected delivery.
        let mut e = SenderEngine::new();
        let _ = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        // Id changed + fetch faulted + attacker-chosen MX: still refused.
        let (outcome, action) = eval(
            &mut e,
            Some(vec!["v=STSv1; id=attacker1;".to_string()]),
            Err("tls: certificate: unknown issuer".into()),
            "evil.attacker.net",
            Ok(()),
            t0() + Duration::hours(3),
        );
        assert_eq!(action, SenderAction::Refuse);
        assert!(matches!(
            outcome,
            StsOutcome::Failed {
                mode: Mode::Enforce,
                failure: StsFailure::MxNotListed,
                from_cache: true
            }
        ));
        assert_eq!(e.fetch_fallbacks(), 1);
        // The legitimate MX still validates and delivers under the old
        // policy during the outage.
        let (outcome, action) = eval(
            &mut e,
            Some(vec!["v=STSv1; id=attacker1;".to_string()]),
            Err("still down".into()),
            "mx.example.com",
            Ok(()),
            t0() + Duration::hours(4),
        );
        assert_eq!(action, SenderAction::Deliver);
        assert!(matches!(
            outcome,
            StsOutcome::Validated {
                mode: Mode::Enforce,
                from_cache: true
            }
        ));
        assert_eq!(e.fetch_fallbacks(), 2);
    }

    #[test]
    fn garbage_refresh_document_keeps_old_policy() {
        // Same race, but the fetch "succeeds" with attacker-fed garbage.
        let mut e = SenderEngine::new();
        let _ = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        let (outcome, _) = eval(
            &mut e,
            Some(vec!["v=STSv1; id=attacker2;".to_string()]),
            Ok("HTTP garbage, not a policy".into()),
            "mx.example.com",
            Ok(()),
            t0() + Duration::hours(1),
        );
        assert!(matches!(
            outcome,
            StsOutcome::Validated {
                mode: Mode::Enforce,
                from_cache: true
            }
        ));
        assert_eq!(e.fetch_fallbacks(), 1);
    }

    #[test]
    fn expired_cache_does_not_fall_back() {
        // The fallback is bounded by max_age: once the cached policy
        // expires, a failed fetch degrades to unprotected delivery — the
        // attacker has outwaited the cache.
        let mut e = SenderEngine::new();
        let short = "version: STSv1\r\nmode: enforce\r\nmx: mx.example.com\r\nmax_age: 3600\r\n";
        let _ = eval(
            &mut e,
            Some(record()),
            Ok(short.to_string()),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        let (outcome, action) = eval(
            &mut e,
            Some(record()),
            Err("blocked".into()),
            "mx.example.com",
            Ok(()),
            t0() + Duration::hours(2),
        );
        assert!(matches!(outcome, StsOutcome::PolicyUnavailable { .. }));
        assert_eq!(action, SenderAction::DeliverUnvalidated);
        assert_eq!(e.fetch_fallbacks(), 0);
    }

    #[test]
    fn proper_removal_sequence_releases_domain() {
        // §2.6: publish none-mode policy with small max_age, new id, wait,
        // then remove everything.
        let mut e = SenderEngine::new();
        let _ = eval(
            &mut e,
            Some(record()),
            Ok(doc("enforce")),
            "mx.example.com",
            Ok(()),
            t0(),
        );
        // Step 1-2: new id, none policy, max_age one day.
        let none_doc = "version: STSv1\r\nmode: none\r\nmax_age: 86400\r\n".to_string();
        let t1 = t0() + Duration::days(1);
        let (outcome, _) = eval(
            &mut e,
            Some(vec!["v=STSv1; id=removal1;".to_string()]),
            Ok(none_doc),
            "mx.example.com",
            Ok(()),
            t1,
        );
        assert!(matches!(
            outcome,
            StsOutcome::Validated {
                mode: Mode::None,
                ..
            }
        ));
        // Step 3-4: after the old+new max_age elapsed, everything removed.
        let t2 = t1 + Duration::days(2);
        let (outcome, action) = eval(
            &mut e,
            Some(vec![]),
            Err("gone".into()),
            "mx.example.com",
            Ok(()),
            t2,
        );
        assert_eq!(outcome, StsOutcome::NotApplicable);
        assert_eq!(action, SenderAction::DeliverUnvalidated);
    }
}
