//! The MTA-STS policy document, RFC 8461 §3.2.
//!
//! ```text
//! version: STSv1
//! mode: enforce
//! mx: mx1.example.com
//! mx: *.example.net
//! max_age: 604800
//! ```
//!
//! Lines are `key: value` pairs separated by CRLF (LF tolerated on input, as
//! real fetchers do). `version`, `mode` and `max_age` appear exactly once;
//! `mx` appears once per pattern and is required unless `mode` is `none`.
//!
//! §4.3.3 of the paper counts syntax errors from the wild: invalid mx
//! patterns (email addresses, trailing dots, empty patterns) and entirely
//! empty policy files (DMARCReport's opt-out artefact, §5) — all are
//! distinct [`PolicyError`] values here.

use netbase::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum plausible `max_age` (about one year, RFC 8461 §3.2).
pub const MAX_MAX_AGE: u64 = 31_557_600;

/// Sending-MTA behaviour on validation failure (§2.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Must not deliver on validation failure.
    Enforce,
    /// Validate and report, but deliver anyway.
    Testing,
    /// Do not validate at all.
    None,
}

impl Mode {
    /// The policy-file token.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Enforce => "enforce",
            Mode::Testing => "testing",
            Mode::None => "none",
        }
    }

    /// Parses a policy-file token (case-sensitive per the RFC).
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "enforce" => Some(Mode::Enforce),
            "testing" => Some(Mode::Testing),
            "none" => Some(Mode::None),
            _ => None,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// An `mx` pattern: an exact host name or a single-level wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct MxPattern {
    /// The pattern as a (possibly wildcard) domain name.
    name: DomainName,
}

impl MxPattern {
    /// Parses and validates a pattern. The paper's observed invalid forms —
    /// email addresses (`user@mx.example.com`), trailing dots
    /// (`mx.example.com.` is *not* valid in a policy file), empty strings —
    /// are rejected.
    pub fn parse(s: &str) -> Result<MxPattern, PolicyError> {
        let invalid = |why: &str| PolicyError::InvalidMxPattern {
            pattern: s.to_string(),
            why: why.to_string(),
        };
        if s.is_empty() {
            return Err(invalid("empty pattern"));
        }
        if s.contains('@') {
            return Err(invalid("looks like an email address"));
        }
        if s.ends_with('.') {
            return Err(invalid("trailing dot"));
        }
        let name: DomainName = s.parse().map_err(|e| invalid(&format!("{e}")))?;
        if name.label_count() < 2 {
            return Err(invalid("single-label pattern"));
        }
        Ok(MxPattern { name })
    }

    /// The underlying (possibly wildcard) name.
    pub fn name(&self) -> &DomainName {
        &self.name
    }

    /// Whether this pattern is a wildcard.
    pub fn is_wildcard(&self) -> bool {
        self.name.is_wildcard()
    }

    /// RFC 8461 §4.1 matching: wildcards match exactly one leftmost label.
    pub fn matches(&self, host: &DomainName) -> bool {
        host.matches_pattern(&self.name)
    }
}

impl fmt::Display for MxPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl TryFrom<String> for MxPattern {
    type Error = PolicyError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        MxPattern::parse(&s)
    }
}

impl From<MxPattern> for String {
    fn from(p: MxPattern) -> String {
        p.name.to_string()
    }
}

/// A parsed, valid policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    /// Failure-handling mode.
    pub mode: Mode,
    /// Cache lifetime in seconds.
    pub max_age: u64,
    /// Allowed MX patterns (may be empty only in `none` mode).
    pub mx: Vec<MxPattern>,
    /// Unrecognized `key: value` pairs, preserved in order.
    pub extensions: Vec<(String, String)>,
}

impl Policy {
    /// Serializes to the canonical CRLF policy-file form.
    pub fn to_document(&self) -> String {
        let mut out = String::new();
        out.push_str("version: STSv1\r\n");
        out.push_str(&format!("mode: {}\r\n", self.mode));
        for pattern in &self.mx {
            out.push_str(&format!("mx: {pattern}\r\n"));
        }
        out.push_str(&format!("max_age: {}\r\n", self.max_age));
        for (k, v) in &self.extensions {
            out.push_str(&format!("{k}: {v}\r\n"));
        }
        out
    }

    /// Convenience constructor for well-formed policies.
    pub fn new(mode: Mode, max_age: u64, mx: Vec<MxPattern>) -> Policy {
        Policy {
            mode,
            max_age,
            mx,
            extensions: Vec::new(),
        }
    }
}

/// Policy parse/validation failures (the paper's "Policy Syntax" class).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyError {
    /// The document was completely empty (DMARCReport's opt-out artefact;
    /// senders treat this as equivalent to `none`, §5 of the paper).
    EmptyDocument,
    /// A line was not a `key: value` pair.
    MalformedLine(String),
    /// `version` missing or not first.
    MissingVersion,
    /// `version` present but not `STSv1`.
    WrongVersion(String),
    /// `mode` missing.
    MissingMode,
    /// Unrecognized `mode` value.
    InvalidMode(String),
    /// `max_age` missing.
    MissingMaxAge,
    /// `max_age` not a number or out of range.
    InvalidMaxAge(String),
    /// No `mx` lines although the mode requires them.
    MissingMx,
    /// An `mx` value failed validation.
    InvalidMxPattern {
        /// The offending pattern text.
        pattern: String,
        /// Why it is invalid.
        why: String,
    },
    /// A singleton key (`version`, `mode`, `max_age`) appeared twice.
    DuplicateKey(String),
}

impl PolicyError {
    /// Short machine-readable label used in scan reports.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyError::EmptyDocument => "empty-document",
            PolicyError::MalformedLine(_) => "malformed-line",
            PolicyError::MissingVersion => "missing-version",
            PolicyError::WrongVersion(_) => "wrong-version",
            PolicyError::MissingMode => "missing-mode",
            PolicyError::InvalidMode(_) => "invalid-mode",
            PolicyError::MissingMaxAge => "missing-max-age",
            PolicyError::InvalidMaxAge(_) => "invalid-max-age",
            PolicyError::MissingMx => "missing-mx",
            PolicyError::InvalidMxPattern { .. } => "invalid-mx-pattern",
            PolicyError::DuplicateKey(_) => "duplicate-key",
        }
    }
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::EmptyDocument => write!(f, "policy document is empty"),
            PolicyError::MalformedLine(l) => write!(f, "malformed policy line {l:?}"),
            PolicyError::MissingVersion => write!(f, "version field missing or not first"),
            PolicyError::WrongVersion(v) => write!(f, "unsupported version {v:?}"),
            PolicyError::MissingMode => write!(f, "mode field missing"),
            PolicyError::InvalidMode(m) => write!(f, "invalid mode {m:?}"),
            PolicyError::MissingMaxAge => write!(f, "max_age field missing"),
            PolicyError::InvalidMaxAge(v) => write!(f, "invalid max_age {v:?}"),
            PolicyError::MissingMx => write!(f, "no mx patterns in a validating mode"),
            PolicyError::InvalidMxPattern { pattern, why } => {
                write!(f, "invalid mx pattern {pattern:?}: {why}")
            }
            PolicyError::DuplicateKey(k) => write!(f, "duplicate key {k:?}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// Parses a policy document.
pub fn parse_policy(text: &str) -> Result<Policy, PolicyError> {
    if text.trim().is_empty() {
        return Err(PolicyError::EmptyDocument);
    }
    let mut version: Option<String> = None;
    let mut mode: Option<Mode> = None;
    let mut max_age: Option<u64> = None;
    let mut mx: Vec<MxPattern> = Vec::new();
    let mut extensions: Vec<(String, String)> = Vec::new();
    let mut first_key = true;
    for raw in text.split("\r\n").flat_map(|chunk| chunk.split('\n')) {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            return Err(PolicyError::MalformedLine(line.to_string()));
        };
        let key = key.trim();
        let value = value.trim();
        // RFC 8461: version must be the first field.
        if first_key && key != "version" {
            return Err(PolicyError::MissingVersion);
        }
        first_key = false;
        match key {
            "version" => {
                if version.is_some() {
                    return Err(PolicyError::DuplicateKey("version".into()));
                }
                if value != "STSv1" {
                    return Err(PolicyError::WrongVersion(value.to_string()));
                }
                version = Some(value.to_string());
            }
            "mode" => {
                if mode.is_some() {
                    return Err(PolicyError::DuplicateKey("mode".into()));
                }
                mode = Some(
                    Mode::parse(value)
                        .ok_or_else(|| PolicyError::InvalidMode(value.to_string()))?,
                );
            }
            "max_age" => {
                if max_age.is_some() {
                    return Err(PolicyError::DuplicateKey("max_age".into()));
                }
                let age: u64 = value
                    .parse()
                    .map_err(|_| PolicyError::InvalidMaxAge(value.to_string()))?;
                if age > MAX_MAX_AGE {
                    return Err(PolicyError::InvalidMaxAge(value.to_string()));
                }
                max_age = Some(age);
            }
            "mx" => {
                mx.push(MxPattern::parse(value)?);
            }
            other => {
                extensions.push((other.to_string(), value.to_string()));
            }
        }
    }
    if version.is_none() {
        return Err(PolicyError::MissingVersion);
    }
    let mode = mode.ok_or(PolicyError::MissingMode)?;
    let max_age = max_age.ok_or(PolicyError::MissingMaxAge)?;
    if mx.is_empty() && mode != Mode::None {
        return Err(PolicyError::MissingMx);
    }
    Ok(Policy {
        mode,
        max_age,
        mx,
        extensions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    const CANONICAL: &str =
        "version: STSv1\r\nmode: enforce\r\nmx: mx1.example.com\r\nmx: *.example.net\r\nmax_age: 604800\r\n";

    #[test]
    fn parses_canonical_policy() {
        let p = parse_policy(CANONICAL).unwrap();
        assert_eq!(p.mode, Mode::Enforce);
        assert_eq!(p.max_age, 604_800);
        assert_eq!(p.mx.len(), 2);
        assert!(p.mx[1].is_wildcard());
    }

    #[test]
    fn tolerates_bare_lf() {
        let p =
            parse_policy("version: STSv1\nmode: testing\nmx: mx.a.se\nmax_age: 86400\n").unwrap();
        assert_eq!(p.mode, Mode::Testing);
    }

    #[test]
    fn document_roundtrip() {
        let p = parse_policy(CANONICAL).unwrap();
        let text = p.to_document();
        let back = parse_policy(&text).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn empty_document_is_distinct_error() {
        assert_eq!(parse_policy(""), Err(PolicyError::EmptyDocument));
        assert_eq!(parse_policy("   \r\n \n"), Err(PolicyError::EmptyDocument));
    }

    #[test]
    fn version_must_be_first() {
        assert_eq!(
            parse_policy("mode: enforce\r\nversion: STSv1\r\nmx: a.b\r\nmax_age: 1\r\n"),
            Err(PolicyError::MissingVersion)
        );
    }

    #[test]
    fn wrong_version_rejected() {
        assert_eq!(
            parse_policy("version: STSv2\r\nmode: none\r\nmax_age: 1\r\n"),
            Err(PolicyError::WrongVersion("STSv2".into()))
        );
    }

    #[test]
    fn mode_validation() {
        assert_eq!(
            parse_policy("version: STSv1\r\nmode: Enforce\r\nmx: a.b\r\nmax_age: 1\r\n"),
            Err(PolicyError::InvalidMode("Enforce".into()))
        );
        assert_eq!(
            parse_policy("version: STSv1\r\nmx: a.b\r\nmax_age: 1\r\n"),
            Err(PolicyError::MissingMode)
        );
    }

    #[test]
    fn max_age_validation() {
        assert_eq!(
            parse_policy("version: STSv1\r\nmode: none\r\nmax_age: never\r\n"),
            Err(PolicyError::InvalidMaxAge("never".into()))
        );
        assert_eq!(
            parse_policy("version: STSv1\r\nmode: none\r\nmax_age: 99999999999\r\n"),
            Err(PolicyError::InvalidMaxAge("99999999999".into()))
        );
        assert_eq!(
            parse_policy("version: STSv1\r\nmode: none\r\n"),
            Err(PolicyError::MissingMaxAge)
        );
    }

    #[test]
    fn mx_required_unless_none() {
        assert_eq!(
            parse_policy("version: STSv1\r\nmode: enforce\r\nmax_age: 1\r\n"),
            Err(PolicyError::MissingMx)
        );
        // `none` mode without mx is fine.
        let p = parse_policy("version: STSv1\r\nmode: none\r\nmax_age: 86400\r\n").unwrap();
        assert!(p.mx.is_empty());
    }

    #[test]
    fn invalid_mx_patterns_from_the_wild() {
        // §4.3.3: email addresses, trailing dots, empty patterns.
        for bad in ["user@mx.example.com", "mx.example.com.", "", "com"] {
            let text = format!("version: STSv1\r\nmode: enforce\r\nmx: {bad}\r\nmax_age: 1\r\n");
            assert!(
                matches!(
                    parse_policy(&text),
                    Err(PolicyError::InvalidMxPattern { .. })
                ),
                "pattern {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn duplicate_singletons_rejected() {
        let text = "version: STSv1\r\nmode: enforce\r\nmode: testing\r\nmx: a.b\r\nmax_age: 1\r\n";
        assert_eq!(
            parse_policy(text),
            Err(PolicyError::DuplicateKey("mode".into()))
        );
    }

    #[test]
    fn unknown_keys_are_extensions() {
        let text = "version: STSv1\r\nmode: none\r\nmax_age: 60\r\nfuture_field: hello\r\n";
        let p = parse_policy(text).unwrap();
        assert_eq!(
            p.extensions,
            vec![("future_field".to_string(), "hello".to_string())]
        );
    }

    #[test]
    fn pattern_matching_semantics() {
        let exact = MxPattern::parse("mx1.example.com").unwrap();
        assert!(exact.matches(&n("mx1.example.com")));
        assert!(!exact.matches(&n("mx2.example.com")));
        let wild = MxPattern::parse("*.example.com").unwrap();
        assert!(wild.matches(&n("anything.example.com")));
        assert!(!wild.matches(&n("example.com")));
        assert!(!wild.matches(&n("a.b.example.com")));
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(matches!(
            parse_policy("version: STSv1\r\njusttext\r\n"),
            Err(PolicyError::MalformedLine(_))
        ));
    }

    #[test]
    fn error_labels_stable() {
        assert_eq!(PolicyError::EmptyDocument.label(), "empty-document");
        assert_eq!(
            PolicyError::InvalidMxPattern {
                pattern: "x".into(),
                why: "y".into()
            }
            .label(),
            "invalid-mx-pattern"
        );
    }
}
