//! Policy-delegation analysis (paper §2.5, §4.5, §5).
//!
//! Domain owners delegate policy hosting by pointing
//! `mta-sts.<domain>` at a provider via CNAME. This module infers, from the
//! observable DNS, (a) whether hosting is delegated and to whom, and (b)
//! whether the policy host and the email (MX) service are run by the same
//! provider — the distinction behind Figure 10's result that
//! inconsistencies are almost nonexistent with a single provider (1 domain)
//! and common across split providers (640 domains).

use netbase::DomainName;
use serde::{Deserialize, Serialize};

/// How a domain hosts its MTA-STS policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyHosting {
    /// `mta-sts.<domain>` resolves directly (A/AAAA) with no CNAME:
    /// hosting is on infrastructure the domain controls directly.
    Direct,
    /// `mta-sts.<domain>` is a CNAME into another effective SLD.
    Delegated {
        /// The CNAME target.
        target: DomainName,
        /// The provider identity: the target's effective SLD.
        provider: DomainName,
    },
    /// CNAME within the domain's own eSLD (self-delegation; counts as
    /// direct for management purposes).
    InternalAlias {
        /// The CNAME target.
        target: DomainName,
    },
}

/// Classifies policy hosting from the CNAME chain observed when resolving
/// `mta-sts.<domain>` (empty chain = direct A/AAAA).
pub fn classify_hosting(domain: &DomainName, cname_chain: &[DomainName]) -> PolicyHosting {
    let Some(first_target) = cname_chain.first() else {
        return PolicyHosting::Direct;
    };
    if first_target.same_esld(domain) {
        return PolicyHosting::InternalAlias {
            target: first_target.clone(),
        };
    }
    let provider = first_target
        .effective_sld()
        .unwrap_or_else(|| first_target.clone());
    PolicyHosting::Delegated {
        target: first_target.clone(),
        provider,
    }
}

/// Whether two provider identities are "the same provider" per §4.5.1: they
/// share an effective SLD, or share their second label (the paper's
/// Tutanota example: `mail.tutanota.de` vs `mta-sts.tutanota.com` share
/// the label `tutanota`).
pub fn same_provider(a: &DomainName, b: &DomainName) -> bool {
    if a.same_esld(b) {
        return true;
    }
    match (brand_label(a), brand_label(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// The "brand" label: the leftmost label of the effective SLD
/// (`mail.tutanota.de` → `tutanota`).
fn brand_label(name: &DomainName) -> Option<String> {
    name.effective_sld().map(|e| e.leftmost().to_string())
}

/// Management split for a domain that outsources both services (§4.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProviderSplit {
    /// One provider manages both policy hosting and the MX service.
    SameProvider,
    /// Different providers manage each.
    DifferentProviders,
}

/// Infers the split from the policy-host CNAME target and an MX host name.
pub fn classify_split(policy_cname_target: &DomainName, mx_host: &DomainName) -> ProviderSplit {
    if same_provider(policy_cname_target, mx_host) {
        ProviderSplit::SameProvider
    } else {
        ProviderSplit::DifferentProviders
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn direct_hosting() {
        assert_eq!(
            classify_hosting(&n("example.com"), &[]),
            PolicyHosting::Direct
        );
    }

    #[test]
    fn internal_alias() {
        let got = classify_hosting(&n("example.com"), &[n("web.example.com")]);
        assert_eq!(
            got,
            PolicyHosting::InternalAlias {
                target: n("web.example.com")
            }
        );
    }

    #[test]
    fn delegated_to_provider() {
        let got = classify_hosting(
            &n("example.com"),
            &[n("a-com.mta-sts.dmarcinput.com"), n("edge.dmarcinput.com")],
        );
        let PolicyHosting::Delegated { provider, .. } = got else {
            panic!("expected delegation, got {got:?}")
        };
        assert_eq!(provider, n("dmarcinput.com"));
    }

    #[test]
    fn same_provider_by_esld() {
        assert!(same_provider(
            &n("mta-sts.fastmail.com"),
            &n("in1-smtp.fastmail.com")
        ));
    }

    #[test]
    fn same_provider_across_tlds_by_brand_label() {
        // The paper's Tutanota example: .de MX, .com policy host.
        assert!(same_provider(
            &n("mail.tutanota.de"),
            &n("mta-sts.tutanota.com")
        ));
    }

    #[test]
    fn different_providers() {
        assert!(!same_provider(
            &n("a-com.mta-sts.dmarcinput.com"),
            &n("mx.lucidgrow.com")
        ));
        assert_eq!(
            classify_split(&n("a-com.mta-sts.dmarcinput.com"), &n("mx.lucidgrow.com")),
            ProviderSplit::DifferentProviders
        );
    }

    #[test]
    fn split_same_provider() {
        assert_eq!(
            classify_split(&n("mta-sts.tutanota.com"), &n("mail.tutanota.de")),
            ProviderSplit::SameProvider
        );
    }
}
