//! The sender-side policy cache: trust-on-first-use with `max_age` expiry
//! and `id`-triggered refresh (RFC 8461 §3.3, paper §2.4).
//!
//! Senders cache a fetched policy for up to `max_age` seconds. On each
//! delivery they look up the `_mta-sts` record; when the record's `id`
//! differs from the cached one they refetch over HTTPS. When the *record*
//! lookup fails but a non-expired cached policy exists, the cached policy
//! still applies — that property is what makes a DNS-blocking attacker
//! unable to downgrade an already-seen domain (and what makes improper
//! removal, §2.6, cause lingering delivery failures).

use crate::policy::Policy;
use netbase::{DomainName, SimInstant};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A cached policy and its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedPolicy {
    /// The policy document.
    pub policy: Policy,
    /// The record `id` in effect when the policy was fetched.
    pub record_id: String,
    /// When the policy was fetched.
    pub fetched_at: SimInstant,
}

impl CachedPolicy {
    /// When this entry expires (`fetched_at + max_age`).
    ///
    /// Saturates: a hostile or nonsensical `max_age` (up to `u64::MAX`)
    /// must clamp to "the end of simulated time", never wrap into the
    /// past — a wrapped expiry would silently drop downgrade protection.
    pub fn expires_at(&self) -> SimInstant {
        let age_secs = i64::try_from(self.policy.max_age).unwrap_or(i64::MAX);
        SimInstant::from_unix_secs(self.fetched_at.unix_secs().saturating_add(age_secs))
    }

    /// Whether the entry is still fresh at `now`. `max_age = 0` entries
    /// are never fresh (the strict `<` makes the expiry boundary
    /// exclusive), so they can never be served from cache.
    pub fn is_fresh(&self, now: SimInstant) -> bool {
        now < self.expires_at()
    }
}

/// Why the cache asks the caller to fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshReason {
    /// Nothing cached for the domain.
    NoEntry,
    /// The cached entry has passed `max_age`.
    Expired,
    /// The DNS record's `id` changed.
    IdChanged,
}

/// What the cache says about a domain before a delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheDecision {
    /// Use this cached policy; no fetch needed.
    UseCached(CachedPolicy),
    /// Fetch (or refetch) the policy over HTTPS.
    Fetch(RefreshReason),
    /// The cached policy applies even though the current record is absent
    /// or unreadable (TOFU protection against downgrade-by-DNS-blocking).
    UseCachedDespiteDns(CachedPolicy),
}

/// The sender's policy cache.
///
/// Instrumented with hit/refresh counters for the `cache` benchmark and the
/// always-refetch ablation in DESIGN.md. `hits` counts decisions served
/// from cache; `fetches` counts **completed** fetches (a [`store`]) — a
/// recommended fetch whose HTTPS leg then fails does not inflate the
/// counter, so `stats()` stays reconcilable with TLSRPT/ledger totals.
///
/// [`store`]: PolicyCache::store
#[derive(Debug, Clone, Default)]
pub struct PolicyCache {
    entries: HashMap<DomainName, CachedPolicy>,
    hits: u64,
    fetches: u64,
}

impl PolicyCache {
    /// An empty cache.
    pub fn new() -> PolicyCache {
        PolicyCache::default()
    }

    /// The decision for `domain`, computed without touching counters or
    /// entries — the resolver's read-locked fast path. The entry is
    /// borrowed for the whole classification; a `Policy` clone happens
    /// only in the `UseCached*` arms that hand it out.
    ///
    /// Expired entries are **never** evicted here, whatever the record
    /// lookup said: when a DNS outage coincides with expiry the entry is
    /// exactly what the RFC 8461 §3.3 stale fallback needs, so disposal
    /// belongs to the caller ([`evict`] / [`evict_expired`]), not to the
    /// decision.
    ///
    /// [`evict`]: PolicyCache::evict
    /// [`evict_expired`]: PolicyCache::evict_expired
    pub fn assess(
        &self,
        domain: &DomainName,
        current_record_id: Option<&str>,
        now: SimInstant,
    ) -> CacheDecision {
        match (self.entries.get(domain), current_record_id) {
            (Some(cached), Some(id)) if cached.is_fresh(now) && cached.record_id == id => {
                CacheDecision::UseCached(cached.clone())
            }
            (Some(cached), Some(_id_changed)) if cached.is_fresh(now) => {
                CacheDecision::Fetch(RefreshReason::IdChanged)
            }
            (Some(cached), None) if cached.is_fresh(now) => {
                // Record gone/unreadable but policy still valid: keep
                // enforcing (this is the RFC's protection, and the §2.6
                // removal-ordering hazard).
                CacheDecision::UseCachedDespiteDns(cached.clone())
            }
            (Some(_expired), _) => CacheDecision::Fetch(RefreshReason::Expired),
            (None, _) => CacheDecision::Fetch(RefreshReason::NoEntry),
        }
    }

    /// Decides between cached use and refetching, given the outcome of the
    /// `_mta-sts` record lookup (`Some(id)` when a valid record was read,
    /// `None` when the record was absent or unreadable). Counts cache
    /// uses; fetch completions are counted by [`PolicyCache::store`].
    pub fn decide(
        &mut self,
        domain: &DomainName,
        current_record_id: Option<&str>,
        now: SimInstant,
    ) -> CacheDecision {
        let decision = self.assess(domain, current_record_id, now);
        if matches!(
            decision,
            CacheDecision::UseCached(_) | CacheDecision::UseCachedDespiteDns(_)
        ) {
            self.hits += 1;
        }
        decision
    }

    /// Stores a freshly fetched policy. This is the fetch-completion
    /// point: the `fetches` counter increments here, not when a fetch is
    /// merely *recommended*, so failed HTTPS legs never inflate it.
    pub fn store(&mut self, domain: DomainName, policy: Policy, record_id: &str, now: SimInstant) {
        self.fetches += 1;
        self.entries.insert(
            domain,
            CachedPolicy {
                policy,
                record_id: record_id.to_string(),
                fetched_at: now,
            },
        );
    }

    /// Reads the raw entry (tests, instrumentation).
    pub fn peek(&self, domain: &DomainName) -> Option<&CachedPolicy> {
        self.entries.get(domain)
    }

    /// Removes the entry for `domain`.
    pub fn evict(&mut self, domain: &DomainName) -> bool {
        self.entries.remove(domain).is_some()
    }

    /// Removes every expired entry; returns how many were dropped.
    pub fn evict_expired(&mut self, now: SimInstant) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.is_fresh(now));
        before - self.entries.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(cache uses, completed fetches)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.fetches)
    }

    /// A serializable snapshot of every entry, sorted by domain so the
    /// bytes are canonical (checkpoint digests depend on it). Counters
    /// are deliberately excluded: they are run-local instrumentation,
    /// not protocol state.
    pub fn snapshot(&self) -> Vec<(DomainName, CachedPolicy)> {
        let mut entries: Vec<(DomainName, CachedPolicy)> = self
            .entries
            .iter()
            .map(|(d, e)| (d.clone(), e.clone()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Rebuilds a cache from a [`snapshot`](PolicyCache::snapshot).
    /// Duplicate domains keep the last entry; counters start at zero.
    pub fn from_snapshot(entries: Vec<(DomainName, CachedPolicy)>) -> PolicyCache {
        PolicyCache {
            entries: entries.into_iter().collect(),
            hits: 0,
            fetches: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Mode, MxPattern, Policy};
    use netbase::{Duration, SimDate};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn policy(max_age: u64) -> Policy {
        Policy::new(
            Mode::Enforce,
            max_age,
            vec![MxPattern::parse("mx.example.com").unwrap()],
        )
    }

    fn t0() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    #[test]
    fn first_contact_fetches() {
        let mut cache = PolicyCache::new();
        assert_eq!(
            cache.decide(&n("example.com"), Some("id1"), t0()),
            CacheDecision::Fetch(RefreshReason::NoEntry)
        );
    }

    #[test]
    fn fresh_entry_with_same_id_is_used() {
        let mut cache = PolicyCache::new();
        cache.store(n("example.com"), policy(604_800), "id1", t0());
        let later = t0() + Duration::days(3);
        let CacheDecision::UseCached(entry) = cache.decide(&n("example.com"), Some("id1"), later)
        else {
            panic!("expected cached use")
        };
        assert_eq!(entry.record_id, "id1");
    }

    #[test]
    fn id_change_triggers_refetch() {
        let mut cache = PolicyCache::new();
        cache.store(n("example.com"), policy(604_800), "id1", t0());
        assert_eq!(
            cache.decide(&n("example.com"), Some("id2"), t0() + Duration::hours(1)),
            CacheDecision::Fetch(RefreshReason::IdChanged)
        );
    }

    #[test]
    fn expiry_triggers_refetch() {
        let mut cache = PolicyCache::new();
        cache.store(n("example.com"), policy(3600), "id1", t0());
        assert_eq!(
            cache.decide(&n("example.com"), Some("id1"), t0() + Duration::hours(2)),
            CacheDecision::Fetch(RefreshReason::Expired)
        );
    }

    #[test]
    fn dns_outage_does_not_downgrade() {
        // Record lookup fails, but the cached policy is fresh: MTA-STS
        // still applies (TOFU downgrade protection).
        let mut cache = PolicyCache::new();
        cache.store(n("example.com"), policy(604_800), "id1", t0());
        let decision = cache.decide(&n("example.com"), None, t0() + Duration::days(1));
        assert!(matches!(decision, CacheDecision::UseCachedDespiteDns(_)));
    }

    #[test]
    fn record_removed_and_cache_expired_recommends_fetch_but_keeps_entry() {
        // Regression (stale-fallback erasure): the old `decide` evicted
        // the entry in the (expired, no-record) arm, so a DNS outage
        // coinciding with expiry erased exactly the entry the §3.3
        // stale fallback needs. The decision still says Fetch(Expired);
        // disposal is the caller's (`evict_expired`), not the decision's.
        let mut cache = PolicyCache::new();
        cache.store(n("example.com"), policy(3600), "id1", t0());
        let decision = cache.decide(&n("example.com"), None, t0() + Duration::days(1));
        assert_eq!(decision, CacheDecision::Fetch(RefreshReason::Expired));
        assert!(
            cache.peek(&n("example.com")).is_some(),
            "expired entry must survive the decision for stale fallback"
        );
        // Explicit disposal still works.
        assert_eq!(cache.evict_expired(t0() + Duration::days(1)), 1);
        assert!(cache.peek(&n("example.com")).is_none());
    }

    #[test]
    fn eviction() {
        let mut cache = PolicyCache::new();
        cache.store(n("a.com"), policy(3600), "1", t0());
        cache.store(n("b.com"), policy(604_800), "1", t0());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evict_expired(t0() + Duration::hours(2)), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.evict(&n("b.com")));
        assert!(cache.is_empty());
    }

    #[test]
    fn stats_count_uses_and_completed_fetches() {
        let mut cache = PolicyCache::new();
        let _ = cache.decide(&n("a.com"), Some("1"), t0()); // fetch recommended
        cache.store(n("a.com"), policy(3600), "1", t0()); // fetch completed
        let _ = cache.decide(&n("a.com"), Some("1"), t0()); // hit
        let _ = cache.decide(&n("a.com"), Some("2"), t0()); // fetch recommended (id)
                                                            // Only the completed fetch counts; the two recommendations alone
                                                            // don't.
        assert_eq!(cache.stats(), (1, 1));
        cache.store(n("a.com"), policy(3600), "2", t0());
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn failed_fetch_does_not_inflate_fetch_counter() {
        // Regression (counter drift): a caller whose HTTPS fetch fails
        // after `decide` recommended one must not shift `stats()` away
        // from the TLSRPT/ledger totals — the counter moves on `store`.
        let mut cache = PolicyCache::new();
        for _ in 0..5 {
            let d = cache.decide(&n("a.com"), Some("1"), t0());
            assert!(matches!(d, CacheDecision::Fetch(_)));
            // Simulated fetch failure: the caller never stores.
        }
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn max_age_zero_is_never_served() {
        let mut cache = PolicyCache::new();
        cache.store(n("a.com"), policy(0), "1", t0());
        // Not even at the very instant it was stored.
        assert_eq!(
            cache.decide(&n("a.com"), Some("1"), t0()),
            CacheDecision::Fetch(RefreshReason::Expired)
        );
        // And a record outage must not serve it either: the entry is
        // expired, so the decision is a fetch (the entry itself survives
        // for the caller's stale-fallback policy to dispose of).
        cache.store(n("a.com"), policy(0), "1", t0());
        assert_eq!(
            cache.decide(&n("a.com"), None, t0()),
            CacheDecision::Fetch(RefreshReason::Expired)
        );
        assert!(cache.peek(&n("a.com")).is_some());
    }

    #[test]
    fn huge_max_age_saturates_instead_of_overflowing() {
        // u32::MAX seconds (~136 years) and u64::MAX (which does not even
        // fit i64) must both clamp, not wrap into the past.
        for max_age in [u64::from(u32::MAX), u64::MAX] {
            let mut cache = PolicyCache::new();
            cache.store(n("a.com"), policy(max_age), "1", t0());
            let entry = cache.peek(&n("a.com")).unwrap().clone();
            assert!(
                entry.expires_at() > t0(),
                "max_age={max_age} wrapped into the past"
            );
            let far_future = t0() + Duration::days(365 * 100);
            assert!(entry.is_fresh(far_future), "max_age={max_age}");
            assert!(matches!(
                cache.decide(&n("a.com"), Some("1"), far_future),
                CacheDecision::UseCached(_)
            ));
        }
    }

    #[test]
    fn expiry_boundary_is_exclusive() {
        let mut cache = PolicyCache::new();
        cache.store(n("a.com"), policy(3600), "1", t0());
        let exactly = t0() + Duration::seconds(3600);
        // At exactly max_age the entry is expired (strict <).
        assert_eq!(
            cache.decide(&n("a.com"), Some("1"), exactly),
            CacheDecision::Fetch(RefreshReason::Expired)
        );
    }
}
