//! Precomputed change timeline: when each domain *can* change.
//!
//! A [`crate::fingerprint::DomainFingerprint`] is a pure function of
//! `(spec, date, shared-CNAME state)`, and every date-dependent input is
//! known at generation time: TLSRPT adoption lags, the lucidgrow and
//! June-8 incident windows, stale-MX migration dates, the end-of-study
//! CN-mismatch fix cohort, and the shared-CNAME dead-edge flips those
//! faults induce. [`ChangeTimeline`] enumerates them once per
//! [`Ecosystem`] as a sorted `(date, index)` event list plus a per-shared-
//! provider dead-state step function, so that:
//!
//! - [`crate::IncrementalWorld::advance_to`] visits only *new adopters
//!   plus scheduled events* between two dates — O(adopters + changes)
//!   instead of an O(population) fingerprint sweep;
//! - [`Ecosystem::fingerprint_context`] is a binary search over the
//!   precomputed flips instead of an O(population) installer scan per
//!   provider.
//!
//! Completeness is the load-bearing property: a missing event class would
//! leave a stale deployment in place. It is pinned two ways — the oracle
//! test here walks every weekly date pair asserting that any fingerprint
//! that moved had a scheduled event, and the incremental-world suite
//! asserts installed fingerprints match a from-scratch sweep at every
//! date.

use crate::deploy::Ecosystem;
use crate::fingerprint::FingerprintContext;
use crate::providers::CnameStyle;
use crate::spec::{PolicyHosting, JUNE8_WINDOW, LUCIDGROW_WINDOW};
use netbase::SimDate;

/// Per-shared-provider dead-state step function.
#[derive(Debug, Clone)]
struct SharedFlips {
    /// Policy-provider key.
    key: &'static str,
    /// `(date, new state)` transitions, ascending; the state holds from
    /// its date until the next transition. Before the first: not dead.
    flips: Vec<(SimDate, bool)>,
}

/// The precomputed schedule of every fingerprint-relevant change.
#[derive(Debug, Clone, Default)]
pub struct ChangeTimeline {
    /// `(date, population index)` events, sorted and deduped: index `i`
    /// may change fingerprint on `date` (always after its adoption —
    /// adoption itself is tracked by the population's adoption columns).
    events: Vec<(SimDate, u32)>,
    /// One step function per shared-CNAME provider, in
    /// `policy_providers` order (the order contexts enumerate).
    shared: Vec<SharedFlips>,
}

impl ChangeTimeline {
    /// Enumerates every event class for `eco`'s population.
    pub(crate) fn build(eco: &Ecosystem) -> ChangeTimeline {
        let mut events: Vec<(SimDate, u32)> = Vec::new();
        let end = eco.config.end;
        for (i, spec) in eco.population.domains.iter().enumerate() {
            let i = i as u32;
            let push = |date: SimDate, events: &mut Vec<(SimDate, u32)>| {
                if date > spec.adopted {
                    events.push((date, i));
                }
            };
            // Record component: TLSRPT appears.
            if let Some(t) = spec.tlsrpt {
                push(t, &mut events);
            }
            // Policy component: incident windows open and close.
            if spec.lucidgrow {
                push(LUCIDGROW_WINDOW.0, &mut events);
                push(LUCIDGROW_WINDOW.1.add_days(1), &mut events);
            }
            if spec.june8_victim {
                push(JUNE8_WINDOW.0, &mut events);
                push(JUNE8_WINDOW.1.add_days(1), &mut events);
            }
            // MX component: the stale-policy migration and the
            // fixed-at-latest cohort.
            if let Some(inc) = &spec.faults.inconsistency {
                if let Some(migration) = inc.stale_migration {
                    push(migration, &mut events);
                }
            }
            if spec.faults.mx_cn_fixed_at_latest {
                push(end, &mut events);
            }
        }

        // Shared-CNAME targets: the A record is owned by the first adopted
        // customer in population order, so the dead state can only move at
        // a customer adoption (the installer may change) or a June-8
        // boundary (the installer's effective fault may change). Evaluate
        // the semantic definition at those dates and record transitions;
        // each transition dirties every already-adopted customer.
        let mut shared = Vec::new();
        for provider in &eco.policy_providers {
            if !matches!(provider.cname_style, CnameStyle::Shared(_)) {
                continue;
            }
            let customers: Vec<u32> = eco
                .population
                .domains
                .iter()
                .enumerate()
                .filter(|(_, d)| {
                    matches!(&d.policy, PolicyHosting::Provider { key } if *key == provider.key)
                })
                .map(|(i, _)| i as u32)
                .collect();
            let mut candidates: Vec<SimDate> = customers
                .iter()
                .map(|&i| eco.population.domains[i as usize].adopted)
                .collect();
            candidates.push(JUNE8_WINDOW.0);
            candidates.push(JUNE8_WINDOW.1.add_days(1));
            candidates.sort_unstable();
            candidates.dedup();
            let mut flips: Vec<(SimDate, bool)> = Vec::new();
            let mut state = false;
            for date in candidates {
                let dead = eco.shared_cname_dead(provider.key, date);
                if dead != state {
                    flips.push((date, dead));
                    state = dead;
                    for &c in &customers {
                        if date > eco.population.domains[c as usize].adopted {
                            events.push((date, c));
                        }
                    }
                }
            }
            shared.push(SharedFlips {
                key: provider.key,
                flips,
            });
        }

        events.sort_unstable();
        events.dedup();
        ChangeTimeline { events, shared }
    }

    /// Population indices that may change fingerprint in `(after,
    /// through]`. Ordered by (date, index); an index can repeat across
    /// dates — callers sort/dedup alongside the adopter slice.
    pub fn events_between(
        &self,
        after: SimDate,
        through: SimDate,
    ) -> impl Iterator<Item = u32> + '_ {
        let lo = self.events.partition_point(|(d, _)| *d <= after);
        let hi = self.events.partition_point(|(d, _)| *d <= through);
        self.events[lo..hi].iter().map(|&(_, i)| i)
    }

    /// Whether `key`'s shared CNAME target points at the dead edge at
    /// `date`. `false` for unknown keys (per-customer targets have no
    /// coupling).
    pub fn shared_dead_at(&self, key: &str, date: SimDate) -> bool {
        self.shared
            .iter()
            .find(|s| s.key == key)
            .is_some_and(|s| state_at(&s.flips, date))
    }

    /// The fingerprint context at `date` — O(shared providers · log
    /// flips), no population walk.
    pub fn context(&self, date: SimDate) -> FingerprintContext {
        FingerprintContext::new(
            date,
            self.shared
                .iter()
                .map(|s| (s.key, state_at(&s.flips, date)))
                .collect(),
        )
    }

    /// Total number of scheduled `(date, index)` events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

/// Evaluates a step function at `date`.
fn state_at(flips: &[(SimDate, bool)], date: SimDate) -> bool {
    let k = flips.partition_point(|(d, _)| *d <= date);
    k > 0 && flips[k - 1].1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcosystemConfig;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::paper(42, 0.02))
    }

    #[test]
    fn context_matches_the_population_scan_everywhere() {
        let eco = eco();
        let mut dates = eco.config.weekly_snapshots();
        dates.extend([
            LUCIDGROW_WINDOW.0,
            LUCIDGROW_WINDOW.1,
            JUNE8_WINDOW.0,
            JUNE8_WINDOW.1,
            JUNE8_WINDOW.1.add_days(1),
        ]);
        for date in dates {
            let fast = eco.timeline().context(date);
            let scratch = eco.fingerprint_context_scratch(date);
            for provider in &eco.policy_providers {
                assert_eq!(
                    fast.shared_target_dead(provider.key),
                    scratch.shared_target_dead(provider.key),
                    "{} at {date}",
                    provider.key
                );
                assert_eq!(
                    eco.timeline().shared_dead_at(provider.key, date),
                    scratch.shared_target_dead(provider.key)
                );
            }
        }
    }

    #[test]
    fn every_fingerprint_move_has_a_scheduled_event() {
        // Completeness oracle: between consecutive weekly dates, any
        // domain whose fingerprint moved must appear in events_between.
        let eco = eco();
        let timeline = eco.timeline();
        let weekly = eco.config.weekly_snapshots();
        let mut moved_total = 0usize;
        for pair in weekly.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let scheduled: std::collections::HashSet<u32> = timeline.events_between(a, b).collect();
            let ctx_a = eco.fingerprint_context_scratch(a);
            let ctx_b = eco.fingerprint_context_scratch(b);
            for (i, spec) in eco.population.domains.iter().enumerate() {
                if !spec.adopted_by(a) {
                    continue; // adoption is tracked by the population index
                }
                let fa = eco.fingerprint_at(spec, &ctx_a);
                let fb = eco.fingerprint_at(spec, &ctx_b);
                if fa != fb {
                    moved_total += 1;
                    assert!(
                        scheduled.contains(&(i as u32)),
                        "{} moved {a}->{b} with no scheduled event",
                        spec.name
                    );
                }
            }
        }
        assert!(
            moved_total > 50,
            "oracle exercised too little: {moved_total}"
        );
        assert!(timeline.event_count() > 0);
    }

    #[test]
    fn events_are_sparse_relative_to_the_population_sweep() {
        let eco = eco();
        let weeks = eco.config.weekly_snapshots().len();
        let sweep = eco.population.domains.len() * weeks;
        assert!(
            eco.timeline().event_count() * 10 < sweep,
            "{} events vs {} sweep slots",
            eco.timeline().event_count(),
            sweep
        );
    }
}
