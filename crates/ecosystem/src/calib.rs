//! Calibration constants: the paper's latest-snapshot numbers as rates.
//!
//! Every constant cites the section/figure it reproduces. Rates are
//! applied per domain through seeded draws, so the measured values in a
//! generated ecosystem land near the paper's with binomial noise;
//! EXPERIMENTS.md records measured-vs-paper for every experiment.

/// §3.2/Table 1: total MTA-STS domains at the latest snapshot, all TLDs.
pub const TOTAL_MTASTS_LATEST: u64 = 68_030;

// ---------------------------------------------------------------------
// Policy hosting composition (latest snapshot, §4.3.3 and §5).
// ---------------------------------------------------------------------

/// Domains using third-party policy hosts (classified): 28,591.
pub const POLICY_THIRD_PARTY: u64 = 28_591;
/// Domains self-managing the policy host: 25,344.
pub const POLICY_SELF_MANAGED: u64 = 25_344;
/// Porkbun-registered domains with broken parking-cert policy hosts (from
/// August 2024; Figure 4/5 notes): 7,237 — counted inside self-managed.
pub const PORKBUN_DOMAINS: u64 = 7_237;
/// The mxascen single-administrator pseudo-provider (§4.3.1): 4,722 —
/// counted inside self-managed.
pub const MXASCEN_DOMAINS: u64 = 4_722;
/// Misc third-party policy hosts beyond Table 2's eight: 28,591 − 24,796.
pub const MISC_THIRD_PARTY_POLICY: u64 = 3_795;
/// Number of misc third-party policy providers (each ≥50 customers).
pub const MISC_THIRD_PARTY_PROVIDERS: u64 = 15;
/// Domains whose policy hosting could not be classified (68,030 − 53,935):
/// modelled as CNAME targets serving 6-49 domains, invisible to both
/// heuristics.
pub const POLICY_UNCLASSIFIED: u64 = 14_095;
/// Average customers per small (unclassifiable) policy provider.
pub const SMALL_PROVIDER_MEAN_CUSTOMERS: u64 = 30;

// ---------------------------------------------------------------------
// Mail (MX) hosting composition (latest snapshot, §4.3.4).
// ---------------------------------------------------------------------

/// Domains using third-party MX: 40,683 (59.8%).
pub const MX_THIRD_PARTY: u64 = 40_683;
/// Domains self-managing MXes: 23,512 (34.6%) — includes mxascen.
pub const MX_SELF_MANAGED: u64 = 23_512;
/// Unclassifiable MX hosting: 3,835.
pub const MX_UNCLASSIFIED: u64 = 3_835;
/// lucidgrow.com customers (unique MX per domain, policy at DMARCReport;
/// §4.4's January 23 incident hit all 246).
pub const LUCIDGROW_DOMAINS: u64 = 246;
/// mxrouting.net customers carrying invalid MX certificates (§4.3.4
/// footnote: one large provider responsible for ~122 affected domains).
pub const MXROUTING_FAULTY: u64 = 122;
/// mxrouting.net total customers in the population (so the faulty share
/// is ~10%).
pub const MXROUTING_DOMAINS: u64 = 1_300;

// ---------------------------------------------------------------------
// DNS record errors (§4.3.2): 331 of 68,030.
// ---------------------------------------------------------------------

/// P(record fault) ≈ 331 / 68,030.
pub const RECORD_FAULT_RATE: f64 = 331.0 / 68_030.0;
/// Conditional mix: missing id 65, invalid id 203, bad version 52,
/// invalid extension 2, multiple records ~9 (weights, not probabilities).
pub const RECORD_FAULT_MIX: [(RecordFaultKind, f64); 5] = [
    (RecordFaultKind::MissingId, 65.0),
    (RecordFaultKind::InvalidId, 203.0),
    (RecordFaultKind::BadVersion, 52.0),
    (RecordFaultKind::BadExtension, 2.0),
    (RecordFaultKind::MultipleRecords, 9.0),
];

/// The record-level fault kinds of §4.3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RecordFaultKind {
    /// No `id` field (19.6% of broken records).
    MissingId,
    /// `id` with forbidden characters, e.g. dashes (61%).
    InvalidId,
    /// Wrong version prefix (15.7%).
    BadVersion,
    /// Invalid extension fields (2 domains).
    BadExtension,
    /// More than one `v=STSv1` record.
    MultipleRecords,
}

// ---------------------------------------------------------------------
// Policy-server faults (§4.3.3, Figure 5), latest snapshot.
//
// Self-managed (non-Porkbun, non-mxascen baseline 13,385 + mxascen 4,722
// = 18,107 domains carrying: DNS 42, TCP 193, CN-mismatch 1,148 (8,385
// total minus Porkbun's 7,237), TLS-other 486, HTTP 377, syntax 55.
// ---------------------------------------------------------------------

/// P(policy DNS fault | plain self-managed) = 42 / 18,107.
pub const SELF_POLICY_DNS_RATE: f64 = 42.0 / 18_107.0;
/// P(policy TCP fault | plain self-managed) = 193 / 18,107.
pub const SELF_POLICY_TCP_RATE: f64 = 193.0 / 18_107.0;
/// P(CN-mismatch TLS fault | plain self-managed) = 1,148 / 18,107.
pub const SELF_POLICY_TLS_CN_RATE: f64 = 1_148.0 / 18_107.0;
/// P(other TLS fault — self-signed/expired | plain self-managed).
pub const SELF_POLICY_TLS_OTHER_RATE: f64 = 486.0 / 18_107.0;
/// P(HTTP fault | plain self-managed) = 377 / 18,107.
pub const SELF_POLICY_HTTP_RATE: f64 = 377.0 / 18_107.0;
/// P(policy syntax fault | plain self-managed) = 55 / 18,107.
pub const SELF_POLICY_SYNTAX_RATE: f64 = 55.0 / 18_107.0;

/// Third-party policy hosts (excluding the named DMARCReport / Tutanota
/// artefacts): TCP 34, TLS ~650, HTTP 215, syntax 76 over ~21,200.
pub const THIRD_POLICY_TCP_RATE: f64 = 34.0 / 21_200.0;
/// Third-party TLS fault rate (expired/CN-mismatch on sloppier hosts).
pub const THIRD_POLICY_TLS_RATE: f64 = 650.0 / 21_200.0;
/// Third-party HTTP fault rate.
pub const THIRD_POLICY_HTTP_RATE: f64 = 215.0 / 21_200.0;
/// Third-party policy syntax fault rate.
pub const THIRD_POLICY_SYNTAX_RATE: f64 = 76.0 / 21_200.0;

/// DMARCReport customers whose CNAME points there but were never hosted:
/// 354 SSL-alert (no certificate) domains (§4.3.3).
pub const DMARCREPORT_NEVER_HOSTED: u64 = 354;
/// DMARCReport opted-out customers served an empty policy file: 5 (§5).
pub const DMARCREPORT_EMPTY_POLICY: u64 = 5;
/// Tutanota leftovers with policy-server errors: 10, of which 8 expired
/// certificates (§5).
pub const TUTANOTA_STALE: u64 = 10;
/// The June 8, 2024 incident: a leading provider (modelled as PowerDMARC)
/// serving self-signed certificates for 1,385 domains, one snapshot only
/// (Figure 5).
pub const JUNE8_SELFSIGNED_DOMAINS: u64 = 1_385;
/// Unclassified-hosting policy fault rate (~6,200 faulty of 14,095 —
/// closes the gap between category sums and the 17,184 policy-error
/// domains of §9).
pub const UNCLASSIFIED_POLICY_FAULT_RATE: f64 = 6_200.0 / 14_095.0;

// ---------------------------------------------------------------------
// MX certificate faults (§4.3.4, Figures 6-7), latest snapshot.
// ---------------------------------------------------------------------

/// P(MX cert fault | self-managed MX): the paper's latest 1,046 (4.4%)
/// *plus* the 270-domain cohort that had just fixed its CN mismatch —
/// injection is pre-fix, the fix clears at the final scan (Figure 6).
pub const SELF_MX_CERT_FAULT_RATE: f64 = (1_046.0 + 270.0) / 23_512.0;
/// Self-hosted MX domains that fixed their CN mismatch just before the
/// latest snapshot (Figure 6's dip): 270.
pub const SELF_MX_CN_FIXED: u64 = 270;
/// P(MX cert fault | third-party MX, excluding mxrouting): ~275 of
/// ~39,400 (overall third-party lands at 1% once mxrouting's 122 join).
pub const THIRD_MX_CERT_FAULT_RATE: f64 = 275.0 / 39_400.0;
/// Conditional mix of MX cert fault kinds (Figure 6): CN mismatch
/// dominates, then self-signed, then expired.
pub const MX_FAULT_MIX: [(MxCertFaultKind, f64); 3] = [
    (MxCertFaultKind::CnMismatch, 0.55),
    (MxCertFaultKind::SelfSigned, 0.25),
    (MxCertFaultKind::Expired, 0.20),
];
/// P(fault covers all MXes | fault present) — Figure 7's all-invalid
/// (1,326) vs partially-invalid split.
pub const MX_FAULT_ALL_SCOPE_RATE: f64 = 0.75;

/// The MX certificate fault kinds of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MxCertFaultKind {
    /// Certificate does not cover the MX hostname.
    CnMismatch,
    /// Self-signed certificate.
    SelfSigned,
    /// Expired certificate.
    Expired,
}

// ---------------------------------------------------------------------
// Inconsistency faults (§4.4-§4.5, Figures 8-10), latest snapshot.
// ---------------------------------------------------------------------

/// P(inconsistency | both outsourced to different providers): 640/18,922.
pub const INCONSISTENCY_DIFF_PROVIDER_RATE: f64 = 640.0 / 18_922.0;
/// P(inconsistency | both outsourced to the same provider): 1/7,492 — the
/// generator pins exactly one such domain (the laura-norman.com typo).
pub const INCONSISTENCY_SAME_PROVIDER_COUNT: u64 = 1;
/// P(inconsistency | everything else): ≈1,246 over ~41,600 domains.
pub const INCONSISTENCY_OTHER_RATE: f64 = 1_246.0 / 41_600.0;
/// Conditional kind mix (Figure 8 latest: complete 1,023, 3LD+ 730,
/// typo 63, TLD ~70).
pub const INCONSISTENCY_MIX: [(InconsistencyKind, f64); 4] = [
    (InconsistencyKind::CompleteDomain, 1_023.0),
    (InconsistencyKind::ThirdLabel, 730.0),
    (InconsistencyKind::Typo, 63.0),
    (InconsistencyKind::Tld, 70.0),
];
/// Among complete-domain mismatches: the share explained by *stale*
/// policies matching historical MX records (Figure 9's latest point).
pub const COMPLETE_MISMATCH_STALE_SHARE: f64 = 644.0 / 1_023.0;
/// Among 3LD+ mismatches: the share embedding the stray `mta-sts` label
/// (597 of 730, §4.4).
pub const THIRD_LABEL_STRAY_SHARE: f64 = 597.0 / 730.0;

/// Inconsistency kinds (Figure 8's series).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum InconsistencyKind {
    /// Completely different domain in the pattern.
    CompleteDomain,
    /// Same eSLD, divergence from the third label.
    ThirdLabel,
    /// Edit distance ≤ 3 typo.
    Typo,
    /// TLD mismatch.
    Tld,
}

// ---------------------------------------------------------------------
// Modes, max_age, TLSRPT.
// ---------------------------------------------------------------------

/// P(enforce) for domains carrying MX/inconsistency faults — calibrated
/// from Figure 7 (269 enforce of 1,326 all-invalid) and Figure 8 (406
/// enforce of ~1,886 mismatched): ≈21%.
pub const ENFORCE_RATE_FAULTY: f64 = 0.21;
/// Mode split for clean domains (majors push enforce).
pub const MODE_SPLIT_CLEAN: (f64, f64, f64) = (0.40, 0.45, 0.15); // enforce/testing/none
/// Mode split for faulty domains.
pub const MODE_SPLIT_FAULTY: (f64, f64, f64) = (0.21, 0.55, 0.24);

/// `max_age` menu (seconds) with weights: 1 day, 1 week, 30 days, 1 year.
pub const MAX_AGE_MENU: [(u64, f64); 4] = [
    (86_400, 0.15),
    (604_800, 0.45),
    (2_592_000, 0.25),
    (31_557_600, 0.15),
];

/// P(TLSRPT at MTA-STS adoption time) and P(TLSRPT eventually) — the
/// bottom panel of Figure 12 rises toward ~72%.
pub const TLSRPT_AT_ADOPTION: f64 = 0.55;
/// Eventual TLSRPT share among MTA-STS domains.
pub const TLSRPT_EVENTUAL: f64 = 0.72;

// ---------------------------------------------------------------------
// Tranco (Figure 3).
// ---------------------------------------------------------------------

/// MTA-STS rate in the top 10k bin (1.2%) and bottom bin (0.4%).
pub const TRANCO_TOP_BIN_RATE: f64 = 0.012;
/// Rate in the bottom (1M) bin.
pub const TRANCO_BOTTOM_BIN_RATE: f64 = 0.004;
/// Bin width used by Figure 3.
pub const TRANCO_BIN: u64 = 10_000;
/// Universe size.
pub const TRANCO_UNIVERSE: u64 = 1_000_000;

/// The `.org` organizational adoption spike: 461 domains on 2024-01-02.
pub const ORG_SPIKE_DOMAINS: u64 = 461;
