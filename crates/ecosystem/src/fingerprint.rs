//! Per-domain change fingerprints: the incremental engine's journal.
//!
//! A [`DomainFingerprint`] condenses everything that determines a domain's
//! deployed configuration — and therefore its scan result — *on a given
//! date* into three component hashes:
//!
//! - **record**: the `_mta-sts` TXT strings (including the RFC 8461 `id`)
//!   plus whether the TLSRPT record exists yet;
//! - **policy**: the served policy document's inputs — effective mode, mx
//!   patterns, max_age, the effective policy-server fault (incident
//!   windows included), and, for customers of a *shared* CNAME target,
//!   whether that target currently resolves to a dead edge;
//! - **mx**: the effective MX host set and the effective MX-certificate
//!   fault.
//!
//! Between two dates, a domain whose fingerprint is unchanged deploys
//! byte-identically and scans byte-identically (certificate validity
//! windows are re-dated wholesale by
//! [`crate::incremental::IncrementalWorld::advance_to`], and transient
//! faults / attack windows are excluded at the cache layer, not here).
//! The component split exists for the RFC 8461 short-circuit: when only
//! the `mx` component is dirty, a scanner can keep the cached record and
//! policy-fetch stages — the record `id` is unchanged — and re-run just
//! the MX probes.
//!
//! Fingerprints deliberately hash *semantic values* (host names, fault
//! kinds, document inputs) rather than raw date flags, so a future
//! date-dependent knob that feeds those values is picked up without
//! remembering to extend this module.

use crate::deploy::{in_window, record_texts, Ecosystem};
use crate::providers::CnameStyle;
use crate::spec::{DomainSpec, PolicyFaultKind, PolicyHosting, LUCIDGROW_WINDOW};
use netbase::SimDate;
use std::fmt::Write;

/// FNV-1a 64-bit — tiny, dependency-free, stable across platforms.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The per-domain configuration fingerprint at one date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainFingerprint {
    /// `_mta-sts` TXT strings + TLSRPT presence.
    pub record: u64,
    /// Policy-document inputs + effective policy-server fault.
    pub policy: u64,
    /// Effective MX host set + effective MX certificate fault.
    pub mx: u64,
}

/// Cross-domain state a fingerprint depends on, computed once per date.
///
/// The only coupling between domains in the deployed world is the A
/// record of a *shared* policy CNAME target (Table 2's tutanota style):
/// it is installed by the first adopted customer in population order, and
/// points at a dead edge iff that installer has a TCP-layer fault. When a
/// lower-indexed customer adopts — or the installer's fault windows shift
/// — the record can flip, and every customer of that provider must be
/// treated as dirty.
#[derive(Debug, Clone)]
pub struct FingerprintContext {
    /// The date the context was computed for.
    pub date: SimDate,
    /// For each shared-target policy provider key: whether the shared
    /// CNAME target currently points at the dead (TCP-faulted) edge.
    shared_dead: Vec<(&'static str, bool)>,
}

impl FingerprintContext {
    /// Assembles a context from precomputed per-provider dead states
    /// (see [`crate::timeline::ChangeTimeline::context`]).
    pub(crate) fn new(date: SimDate, shared_dead: Vec<(&'static str, bool)>) -> FingerprintContext {
        FingerprintContext { date, shared_dead }
    }

    /// Whether `key`'s shared CNAME target points at the dead edge.
    /// `false` for providers with per-customer targets (no coupling).
    pub fn shared_target_dead(&self, key: &str) -> bool {
        self.shared_dead
            .iter()
            .find(|(k, _)| *k == key)
            .is_some_and(|(_, dead)| *dead)
    }
}

impl Ecosystem {
    /// Computes the cross-domain fingerprint inputs for `date` — a binary
    /// search over the precomputed [`crate::timeline::ChangeTimeline`],
    /// not a population walk.
    pub fn fingerprint_context(&self, date: SimDate) -> FingerprintContext {
        self.timeline().context(date)
    }

    /// The semantic definition [`Ecosystem::fingerprint_context`] is
    /// derived from: an O(population) installer scan per shared provider.
    /// Kept as the oracle the timeline is tested against.
    pub fn fingerprint_context_scratch(&self, date: SimDate) -> FingerprintContext {
        let mut shared_dead = Vec::new();
        for provider in &self.policy_providers {
            if !matches!(provider.cname_style, CnameStyle::Shared(_)) {
                continue;
            }
            shared_dead.push((provider.key, self.shared_cname_dead(provider.key, date)));
        }
        FingerprintContext { date, shared_dead }
    }

    /// Whether the shared CNAME target of policy provider `key` points at
    /// the dead edge at `date`: true iff the first adopted customer in
    /// population order — the one whose installation wrote the A record —
    /// has an effective TCP-layer policy fault that date.
    pub(crate) fn shared_cname_dead(&self, key: &str, date: SimDate) -> bool {
        let installer = self.population.domains.iter().find(|d| {
            d.adopted_by(date)
                && matches!(&d.policy, PolicyHosting::Provider { key: k } if *k == key)
        });
        installer.is_some_and(|spec| {
            matches!(
                self.effective_policy_fault(spec, date),
                Some(PolicyFaultKind::TcpRefused | PolicyFaultKind::TcpTimeout)
            )
        })
    }

    /// The domain's fingerprint at the context's date, or `None` when the
    /// domain has not adopted yet (nothing deployed, nothing to scan).
    pub fn fingerprint_at(
        &self,
        spec: &DomainSpec,
        ctx: &FingerprintContext,
    ) -> Option<DomainFingerprint> {
        let date = ctx.date;
        if !spec.adopted_by(date) {
            return None;
        }
        let mut buf = String::with_capacity(160);

        // Record component: the TXT strings themselves (id included) plus
        // TLSRPT presence (the weekly series reads both).
        for text in record_texts(spec) {
            buf.push_str(&text);
            buf.push('\n');
        }
        if spec.tlsrpt.is_some_and(|d| d <= date) {
            buf.push_str("tlsrpt");
        }
        let record = fnv64(buf.as_bytes());

        // Policy component: everything that shapes the served document and
        // the fetch path to it.
        buf.clear();
        let _ = write!(
            buf,
            "{:?}|{:?}|{}|",
            self.effective_mode(spec, date),
            self.effective_policy_fault(spec, date),
            spec.max_age,
        );
        // Patterns vary only through the lucidgrow window, but hashing the
        // rendered set keeps this robust to future pattern logic.
        if spec.lucidgrow && in_window(date, LUCIDGROW_WINDOW) {
            buf.push_str("lucid|");
        }
        for pattern in self.policy_patterns(spec, date) {
            let _ = write!(buf, "{pattern}|");
        }
        if let PolicyHosting::Provider { key } = &spec.policy {
            if ctx.shared_target_dead(key) {
                buf.push_str("shared-dead");
            }
        }
        let policy = fnv64(buf.as_bytes());

        // MX component: the live host set and the certificate fault.
        buf.clear();
        for host in self.effective_mx_hosts(spec, date) {
            let _ = write!(buf, "{host}|");
        }
        let _ = write!(buf, "{:?}", self.effective_mx_fault(spec, date));
        let mx = fnv64(buf.as_bytes());

        Some(DomainFingerprint { record, policy, mx })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcosystemConfig;
    use crate::spec::{JUNE8_WINDOW, LUCIDGROW_WINDOW};

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::paper(42, 0.02))
    }

    #[test]
    fn unadopted_domains_have_no_fingerprint() {
        let eco = eco();
        let spec = &eco.population.domains[0];
        let before = spec.adopted.add_days(-1);
        assert!(eco
            .fingerprint_at(spec, &eco.fingerprint_context(before))
            .is_none());
        assert!(eco
            .fingerprint_at(spec, &eco.fingerprint_context(spec.adopted))
            .is_some());
    }

    #[test]
    fn stable_domains_have_stable_fingerprints() {
        let eco = eco();
        let d1 = SimDate::ymd(2024, 3, 1);
        let d2 = SimDate::ymd(2024, 4, 1);
        let (c1, c2) = (eco.fingerprint_context(d1), eco.fingerprint_context(d2));
        let mut checked = 0;
        for spec in &eco.population.domains {
            if !spec.adopted_by(d1) || spec.tlsrpt.is_some() {
                continue;
            }
            if spec
                .faults
                .inconsistency
                .as_ref()
                .is_some_and(|i| i.stale_migration.is_some())
            {
                continue;
            }
            assert_eq!(
                eco.fingerprint_at(spec, &c1),
                eco.fingerprint_at(spec, &c2),
                "{} changed with no date-dependent knob",
                spec.name
            );
            checked += 1;
        }
        assert!(checked > 100, "too few stable domains: {checked}");
    }

    #[test]
    fn lucidgrow_window_dirties_only_policy_component() {
        let eco = eco();
        let inside = eco.fingerprint_context(SimDate::ymd(2024, 1, 23));
        let outside = eco.fingerprint_context(SimDate::ymd(2024, 3, 7));
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| {
                d.lucidgrow
                    && d.adopted_by(LUCIDGROW_WINDOW.0)
                    && d.tlsrpt.is_none_or(|t| t <= LUCIDGROW_WINDOW.0)
                    && d.faults.inconsistency.is_none()
            })
            .expect("lucidgrow domains adopt early");
        let a = eco.fingerprint_at(spec, &inside).unwrap();
        let b = eco.fingerprint_at(spec, &outside).unwrap();
        assert_ne!(a.policy, b.policy);
        assert_eq!(a.record, b.record);
        assert_eq!(a.mx, b.mx);
    }

    #[test]
    fn june8_window_dirties_only_policy_component() {
        let eco = eco();
        let inside = eco.fingerprint_context(SimDate::ymd(2024, 6, 8));
        let outside = eco.fingerprint_context(SimDate::ymd(2024, 5, 1));
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| {
                d.june8_victim
                    && d.adopted_by(SimDate::ymd(2024, 5, 1))
                    && d.tlsrpt.is_none_or(|t| t <= SimDate::ymd(2024, 5, 1))
                    && d.faults.inconsistency.is_none()
            })
            .expect("june8 victims adopt before the window");
        let a = eco.fingerprint_at(spec, &inside).unwrap();
        let b = eco.fingerprint_at(spec, &outside).unwrap();
        assert_ne!(a.policy, b.policy, "{:?}", JUNE8_WINDOW);
        assert_eq!(a.record, b.record);
        assert_eq!(a.mx, b.mx);
    }

    #[test]
    fn stale_migration_dirties_only_mx_component() {
        let eco = eco();
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| {
                !d.lucidgrow
                    && !d.june8_victim
                    && d.tlsrpt.is_none()
                    && d.faults
                        .inconsistency
                        .as_ref()
                        .is_some_and(|i| i.stale_migration.is_some_and(|m| m > d.adopted))
            })
            .expect("stale-migration domains exist");
        let migration = spec
            .faults
            .inconsistency
            .as_ref()
            .unwrap()
            .stale_migration
            .unwrap();
        let before = eco.fingerprint_context(migration.add_days(-1).max(spec.adopted));
        let after = eco.fingerprint_context(migration);
        let a = eco.fingerprint_at(spec, &before).unwrap();
        let b = eco.fingerprint_at(spec, &after).unwrap();
        assert_ne!(a.mx, b.mx);
        assert_eq!(a.record, b.record);
        assert_eq!(a.policy, b.policy, "patterns stay on the legacy MX");
    }

    #[test]
    fn tlsrpt_adoption_dirties_only_record_component() {
        let eco = eco();
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| {
                !d.lucidgrow
                    && !d.june8_victim
                    && d.faults.inconsistency.is_none()
                    && d.tlsrpt.is_some_and(|t| t > d.adopted)
            })
            .expect("lagged TLSRPT adopters exist");
        let t = spec.tlsrpt.unwrap();
        let a = eco
            .fingerprint_at(spec, &eco.fingerprint_context(t.add_days(-1)))
            .unwrap();
        let b = eco
            .fingerprint_at(spec, &eco.fingerprint_context(t))
            .unwrap();
        assert_ne!(a.record, b.record);
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.mx, b.mx);
    }

    #[test]
    fn mx_fix_cohort_dirties_only_mx_component_at_the_end() {
        let eco = eco();
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| {
                d.faults.mx_cn_fixed_at_latest
                    && d.tlsrpt.is_none_or(|t| t <= eco.config.end.add_days(-1))
                    && d.faults.inconsistency.is_none()
            })
            .expect("fixed-at-latest cohort exists");
        let a = eco
            .fingerprint_at(spec, &eco.fingerprint_context(eco.config.end.add_days(-1)))
            .unwrap();
        let b = eco
            .fingerprint_at(spec, &eco.fingerprint_context(eco.config.end))
            .unwrap();
        assert_ne!(a.mx, b.mx);
        assert_eq!(a.record, b.record);
        assert_eq!(a.policy, b.policy);
    }
}
