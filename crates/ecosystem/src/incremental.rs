//! Delta world construction: advance a deployed world date-by-date.
//!
//! [`IncrementalWorld`] keeps one [`World`] alive across snapshots and, on
//! each [`IncrementalWorld::advance_to`], applies only the diff between
//! the previous and the new date:
//!
//! 1. every *leaf* certificate's validity window is shifted by the
//!    inter-snapshot delta (exactly what re-issuing at the new date would
//!    produce — see [`pkix::SimCert::shift_validity`]);
//! 2. shared CNAME targets are reconciled (their A record is owned by the
//!    first adopted customer in population order, which can change);
//! 3. every domain's [`DomainFingerprint`] at the new date is compared to
//!    the fingerprint it was installed with: unchanged domains are left
//!    alone, new adopters are installed, dirty domains are uninstalled
//!    with their *old*-date semantics and reinstalled with the new;
//! 4. the resolver cache is flushed.
//!
//! The equivalence contract — the reason this is safe to use under the
//! digest oracle — is that [`crate::Ecosystem::world_at`] itself is a
//! single `advance_to` call, and the test suite checks that a world walked
//! through many dates serves byte-identical observations to a fresh build
//! at each date. Uninstallation is exact: a domain's records live either
//! in zones it owns outright (its own zone, its private legacy-MX zone),
//! at per-customer names inside provider zones (tracked by the
//! `shared_a_done` registry, whose invariant is "present iff exactly one
//! domain installed it"), or as per-customer chain/document entries keyed
//! by the domain's policy host on shared endpoints.

use crate::config::SnapshotDetail;
use crate::deploy::{Ecosystem, Infra, TTL};
use crate::fingerprint::DomainFingerprint;
use crate::providers::CnameStyle;
use crate::spec::{DomainSpec, PolicyHosting};
use dns::{RecordData, RecordType};
use netbase::{DomainName, Duration, SimDate};
use simnet::World;

/// What one [`IncrementalWorld::advance_to`] actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvanceStats {
    /// Newly adopted domains installed for the first time.
    pub installed: usize,
    /// Domains whose fingerprint changed: uninstalled and reinstalled.
    pub reinstalled: usize,
    /// Adopted domains left untouched.
    pub unchanged: usize,
}

impl AdvanceStats {
    /// Domains whose deployment was (re)written this advance.
    pub fn dirty(&self) -> usize {
        self.installed + self.reinstalled
    }
}

/// A [`World`] that tracks which date it represents and advances by diff.
pub struct IncrementalWorld {
    world: World,
    detail: SnapshotDetail,
    infra: Option<Infra>,
    date: Option<SimDate>,
    /// Fingerprint each population index was installed with (`None` =
    /// not installed). Indexed by position in `population.domains`; an
    /// `IncrementalWorld` is therefore tied to one [`Ecosystem`].
    installed: Vec<Option<DomainFingerprint>>,
    /// Number of `Some` entries in `installed`.
    installed_count: usize,
    /// Indices (re)written by the last `advance_to`, ascending.
    dirty: Vec<u32>,
}

impl IncrementalWorld {
    /// An empty world, no date yet.
    pub fn new(detail: SnapshotDetail) -> IncrementalWorld {
        IncrementalWorld {
            world: World::new(),
            detail,
            infra: None,
            date: None,
            installed: Vec::new(),
            installed_count: 0,
            dirty: Vec::new(),
        }
    }

    /// The underlying world (valid for the last advanced-to date).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Consumes self, returning the world.
    pub fn into_world(self) -> World {
        self.world
    }

    /// The date the world currently represents.
    pub fn date(&self) -> Option<SimDate> {
        self.date
    }

    /// The fingerprint population index `index` is currently deployed
    /// with (`None` = not installed). Scan caches key on this.
    pub fn installed_fingerprint(&self, index: usize) -> Option<DomainFingerprint> {
        self.installed.get(index).copied().flatten()
    }

    /// Population indices whose deployment was (re)written by the last
    /// [`IncrementalWorld::advance_to`], ascending. Same-date advances
    /// leave it empty. Downstream caches use this to walk only what
    /// moved instead of re-keying the whole population.
    pub fn last_dirty(&self) -> &[u32] {
        &self.dirty
    }

    /// Number of currently installed (adopted) domains.
    pub fn installed_count(&self) -> usize {
        self.installed_count
    }

    /// Advances the world to `date`, applying only the diff. Must always
    /// be called with the same `eco`, and dates must not move backwards.
    ///
    /// Cost is O(adopters + changes): the candidate set is the adoption
    /// column slice for `(prev, date]` plus the
    /// [`crate::timeline::ChangeTimeline`] events in that window — no
    /// other index can have a different fingerprint, which the oracle
    /// suites pin against full from-scratch sweeps.
    pub fn advance_to(&mut self, eco: &Ecosystem, date: SimDate) -> AdvanceStats {
        let _span = obsv::span!("ecosystem.advance");
        self.dirty.clear();
        if let Some(prev) = self.date {
            assert!(prev <= date, "incremental worlds only move forward");
            if prev == date {
                return AdvanceStats {
                    unchanged: self.installed_count,
                    ..AdvanceStats::default()
                };
            }
        }
        let first = self.infra.is_none();
        let prev = self.date;
        if first {
            self.infra = Some(eco.install_infra(&self.world, date.at_midnight(), self.detail));
            self.installed = vec![None; eco.population.domains.len()];
            self.installed_count = 0;
        } else {
            let prev = prev.expect("infra exists, so a date was set");
            self.world
                .shift_cert_validity(Duration::days(date.days_since(prev)));
            self.reconcile_shared_targets(eco, date);
        }
        assert_eq!(
            self.installed.len(),
            eco.population.domains.len(),
            "an IncrementalWorld is tied to one Ecosystem"
        );

        // Candidates: new adopters plus scheduled change events. Sorted
        // ascending because shared A records are first-writer-wins and
        // the install-order contract is population-index order.
        let mut candidates: Vec<u32> = match prev {
            None => eco.population.index.adopters_through(date).to_vec(),
            Some(p) => {
                let mut c = eco.population.index.adopters_between(p, date).to_vec();
                c.extend(eco.timeline().events_between(p, date));
                c
            }
        };
        candidates.sort_unstable();
        candidates.dedup();

        let ctx = eco.fingerprint_context(date);
        let infra = self.infra.as_mut().expect("installed above");
        let mut stats = AdvanceStats::default();
        for &i in &candidates {
            let index = i as usize;
            let spec = &eco.population.domains[index];
            let want = eco.fingerprint_at(spec, &ctx);
            let have = self.installed[index];
            if have == want {
                continue;
            }
            if have.is_some() {
                let prev_date = prev.expect("a deployed domain implies a prior advance");
                uninstall_domain(&self.world, infra, eco, spec, index, prev_date);
            }
            match want {
                Some(_) => {
                    eco.install_domain(&self.world, infra, spec, index, date, self.detail);
                    if have.is_some() {
                        stats.reinstalled += 1;
                    } else {
                        stats.installed += 1;
                        self.installed_count += 1;
                    }
                    self.dirty.push(i);
                }
                None => debug_assert!(have.is_none(), "adoption is monotone"),
            }
            self.installed[index] = want;
        }
        stats.unchanged = self.installed_count - stats.installed - stats.reinstalled;
        self.world.flush_dns_cache();
        self.date = Some(date);
        obsv::counter!("ecosystem_installs_total", stats.installed as u64);
        obsv::counter!("ecosystem_reinstalls_total", stats.reinstalled as u64);
        obsv::counter!("ecosystem_unchanged_total", stats.unchanged as u64);
        // Deployed-population watermark for the flight recorder: lands
        // in the next window the driver rolls, so a recorded run shows
        // adoption growth over sim time. Free when recording is off.
        obsv::timeseries::gauge("ecosystem.installed_domains", self.installed_count as u64);
        stats
    }

    /// Rewrites the A record of each *shared* CNAME target whose desired
    /// value changed. The record's value is defined by the first adopted
    /// customer in population order (the one whose install wrote it): a
    /// TCP-layer fault on that customer points the whole target at the
    /// dead edge. New adoptions below the old installer's index — or the
    /// installer's fault windows — can flip it between snapshots.
    fn reconcile_shared_targets(&mut self, eco: &Ecosystem, date: SimDate) {
        let infra = self.infra.as_mut().expect("reconcile runs after install");
        for provider in &eco.policy_providers {
            let CnameStyle::Shared(target) = provider.cname_style else {
                continue;
            };
            let target: DomainName = target.parse().expect("static name");
            if !infra.shared_a_done.contains(&target) {
                continue; // no customer adopted yet; natural install handles it
            }
            let desired = if eco.timeline().shared_dead_at(provider.key, date) {
                infra.dead_ip
            } else {
                infra.policy_ip[provider.key]
            };
            let apex = target
                .effective_sld()
                .expect("provider targets have an eSLD");
            self.world.with_zone(&apex, |z| {
                let current =
                    z.get(&target, RecordType::A)
                        .into_iter()
                        .find_map(|r| match r.data {
                            RecordData::A(ip) => Some(ip),
                            _ => None,
                        });
                if current != Some(desired) {
                    z.remove(&target, RecordType::A);
                    z.add_rr(&target, TTL, RecordData::A(desired));
                }
            });
        }
    }
}

/// Reverses [`Ecosystem::install_domain`] for a domain deployed with
/// `prev_date` semantics.
fn uninstall_domain(
    world: &World,
    infra: &mut Infra,
    eco: &Ecosystem,
    spec: &DomainSpec,
    index: usize,
    prev_date: SimDate,
) {
    // The domain's own zone: MX/NS/TXT/TLSRPT records, self-hosted A
    // records, and the policy host's A or CNAME record.
    world.remove_zone(&spec.name);
    // The four deterministic endpoint slots (no-ops when never deployed,
    // e.g. DNS-only detail or provider-hosted domains).
    world.remove_web_endpoint(Ecosystem::domain_ip(index, 0));
    for slot in 1..4u8 {
        world.remove_mx_endpoint(Ecosystem::domain_ip(index, slot));
    }
    // The legacy-MX zone of stale-migration domains is owned outright
    // (its name embeds this domain's leftmost label and TLD).
    if spec
        .faults
        .inconsistency
        .as_ref()
        .is_some_and(|i| i.stale_migration.is_some())
    {
        if let Some(apex) = eco.legacy_mx_of(spec).effective_sld() {
            world.remove_zone(&apex);
        }
    }
    // Per-customer MX hostnames this domain installed into provider
    // zones. The `shared_a_done` invariant makes membership the exact
    // "mine to remove" oracle: infrastructure-owned shared hostnames are
    // never in the registry.
    for host in eco.effective_mx_hosts(spec, prev_date) {
        if host.is_subdomain_of(&spec.name) {
            continue; // lived in the domain's own zone, already gone
        }
        remove_registered_a(world, infra, &host);
    }
    // The policy side: delegation targets and per-customer state on
    // shared provider endpoints.
    let policy_host = spec.name.prefixed("mta-sts").expect("static label");
    match &spec.policy {
        // Own zone + slot endpoint (removed above); the Porkbun parking
        // host serves its default chain, nothing per-customer.
        PolicyHosting::SelfManaged | PolicyHosting::Porkbun => {}
        PolicyHosting::Mxascen => {
            let ip = infra.mxascen_web[spec.name.to_string().len() % 2];
            remove_customer_state(world, ip, &policy_host);
        }
        PolicyHosting::Provider { key } => {
            let provider = eco.policy_provider(key).expect("known provider");
            // Shared targets are communal — other customers still resolve
            // through them; reconciliation owns their A record instead.
            if !matches!(provider.cname_style, CnameStyle::Shared(_)) {
                remove_registered_a(world, infra, &provider.cname_target(&spec.name));
            }
            remove_customer_state(world, infra.policy_ip[*key], &policy_host);
        }
        PolicyHosting::MiscProvider { idx } => {
            let target: DomainName = format!("{}.polhost{idx}.net", spec.name.labels().join("-"))
                .parse()
                .expect("valid");
            remove_registered_a(world, infra, &target);
            remove_customer_state(world, infra.policy_ip[&format!("misc{idx}")], &policy_host);
        }
        PolicyHosting::SmallProvider { idx } => {
            let target: DomainName = format!("{}.smallpol{idx}.net", spec.name.labels().join("-"))
                .parse()
                .expect("valid");
            remove_registered_a(world, infra, &target);
            remove_customer_state(world, infra.policy_ip[&format!("small{idx}")], &policy_host);
        }
    }
}

/// Removes a per-customer A record iff this registry owns it.
fn remove_registered_a(world: &World, infra: &mut Infra, name: &DomainName) {
    if infra.shared_a_done.remove(name) {
        let apex = name.effective_sld().expect("registered names have an eSLD");
        world.with_zone(&apex, |z| {
            z.remove(name, RecordType::A);
        });
    }
}

/// Evicts one customer's certificate chain and documents from a shared
/// web endpoint (no-op when the endpoint does not exist, e.g. DNS-only).
fn remove_customer_state(world: &World, ip: std::net::Ipv4Addr, policy_host: &DomainName) {
    world.with_web(ip, |ep| {
        ep.remove_chain(policy_host);
        ep.remove_documents_for(policy_host);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcosystemConfig;
    use std::fmt::Write as _;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::paper(42, 0.02))
    }

    /// Every observation a scan makes of every adopted domain, as one
    /// comparable string: record + TLSRPT TXT sets, MX host sets, the
    /// policy fetch outcome with its CNAME chain, and each MX's STARTTLS
    /// certificate verdict.
    fn observe(world: &World, eco: &Ecosystem, date: SimDate) -> String {
        let now = date.at_midnight();
        let mut out = String::new();
        for spec in eco.domains_at(date) {
            let _ = writeln!(
                out,
                "{} txt={:?} tlsrpt={:?}",
                spec.name,
                world.mta_sts_txts(&spec.name, now),
                world.tlsrpt_txts(&spec.name, now),
            );
            let fetch = world.fetch_policy(&spec.name, now);
            let _ = writeln!(
                out,
                "  fetch={:?} cnames={:?}",
                fetch.result, fetch.cname_chain
            );
            if let Ok(hosts) = world.mx_records(&spec.name, now) {
                for host in hosts {
                    let probe = world.probe_mx(&host, now);
                    let _ = writeln!(
                        out,
                        "  mx {host} verdict={:?}",
                        probe.cert_verdict(&host, now, world.pki.trust_store())
                    );
                }
            }
        }
        out
    }

    #[test]
    fn advancing_matches_from_scratch_at_every_checkpoint() {
        let eco = eco();
        let mut iw = IncrementalWorld::new(SnapshotDetail::Full);
        // Deliberately includes both incident windows (Jan 23 inside
        // lucidgrow, Jun 8 inside the June-8 outage) and the study end.
        for date in [
            SimDate::ymd(2023, 11, 7),
            SimDate::ymd(2024, 1, 23),
            SimDate::ymd(2024, 3, 7),
            SimDate::ymd(2024, 6, 8),
            SimDate::ymd(2024, 9, 29),
        ] {
            iw.advance_to(&eco, date);
            let scratch = eco.world_at(date, SnapshotDetail::Full);
            assert_eq!(
                observe(iw.world(), &eco, date),
                observe(&scratch, &eco, date),
                "divergence at {date}"
            );
        }
    }

    #[test]
    fn weekly_advance_touches_only_a_sliver() {
        let eco = eco();
        let mut iw = IncrementalWorld::new(SnapshotDetail::Full);
        let full = iw.advance_to(&eco, SimDate::ymd(2024, 3, 1));
        assert_eq!(full.reinstalled, 0, "first advance installs fresh");
        assert_eq!(full.unchanged, 0);
        let week = iw.advance_to(&eco, SimDate::ymd(2024, 3, 8));
        let adopted = eco.domains_at(SimDate::ymd(2024, 3, 8)).count();
        assert_eq!(week.installed + week.reinstalled + week.unchanged, adopted);
        assert!(
            week.dirty() * 5 < week.unchanged,
            "one calm week should be >80% unchanged: {week:?}"
        );
    }

    #[test]
    fn same_date_advance_is_a_noop() {
        let eco = eco();
        let date = SimDate::ymd(2024, 4, 1);
        let mut iw = IncrementalWorld::new(SnapshotDetail::Full);
        let first = iw.advance_to(&eco, date);
        let before = observe(iw.world(), &eco, date);
        let again = iw.advance_to(&eco, date);
        assert_eq!(again.dirty(), 0);
        assert_eq!(again.unchanged, first.installed);
        assert_eq!(observe(iw.world(), &eco, date), before);
    }

    #[test]
    fn installed_fingerprints_track_the_current_date() {
        let eco = eco();
        let date = SimDate::ymd(2024, 5, 1);
        let mut iw = IncrementalWorld::new(SnapshotDetail::DnsOnly);
        iw.advance_to(&eco, date);
        let ctx = eco.fingerprint_context(date);
        for (index, spec) in eco.population.domains.iter().enumerate() {
            assert_eq!(
                iw.installed_fingerprint(index),
                eco.fingerprint_at(spec, &ctx),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn event_driven_advance_matches_a_full_sweep_every_week() {
        // The O(adopters + changes) candidate walk must leave exactly the
        // state an O(population) fingerprint sweep would: every installed
        // fingerprint equals the scratch-context fingerprint at every
        // weekly date, and the dirty list matches the stats.
        let eco = eco();
        let mut iw = IncrementalWorld::new(SnapshotDetail::DnsOnly);
        for date in eco.config.weekly_snapshots() {
            let stats = iw.advance_to(&eco, date);
            assert_eq!(stats.dirty(), iw.last_dirty().len(), "{date}");
            assert!(iw.last_dirty().windows(2).all(|w| w[0] < w[1]));
            let ctx = eco.fingerprint_context_scratch(date);
            for (index, spec) in eco.population.domains.iter().enumerate() {
                assert_eq!(
                    iw.installed_fingerprint(index),
                    eco.fingerprint_at(spec, &ctx),
                    "{} at {date}",
                    spec.name
                );
            }
            assert_eq!(iw.installed_count(), eco.domains_at(date).count());
        }
    }
}
