//! The provider universe: mail hosting and policy hosting services.
//!
//! Policy-hosting providers are Table 2's eight (plus a long tail);
//! mail providers are the majors the paper names (Google, Outlook, Yahoo,
//! Mail.com, Tutanota) plus the incident-bearing ones (mxrouting.net's
//! certificate problems, lucidgrow.com's unique-MX-per-customer design,
//! and the mxascen.com single-administrator pseudo-provider).

use netbase::DomainName;
use serde::{Deserialize, Serialize};

/// How a policy provider treats customers that opted out but left their
/// CNAME in place (Table 2's right-hand columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptOutBehavior {
    /// The provider's policy host name starts returning NXDOMAIN.
    pub returns_nxdomain: bool,
    /// The provider keeps re-issuing (valid) certificates for the name.
    pub reissues_cert: bool,
    /// What happens to the policy document.
    pub policy_update: PolicyUpdateOnOptOut,
}

/// Table 2's "Policy File Update" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyUpdateOnOptOut {
    /// Document left exactly as it was (stale).
    Unchanged,
    /// Replaced with an empty file (parse failure ⇒ behaves like `none`).
    EmptiedFile,
    /// Mode rewritten to `none`.
    ModeToNone,
}

/// A policy-hosting provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyProvider {
    /// Short identifier (stable across runs).
    pub key: &'static str,
    /// The provider's base domain, e.g. `dmarcinput.com`.
    pub base: &'static str,
    /// Paper customer count at the latest snapshot (Table 2).
    pub paper_customers: u64,
    /// Whether the provider also offers email hosting (Table 2: Tutanota
    /// only).
    pub email_hosting: bool,
    /// Opt-out behaviour.
    pub opt_out: OptOutBehavior,
    /// CNAME target style (how the per-customer name is derived).
    pub cname_style: CnameStyle,
}

/// The CNAME-target naming styles observed in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CnameStyle {
    /// One shared target for every customer: `_mta-sts.tutanota.de`.
    Shared(&'static str),
    /// `a-com.<suffix>`: dashes join the customer labels.
    DashJoined(&'static str),
    /// `a.com.<suffix>`: customer domain kept dotted.
    Dotted(&'static str),
    /// `a_com__mta_sts.<suffix>`: underscores (EasyDMARC).
    UnderscoreJoined(&'static str),
    /// `_mta-sts.a.com.<suffix>` (OnDMARC).
    PrefixedDotted(&'static str),
}

impl PolicyProvider {
    /// The CNAME target for a customer domain.
    pub fn cname_target(&self, customer: &DomainName) -> DomainName {
        let name = match self.cname_style {
            CnameStyle::Shared(target) => target.to_string(),
            CnameStyle::DashJoined(suffix) => {
                format!("{}.{}", customer.labels().join("-"), suffix)
            }
            CnameStyle::Dotted(suffix) => format!("{customer}.{suffix}"),
            CnameStyle::UnderscoreJoined(suffix) => {
                format!("{}__mta_sts.{}", customer.labels().join("_"), suffix)
            }
            CnameStyle::PrefixedDotted(suffix) => format!("_mta-sts.{customer}.{suffix}"),
        };
        name.parse().expect("provider patterns produce valid names")
    }

    /// The provider's base domain as a name.
    pub fn base_domain(&self) -> DomainName {
        self.base.parse().expect("static name")
    }
}

/// Table 2, verbatim.
pub fn policy_providers() -> Vec<PolicyProvider> {
    vec![
        PolicyProvider {
            key: "tutanota",
            base: "tutanota.de",
            paper_customers: 7_614,
            email_hosting: true,
            opt_out: OptOutBehavior {
                returns_nxdomain: false,
                reissues_cert: false,
                policy_update: PolicyUpdateOnOptOut::Unchanged,
            },
            cname_style: CnameStyle::Shared("_mta-sts.tutanota.de"),
        },
        PolicyProvider {
            key: "dmarcreport",
            base: "dmarcinput.com",
            paper_customers: 7_293,
            email_hosting: false,
            opt_out: OptOutBehavior {
                returns_nxdomain: false,
                reissues_cert: true,
                policy_update: PolicyUpdateOnOptOut::EmptiedFile,
            },
            cname_style: CnameStyle::DashJoined("mta-sts.dmarcinput.com"),
        },
        PolicyProvider {
            key: "powerdmarc",
            base: "mta-sts.tech",
            paper_customers: 3_753,
            email_hosting: false,
            opt_out: OptOutBehavior {
                returns_nxdomain: true,
                reissues_cert: false,
                policy_update: PolicyUpdateOnOptOut::ModeToNone,
            },
            cname_style: CnameStyle::DashJoined("_mta.mta-sts.tech"),
        },
        PolicyProvider {
            key: "easydmarc",
            base: "easydmarc.pro",
            paper_customers: 2_222,
            email_hosting: false,
            opt_out: OptOutBehavior {
                returns_nxdomain: false,
                reissues_cert: true,
                policy_update: PolicyUpdateOnOptOut::Unchanged,
            },
            cname_style: CnameStyle::UnderscoreJoined("easydmarc.pro"),
        },
        PolicyProvider {
            key: "mailhardener",
            base: "mailhardener.com",
            paper_customers: 1_558,
            email_hosting: false,
            opt_out: OptOutBehavior {
                returns_nxdomain: true,
                reissues_cert: false,
                policy_update: PolicyUpdateOnOptOut::ModeToNone,
            },
            cname_style: CnameStyle::Dotted("_mta-sts.mailhardener.com"),
        },
        PolicyProvider {
            key: "uriports",
            base: "uriports.com",
            paper_customers: 1_100,
            email_hosting: false,
            opt_out: OptOutBehavior {
                returns_nxdomain: true,
                reissues_cert: false,
                policy_update: PolicyUpdateOnOptOut::Unchanged,
            },
            cname_style: CnameStyle::DashJoined("_mta-sts.uriports.com"),
        },
        PolicyProvider {
            key: "sendmarc",
            base: "sdmarc.net",
            paper_customers: 805,
            email_hosting: false,
            opt_out: OptOutBehavior {
                returns_nxdomain: false,
                reissues_cert: true,
                policy_update: PolicyUpdateOnOptOut::Unchanged,
            },
            cname_style: CnameStyle::Dotted("_mta-sts.sdmarc.net"),
        },
        PolicyProvider {
            key: "ondmarc",
            base: "ondmarc.com",
            paper_customers: 451,
            email_hosting: false,
            opt_out: OptOutBehavior {
                returns_nxdomain: false,
                reissues_cert: true,
                policy_update: PolicyUpdateOnOptOut::Unchanged,
            },
            cname_style: CnameStyle::PrefixedDotted("_mta-sts.smart.ondmarc.com"),
        },
    ]
}

/// How a mail provider names the MX host(s) serving a customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MxStyle {
    /// One shared MX hostname for all customers (Google-style).
    Shared(&'static str),
    /// A unique hostname per customer, all resolving to shared
    /// infrastructure (Outlook-style `a-com.mail.protection.outlook.com`).
    PerCustomerSharedIp(&'static str),
    /// A unique hostname per customer with the provider's own eSLD
    /// (lucidgrow-style).
    PerCustomer(&'static str),
}

/// A mail (MX) hosting provider.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MailProvider {
    /// Short identifier.
    pub key: &'static str,
    /// Base domain.
    pub base: &'static str,
    /// MX naming style.
    pub mx_style: MxStyle,
    /// Relative weight when assigning customers (derived from the paper's
    /// provider concentration; Google ≈ 5.8% of all domains).
    pub weight: f64,
    /// Whether this provider doubles as a policy host (Tutanota).
    pub hosts_policies_too: bool,
}

impl MailProvider {
    /// The MX hostname(s) for a customer.
    pub fn mx_hosts(&self, customer: &DomainName) -> Vec<DomainName> {
        match self.mx_style {
            MxStyle::Shared(host) => vec![host.parse().expect("static name")],
            MxStyle::PerCustomerSharedIp(suffix) | MxStyle::PerCustomer(suffix) => {
                let joined = customer.labels().join("-");
                vec![format!("{joined}.{suffix}")
                    .parse()
                    .expect("derived names are valid")]
            }
        }
    }
}

/// The mail-provider universe.
pub fn mail_providers() -> Vec<MailProvider> {
    vec![
        MailProvider {
            key: "google",
            base: "google.com",
            mx_style: MxStyle::Shared("aspmx.l.google.com"),
            weight: 40.0,
            hosts_policies_too: false,
        },
        MailProvider {
            key: "outlook",
            base: "outlook.com",
            mx_style: MxStyle::PerCustomerSharedIp("mail.protection.outlook.com"),
            weight: 30.0,
            hosts_policies_too: false,
        },
        MailProvider {
            key: "yahoo",
            base: "yahoodns.net",
            mx_style: MxStyle::Shared("mx-biz.mail.am0.yahoodns.net"),
            weight: 6.0,
            hosts_policies_too: false,
        },
        MailProvider {
            key: "mailcom",
            base: "mail.com",
            mx_style: MxStyle::Shared("mx00.mail.com"),
            weight: 4.0,
            hosts_policies_too: false,
        },
        MailProvider {
            key: "tutanota",
            base: "tutanota.de",
            mx_style: MxStyle::Shared("mail.tutanota.de"),
            // Assigned explicitly: Tutanota mail customers are its policy
            // customers (bundled service).
            weight: 0.0,
            hosts_policies_too: true,
        },
        MailProvider {
            key: "mxrouting",
            base: "mxrouting.net",
            mx_style: MxStyle::PerCustomerSharedIp("mxrouting.net"),
            weight: 3.5,
            hosts_policies_too: false,
        },
        MailProvider {
            key: "lucidgrow",
            base: "lucidgrow.com",
            mx_style: MxStyle::PerCustomer("mx.lucidgrow.com"),
            // Assigned explicitly: lucidgrow customers delegate policies to
            // DMARCReport (the §4.4 incident population).
            weight: 0.0,
            hosts_policies_too: false,
        },
        MailProvider {
            // Registrar mail forwarding used by parked (Porkbun-style)
            // registrations; assigned explicitly.
            key: "parkmail",
            base: "parkmail.net",
            mx_style: MxStyle::Shared("fwd.parkmail.net"),
            weight: 0.0,
            hosts_policies_too: false,
        },
        MailProvider {
            key: "generic-host",
            base: "mailgrid.net",
            mx_style: MxStyle::Shared("in.mailgrid.net"),
            weight: 10.0,
            hosts_policies_too: false,
        },
    ]
}

/// The single-administrator pseudo-provider (§4.3.1's mxascen example):
/// thousands of domains, one operator, shared MX and shared policy IPs —
/// self-managed despite its apparent popularity.
pub const MXASCEN_MX: &str = "mx.l.mxascen.com";
/// Paper count of mxascen-style domains.
pub const MXASCEN_PAPER_COUNT: u64 = 4_722;

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn table2_roster() {
        let providers = policy_providers();
        assert_eq!(providers.len(), 8);
        let total: u64 = providers.iter().map(|p| p.paper_customers).sum();
        assert_eq!(total, 24_796);
        // Exactly three NXDOMAIN providers, four cert re-issuers.
        assert_eq!(
            providers
                .iter()
                .filter(|p| p.opt_out.returns_nxdomain)
                .count(),
            3
        );
        assert_eq!(
            providers.iter().filter(|p| p.opt_out.reissues_cert).count(),
            4
        );
        // Only Tutanota offers email hosting.
        assert_eq!(
            providers
                .iter()
                .filter(|p| p.email_hosting)
                .map(|p| p.key)
                .collect::<Vec<_>>(),
            vec!["tutanota"]
        );
    }

    #[test]
    fn cname_styles_match_table2() {
        let providers = policy_providers();
        let customer = n("a.com");
        let targets: Vec<String> = providers
            .iter()
            .map(|p| p.cname_target(&customer).to_string())
            .collect();
        assert_eq!(
            targets,
            vec![
                "_mta-sts.tutanota.de",
                "a-com.mta-sts.dmarcinput.com",
                "a-com._mta.mta-sts.tech",
                "a_com__mta_sts.easydmarc.pro",
                "a.com._mta-sts.mailhardener.com",
                "a-com._mta-sts.uriports.com",
                "a.com._mta-sts.sdmarc.net",
                "_mta-sts.a.com._mta-sts.smart.ondmarc.com",
            ]
        );
    }

    #[test]
    fn mail_provider_mx_naming() {
        let providers = mail_providers();
        let customer = n("shop.example-co.com");
        for p in &providers {
            let hosts = p.mx_hosts(&customer);
            assert!(!hosts.is_empty());
            match p.mx_style {
                MxStyle::Shared(h) => assert_eq!(hosts[0], n(h)),
                MxStyle::PerCustomerSharedIp(_) | MxStyle::PerCustomer(_) => {
                    assert!(hosts[0].to_string().starts_with("shop-example-co-com."));
                }
            }
        }
    }

    #[test]
    fn lucidgrow_unique_mx_per_customer() {
        let lucid = mail_providers()
            .into_iter()
            .find(|p| p.key == "lucidgrow")
            .unwrap();
        let a = lucid.mx_hosts(&n("alpha.com"));
        let b = lucid.mx_hosts(&n("beta.com"));
        assert_ne!(a, b);
        assert!(a[0].is_subdomain_of(&n("mx.lucidgrow.com")));
    }
}
