//! Per-TLD statistics: adoption curves and analytic denominators.
//!
//! The paper covers four TLDs (Table 1). The non-adopting majority (87M
//! domains) is never materialized; instead the per-TLD "domains with MX
//! records" denominators are analytic functions of time, and MTA-STS
//! adoption follows piecewise-linear anchor curves read off Figure 2.

use netbase::SimDate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four TLDs of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TldId {
    /// `.com` (Verisign zone files).
    Com,
    /// `.net` (Verisign).
    Net,
    /// `.org` (Public Interest Registry).
    Org,
    /// `.se` (Internetstiftelsen).
    Se,
}

/// All TLDs in presentation order.
pub const ALL_TLDS: [TldId; 4] = [TldId::Com, TldId::Net, TldId::Org, TldId::Se];

impl TldId {
    /// The label, e.g. `com`.
    pub fn label(self) -> &'static str {
        match self {
            TldId::Com => "com",
            TldId::Net => "net",
            TldId::Org => "org",
            TldId::Se => "se",
        }
    }
}

impl fmt::Display for TldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}", self.label())
    }
}

/// Linear interpolation between dated anchors; clamped outside the range.
fn interp(anchors: &[(SimDate, f64)], date: SimDate) -> f64 {
    debug_assert!(anchors.windows(2).all(|w| w[0].0 < w[1].0));
    let first = anchors.first().expect("anchors non-empty");
    if date <= first.0 {
        return first.1;
    }
    let last = anchors.last().expect("anchors non-empty");
    if date >= last.0 {
        return last.1;
    }
    for w in anchors.windows(2) {
        let (d0, v0) = w[0];
        let (d1, v1) = w[1];
        if date >= d0 && date <= d1 {
            let span = d1.days_since(d0) as f64;
            let t = date.days_since(d0) as f64 / span;
            return v0 + t * (v1 - v0);
        }
    }
    last.1
}

/// Analytic count of domains with MX records in a TLD at `date`.
///
/// Endpoints: Table 1's counts at the end of the window; starting values
/// back-computed from the paper's initial adoption percentages
/// (e.g. 12,148 `.com` adopters = 0.02% ⇒ ≈60.7M MX domains in 2021-10).
pub fn mx_domain_count(tld: TldId, date: SimDate) -> u64 {
    let (start_count, end_count) = match tld {
        TldId::Com => (60_700_000.0, 73_939_004.0),
        TldId::Net => (6_100_000.0, 6_248_969.0),
        TldId::Org => (6_400_000.0, 5_781_423.0),
        TldId::Se => (800_000.0, 822_449.0),
    };
    let anchors = [
        (SimDate::ymd(2021, 9, 9), start_count),
        (SimDate::ymd(2024, 9, 29), end_count),
    ];
    interp(&anchors, date) as u64
}

/// The MTA-STS adoption curve: number of domains in `tld` with an MTA-STS
/// record at `date` (unscaled paper counts). Anchor values are read off
/// Figure 2 / Table 1; the Jan-2-2024 `.org` organisational spike (+461
/// domains) is modelled separately in the spec generator, so the `.org`
/// curve here is the smooth baseline.
pub fn adoption_count(tld: TldId, date: SimDate) -> u64 {
    let anchors: &[(SimDate, f64)] = match tld {
        TldId::Com => &[
            (SimDate::ymd(2021, 9, 9), 11_500.0),
            (SimDate::ymd(2021, 10, 15), 12_148.0),
            (SimDate::ymd(2022, 9, 1), 18_500.0),
            (SimDate::ymd(2023, 9, 1), 30_500.0),
            (SimDate::ymd(2024, 3, 1), 41_000.0),
            // Smooth organic tail; the Porkbun registration wave (7,237
            // domains from August 2024, Figure 4 note) is generated as a
            // separate cohort on top, closing the gap to Table 1's 53,800.
            (SimDate::ymd(2024, 9, 29), 46_563.0),
        ],
        TldId::Net => &[
            (SimDate::ymd(2021, 9, 9), 1_450.0),
            (SimDate::ymd(2021, 10, 15), 1_530.0),
            (SimDate::ymd(2022, 9, 1), 2_300.0),
            (SimDate::ymd(2023, 9, 1), 3_700.0),
            (SimDate::ymd(2024, 9, 29), 6_183.0),
        ],
        TldId::Org => &[
            (SimDate::ymd(2021, 9, 9), 1_830.0),
            (SimDate::ymd(2021, 10, 15), 1_916.0),
            (SimDate::ymd(2022, 9, 1), 2_900.0),
            (SimDate::ymd(2023, 9, 1), 4_500.0),
            // The +461 spike is injected by the generator on 2024-01-02;
            // this smooth curve carries the remainder.
            (SimDate::ymd(2024, 9, 29), 6_894.0),
        ],
        TldId::Se => &[
            (SimDate::ymd(2021, 9, 9), 170.0),
            (SimDate::ymd(2021, 10, 15), 185.0),
            (SimDate::ymd(2022, 9, 1), 300.0),
            (SimDate::ymd(2023, 9, 1), 480.0),
            (SimDate::ymd(2024, 9, 29), 692.0),
        ],
    };
    interp(anchors, date) as u64
}

/// Final (end-of-window) adoption count per TLD, *excluding* the `.org`
/// organizational spike (which the generator adds on top).
pub fn final_adoption(tld: TldId) -> u64 {
    adoption_count(tld, SimDate::ymd(2024, 9, 29))
}

/// TLSRPT adoption curve (Appendix B, Figure 12): domains with a TLSRPT
/// record per TLD. Tracks slightly below MTA-STS adoption but applies to a
/// broader set (many TLSRPT domains lack MTA-STS). The generator uses
/// this jointly with per-domain draws.
pub fn tlsrpt_count(tld: TldId, date: SimDate) -> u64 {
    let anchors: &[(SimDate, f64)] = match tld {
        TldId::Com => &[
            (SimDate::ymd(2021, 9, 9), 11_000.0),
            (SimDate::ymd(2021, 10, 15), 11_531.0),
            (SimDate::ymd(2023, 9, 1), 30_000.0),
            (SimDate::ymd(2024, 9, 29), 52_641.0),
        ],
        TldId::Net => &[
            (SimDate::ymd(2021, 9, 9), 1_400.0),
            (SimDate::ymd(2023, 9, 1), 3_200.0),
            (SimDate::ymd(2024, 6, 1), 4_400.0),
            // 1,411 .net domains added TLSRPT Jun-Aug '24 (Fig 12 note).
            (SimDate::ymd(2024, 8, 15), 5_900.0),
            (SimDate::ymd(2024, 9, 29), 6_050.0),
        ],
        TldId::Org => &[
            (SimDate::ymd(2021, 9, 9), 1_450.0),
            (SimDate::ymd(2021, 10, 15), 1_527.0),
            (SimDate::ymd(2023, 9, 1), 4_200.0),
            (SimDate::ymd(2024, 9, 29), 7_192.0),
        ],
        TldId::Se => &[
            (SimDate::ymd(2021, 9, 9), 260.0),
            // 82 .se domains revoked TLSRPT around Dec 21, 2021.
            (SimDate::ymd(2021, 12, 20), 290.0),
            (SimDate::ymd(2021, 12, 22), 208.0),
            (SimDate::ymd(2023, 9, 1), 420.0),
            (SimDate::ymd(2024, 9, 29), 660.0),
        ],
    };
    interp(anchors, date) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(TldId::Com.label(), "com");
        assert_eq!(TldId::Se.to_string(), ".se");
    }

    #[test]
    fn table1_endpoints() {
        let end = SimDate::ymd(2024, 9, 29);
        assert_eq!(mx_domain_count(TldId::Com, end), 73_939_004);
        assert_eq!(mx_domain_count(TldId::Net, end), 6_248_969);
        assert_eq!(mx_domain_count(TldId::Org, end), 5_781_423);
        assert_eq!(mx_domain_count(TldId::Se, end), 822_449);
        // Smooth .com curve + the 7,237-domain Porkbun cohort = 53,800.
        assert_eq!(final_adoption(TldId::Com) + 7_237, 53_800);
        assert_eq!(final_adoption(TldId::Net), 6_183);
        assert_eq!(final_adoption(TldId::Se), 692);
        // .org smooth curve + 461 spike = 7,355 (Table 1).
        assert_eq!(final_adoption(TldId::Org) + 461, 7_355);
    }

    #[test]
    fn adoption_is_monotone_per_tld() {
        for tld in ALL_TLDS {
            let mut prev = 0;
            let mut d = SimDate::ymd(2021, 9, 9);
            while d <= SimDate::ymd(2024, 9, 29) {
                let c = adoption_count(tld, d);
                assert!(c >= prev, "{tld} not monotone at {d}");
                prev = c;
                d = d.add_days(7);
            }
        }
    }

    #[test]
    fn adoption_grows_3_to_4x() {
        for tld in ALL_TLDS {
            let start = adoption_count(tld, SimDate::ymd(2021, 10, 15)) as f64;
            let mut end = final_adoption(tld) as f64;
            if tld == TldId::Com {
                end += 7_237.0; // the Porkbun cohort rides on top
            }
            let ratio = end / start;
            assert!((3.0..=4.7).contains(&ratio), "{tld}: {ratio}");
        }
    }

    #[test]
    fn interp_clamps_and_interpolates() {
        let anchors = [
            (SimDate::ymd(2022, 1, 1), 0.0),
            (SimDate::ymd(2022, 1, 11), 100.0),
        ];
        assert_eq!(interp(&anchors, SimDate::ymd(2021, 6, 1)), 0.0);
        assert_eq!(interp(&anchors, SimDate::ymd(2023, 1, 1)), 100.0);
        assert_eq!(interp(&anchors, SimDate::ymd(2022, 1, 6)), 50.0);
    }

    #[test]
    fn se_tlsrpt_revocation_dip() {
        let before = tlsrpt_count(TldId::Se, SimDate::ymd(2021, 12, 20));
        let after = tlsrpt_count(TldId::Se, SimDate::ymd(2021, 12, 22));
        assert!(before as i64 - after as i64 >= 80, "{before} -> {after}");
    }
}
