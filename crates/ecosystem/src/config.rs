//! Generator configuration and the measurement calendar.

use netbase::SimDate;
use serde::{Deserialize, Serialize};

/// Generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcosystemConfig {
    /// Root seed; every derived quantity flows from it.
    pub seed: u64,
    /// Population scale factor. 1.0 reproduces the paper's absolute
    /// counts (~68k MTA-STS domains at the end); tests use small values.
    pub scale: f64,
    /// First day of the DNS measurement window (paper: 2021-09-09).
    pub start: SimDate,
    /// Last day (paper: 2024-09-29).
    pub end: SimDate,
}

impl EcosystemConfig {
    /// The paper's configuration at a given scale.
    pub fn paper(seed: u64, scale: f64) -> EcosystemConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        EcosystemConfig {
            seed,
            scale,
            start: SimDate::ymd(2021, 9, 9),
            end: SimDate::ymd(2024, 9, 29),
        }
    }

    /// Scales an absolute paper count, rounding to nearest, min 0.
    pub fn scaled(&self, paper_count: u64) -> u64 {
        (paper_count as f64 * self.scale).round() as u64
    }

    /// Scales a count but keeps at least 1 when the paper count is
    /// nonzero (named incidents must survive scaling).
    pub fn scaled_at_least_one(&self, paper_count: u64) -> u64 {
        if paper_count == 0 {
            0
        } else {
            self.scaled(paper_count).max(1)
        }
    }

    /// A residual-tracking allocator for splitting one scaled total
    /// across categories without rounding drift.
    pub fn allocator(&self) -> ScaledAllocator {
        ScaledAllocator::new(self.scale)
    }

    /// The weekly DNS snapshot dates (§3.1: weekly records over the whole
    /// window).
    pub fn weekly_snapshots(&self) -> Vec<SimDate> {
        self.start.iter_to(self.end, 7).collect()
    }

    /// The monthly full-component scan dates (§4.1: Nov 7, 2023 through
    /// Sep 29, 2024). One scan is scheduled on 2024-01-23 so the
    /// lucidgrow incident (§4.4) is observed exactly as the paper saw it.
    pub fn full_scan_dates(&self) -> Vec<SimDate> {
        let mut dates = vec![
            SimDate::ymd(2023, 11, 7),
            SimDate::ymd(2023, 12, 7),
            SimDate::ymd(2024, 1, 23),
            SimDate::ymd(2024, 2, 7),
            SimDate::ymd(2024, 3, 7),
            SimDate::ymd(2024, 4, 7),
            SimDate::ymd(2024, 5, 7),
            SimDate::ymd(2024, 6, 8),
            SimDate::ymd(2024, 7, 7),
            SimDate::ymd(2024, 8, 7),
            SimDate::ymd(2024, 9, 29),
        ];
        dates.retain(|d| *d <= self.end);
        dates
    }
}

impl Default for EcosystemConfig {
    fn default() -> EcosystemConfig {
        EcosystemConfig::paper(0xEC0, 1.0)
    }
}

/// Residual-tracking scaled allocator.
///
/// Independent `scaled()` calls round each category to nearest, so a
/// sequence of categories can drift from the scaled total by up to one
/// domain *per category* at odd scales. The allocator instead tracks the
/// exact cumulative target and grants `round(cum_exact) - granted_so_far`
/// each call, so over any call sequence the running sum equals
/// `round(scale × paper_sum)` — categories always sum exactly to the
/// population they were carved from.
#[derive(Debug, Clone)]
pub struct ScaledAllocator {
    scale: f64,
    exact: f64,
    granted: u64,
}

impl ScaledAllocator {
    /// A fresh allocator at `scale`.
    pub fn new(scale: f64) -> ScaledAllocator {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        ScaledAllocator {
            scale,
            exact: 0.0,
            granted: 0,
        }
    }

    /// Grants the next category's scaled share, carrying the fractional
    /// residual forward.
    pub fn take(&mut self, paper_count: u64) -> u64 {
        self.exact += paper_count as f64 * self.scale;
        let target = self.exact.round() as u64;
        let grant = target.saturating_sub(self.granted);
        self.granted += grant;
        grant
    }

    /// [`ScaledAllocator::take`], but never grants zero for a nonzero
    /// paper count (named cohorts must survive scaling). The extra
    /// domain is charged against the running total, so later grants
    /// compensate downward and the sum invariant still holds within the
    /// number of forced floors.
    pub fn take_at_least_one(&mut self, paper_count: u64) -> u64 {
        if paper_count == 0 {
            return 0;
        }
        let grant = self.take(paper_count);
        if grant == 0 {
            self.granted += 1;
            1
        } else {
            grant
        }
    }

    /// Total granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }
}

/// How much of a snapshot to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SnapshotDetail {
    /// Zones only — enough for record-level scans (Figure 2, 3, 12).
    DnsOnly,
    /// Zones plus web and MX endpoints with certificates — full-component
    /// scans (Figures 4-10, Tables 1-2).
    Full,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calendar() {
        let c = EcosystemConfig::paper(1, 1.0);
        let weekly = c.weekly_snapshots();
        assert_eq!(weekly.len(), 160);
        assert_eq!(weekly[0], SimDate::ymd(2021, 9, 9));
        let full = c.full_scan_dates();
        assert_eq!(full.len(), 11);
        assert!(full.contains(&SimDate::ymd(2024, 1, 23)));
        assert!(full.contains(&SimDate::ymd(2024, 6, 8)));
        assert_eq!(*full.last().unwrap(), SimDate::ymd(2024, 9, 29));
    }

    #[test]
    fn scaling() {
        let c = EcosystemConfig::paper(1, 0.1);
        assert_eq!(c.scaled(1000), 100);
        assert_eq!(c.scaled_at_least_one(3), 1);
        assert_eq!(c.scaled_at_least_one(0), 0);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let _ = EcosystemConfig::paper(1, 0.0);
    }

    #[test]
    fn residual_allocator_sums_exactly() {
        // The satellite invariant: however the paper total is split into
        // categories, the grants sum to the scaled total — independent
        // rounding can drift by ±1 per category.
        let categories: &[u64] = &[46_563, 7_237, 6_183, 6_512, 692, 843, 57, 3, 1];
        for scale in [0.05, 0.33, 1.0] {
            let mut alloc = ScaledAllocator::new(scale);
            let granted: u64 = categories.iter().map(|&c| alloc.take(c)).sum();
            let total: u64 = categories.iter().sum();
            assert_eq!(
                granted,
                (total as f64 * scale).round() as u64,
                "scale {scale}"
            );
            assert_eq!(granted, alloc.granted());
        }
    }

    #[test]
    fn allocator_matches_paper_counts_at_full_scale() {
        let mut alloc = ScaledAllocator::new(1.0);
        for c in [53_800u64, 6_183, 6_512, 692] {
            assert_eq!(alloc.take(c), c, "scale 1.0 is the identity");
            assert_eq!(alloc.take_at_least_one(3), 3);
        }
    }

    #[test]
    fn allocator_floors_named_cohorts() {
        let mut alloc = ScaledAllocator::new(0.05);
        assert_eq!(alloc.take_at_least_one(3), 1, "0.15 rounds to 0, floored");
        assert_eq!(alloc.take_at_least_one(0), 0);
    }
}
