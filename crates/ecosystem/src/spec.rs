//! Domain specifications: the deterministic blueprint of the population.
//!
//! [`generate`] turns an [`EcosystemConfig`] into one [`DomainSpec`] per
//! domain that ever publishes an MTA-STS record. Specs are pure data —
//! deployment into a [`simnet::World`] happens in [`crate::deploy`] — so
//! the scanner, the experiments, and the ground-truth assertions in tests
//! all read from the same source.

use crate::calib::{self, InconsistencyKind, MxCertFaultKind, RecordFaultKind};
use crate::config::EcosystemConfig;
use crate::providers::{mail_providers, policy_providers};
use crate::tld::{adoption_count, TldId, ALL_TLDS};
use mtasts::Mode;
use netbase::{DetRng, DomainName, SimDate};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Who runs the domain's inbound MTAs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum MailHosting {
    /// `mx1..mxN.<domain>` on the owner's own infrastructure.
    SelfManaged {
        /// Number of MX hosts (1-3).
        mx_count: u8,
    },
    /// A provider from [`mail_providers`], by key.
    Provider {
        /// Provider key.
        key: &'static str,
    },
    /// The single-administrator mxascen setup (§4.3.1).
    Mxascen,
    /// A small mail host (6-49 customers) invisible to both heuristics.
    SmallProvider {
        /// Index of the small provider.
        idx: u32,
    },
}

/// Who serves the domain's MTA-STS policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum PolicyHosting {
    /// Direct A record to the owner's web server.
    SelfManaged,
    /// Porkbun-registered parked domain: direct A to the registrar's
    /// parking host with its wrong-name certificate (the Figure 4/5 tail
    /// spike).
    Porkbun,
    /// CNAME delegation to a Table-2 provider, by key.
    Provider {
        /// Provider key.
        key: &'static str,
    },
    /// CNAME to a mid-size third-party host beyond Table 2's eight
    /// (≥50 customers, classifiable).
    MiscProvider {
        /// Index of the misc provider.
        idx: u32,
    },
    /// CNAME to a small (6-49 customer) host — unclassifiable.
    SmallProvider {
        /// Index of the small provider.
        idx: u32,
    },
    /// The mxascen shared self-managed policy IPs.
    Mxascen,
}

/// How the policy fails to be served (§4.3.3's ladder), if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyFaultKind {
    /// `mta-sts.<domain>` unresolvable.
    Dns,
    /// Port closed.
    TcpRefused,
    /// Connect timeout.
    TcpTimeout,
    /// Certificate does not cover `mta-sts.<domain>`.
    TlsCnMismatch,
    /// Self-signed certificate.
    TlsSelfSigned,
    /// Expired certificate.
    TlsExpired,
    /// No certificate installed for the SNI (SSL alert).
    TlsNoCert,
    /// Document missing (404).
    Http404,
    /// Server error (500).
    Http500,
    /// Syntactically invalid mx pattern in the document.
    SyntaxBadMx,
    /// Empty document.
    SyntaxEmpty,
}

/// Whether an MX certificate fault covers every MX or only some.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MxFaultScope {
    /// Every MX presents a bad certificate (Figure 7 "all invalid").
    All,
    /// Only the first MX is bad (Figure 7 "partially invalid").
    Partial,
}

/// An injected mx-pattern inconsistency (§4.4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InconsistencySpec {
    /// The mismatch class to manifest.
    pub kind: InconsistencyKind,
    /// For stale complete mismatches: the MX migration date. Before it the
    /// policy matches (the old MX records are live); after it the real MXes
    /// change while the policy stays (Figure 9).
    pub stale_migration: Option<SimDate>,
    /// For 3LD+ mismatches: whether the pattern embeds the stray
    /// `mta-sts` label (597 of 730, §4.4).
    pub stray_label: bool,
}

/// The complete fault profile of one domain.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultProfile {
    /// DNS record syntax fault (§4.3.2).
    pub record: Option<RecordFaultKind>,
    /// Policy retrieval fault (§4.3.3).
    pub policy: Option<PolicyFaultKind>,
    /// MX certificate fault (§4.3.4).
    pub mx_cert: Option<(MxCertFaultKind, MxFaultScope)>,
    /// Member of the 270-domain CN-mismatch-fixed cohort: the fault
    /// clears at the final snapshot (Figure 6's dip).
    pub mx_cn_fixed_at_latest: bool,
    /// mx-pattern inconsistency (§4.4).
    pub inconsistency: Option<InconsistencySpec>,
}

impl FaultProfile {
    /// True when no fault of any kind is injected.
    pub fn is_clean(&self) -> bool {
        self.record.is_none()
            && self.policy.is_none()
            && self.mx_cert.is_none()
            && self.inconsistency.is_none()
    }
}

/// One domain's full blueprint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DomainSpec {
    /// The registered domain.
    pub name: DomainName,
    /// Its TLD.
    pub tld: TldId,
    /// The date its MTA-STS record first appears.
    pub adopted: SimDate,
    /// Tranco rank, when the domain is in the top 1M (Figure 3).
    pub tranco_rank: Option<u32>,
    /// Mail hosting arrangement.
    pub mail: MailHosting,
    /// Policy hosting arrangement.
    pub policy: PolicyHosting,
    /// Policy mode.
    pub mode: Mode,
    /// Policy max_age in seconds.
    pub max_age: u64,
    /// Fault profile.
    pub faults: FaultProfile,
    /// TLSRPT record adoption date, if any (Figure 12).
    pub tlsrpt: Option<SimDate>,
    /// Member of the Jan-2-2024 `.org` organizational cohort (Figure 2).
    pub org_spike: bool,
    /// DMARCReport CNAME present but never hosted there (354, §4.3.3).
    pub dmarc_never_hosted: bool,
    /// DMARCReport opted-out: empty policy file (5, §5).
    pub dmarc_empty: bool,
    /// Tutanota leftover with a stale policy host (10, of which 8 expired
    /// certificates; §5).
    pub tutanota_stale: bool,
    /// Hit by the June 8, 2024 self-signed incident (1,385; Figure 5).
    pub june8_victim: bool,
    /// lucidgrow customer (the §4.4 January incident population).
    pub lucidgrow: bool,
    /// Whether the domain runs its own authoritative DNS (NS records under
    /// its own eSLD) — the NS half of the §4.3.1 heuristics.
    pub dns_self_hosted: bool,
}

impl DomainSpec {
    /// Whether the domain's record exists at `date`.
    pub fn adopted_by(&self, date: SimDate) -> bool {
        self.adopted <= date
    }

    /// Whether this is a Porkbun parked registration.
    pub fn is_porkbun(&self) -> bool {
        self.policy == PolicyHosting::Porkbun
    }
}

/// The generated population plus derived metadata.
#[derive(Debug, Clone)]
pub struct Population {
    /// All domain specs, in deterministic order.
    pub domains: Vec<DomainSpec>,
    /// Small policy-provider count (for deploy-side naming).
    pub small_policy_providers: u32,
    /// Small mail-provider count.
    pub small_mail_providers: u32,
    /// Columnar companion to `domains` (same indices).
    pub index: PopulationIndex,
}

impl Population {
    /// Assembles a population and builds its columnar index.
    pub fn from_parts(
        domains: Vec<DomainSpec>,
        small_policy_providers: u32,
        small_mail_providers: u32,
    ) -> Population {
        let index = PopulationIndex::build(&domains);
        Population {
            domains,
            small_policy_providers,
            small_mail_providers,
            index,
        }
    }
}

/// Columnar (structure-of-arrays) view of the population.
///
/// Every hot per-date walk — `IncrementalWorld::advance_to`, the weekly
/// observer, fingerprint timelines — needs only a handful of fields per
/// domain. Scanning those through `Vec<DomainSpec>` drags the whole
/// 300-byte spec (name `Arc`s, fault enums) through cache; these parallel
/// columns keep each walk touching only the bytes it reads. The
/// `adoption_order`/`adoption_dates` pair additionally turns "who exists
/// at date d" from an O(population) filter into a binary search plus an
/// O(adopters) slice.
#[derive(Debug, Clone, Default)]
pub struct PopulationIndex {
    /// Adoption date per population index.
    pub adopted: Vec<SimDate>,
    /// TLD per population index.
    pub tld: Vec<TldId>,
    /// Table-2 policy-provider key per index (`None` for every other
    /// hosting arrangement).
    pub policy_provider: Vec<Option<&'static str>>,
    /// Mail-provider key per index (`None` when not `MailHosting::Provider`).
    pub mail_provider: Vec<Option<&'static str>>,
    /// Tranco bin (rank / [`calib::TRANCO_BIN`]) per index; `u16::MAX`
    /// when unranked.
    pub tranco_bin: Vec<u16>,
    /// Per-index `(leftmost, tld)` references into the interned `labels`
    /// arena — the registered name without touching the spec.
    pub name_refs: Vec<(u32, u32)>,
    /// Interned unique labels backing `name_refs`.
    pub labels: Vec<Arc<str>>,
    /// Population indices sorted by (adoption date, index).
    adoption_order: Vec<u32>,
    /// Adoption date of `adoption_order[k]` — the binary-search column.
    adoption_dates: Vec<SimDate>,
}

impl PopulationIndex {
    /// Builds the columns from a name-sorted spec slice.
    pub fn build(domains: &[DomainSpec]) -> PopulationIndex {
        let n = domains.len();
        let mut labels: Vec<Arc<str>> = Vec::new();
        let mut interned: HashMap<Arc<str>, u32> = HashMap::new();
        let mut intern = |s: &str, labels: &mut Vec<Arc<str>>| -> u32 {
            if let Some(&i) = interned.get(s) {
                return i;
            }
            let arc: Arc<str> = Arc::from(s);
            let i = u32::try_from(labels.len()).expect("label arena fits u32");
            labels.push(arc.clone());
            interned.insert(arc, i);
            i
        };
        let mut index = PopulationIndex {
            adopted: Vec::with_capacity(n),
            tld: Vec::with_capacity(n),
            policy_provider: Vec::with_capacity(n),
            mail_provider: Vec::with_capacity(n),
            tranco_bin: Vec::with_capacity(n),
            name_refs: Vec::with_capacity(n),
            labels: Vec::new(),
            adoption_order: Vec::new(),
            adoption_dates: Vec::new(),
        };
        for d in domains {
            index.adopted.push(d.adopted);
            index.tld.push(d.tld);
            index.policy_provider.push(match &d.policy {
                PolicyHosting::Provider { key } => Some(*key),
                _ => None,
            });
            index.mail_provider.push(match &d.mail {
                MailHosting::Provider { key } => Some(*key),
                _ => None,
            });
            index.tranco_bin.push(match d.tranco_rank {
                Some(rank) => ((u64::from(rank) - 1) / calib::TRANCO_BIN) as u16,
                None => u16::MAX,
            });
            let leftmost = intern(d.name.leftmost(), &mut labels);
            let tld = intern(d.name.tld(), &mut labels);
            index.name_refs.push((leftmost, tld));
        }
        index.labels = labels;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| (index.adopted[i as usize], i));
        index.adoption_dates = order.iter().map(|&i| index.adopted[i as usize]).collect();
        index.adoption_order = order;
        index
    }

    /// Number of indexed domains.
    pub fn len(&self) -> usize {
        self.adopted.len()
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.adopted.is_empty()
    }

    /// Population indices of every domain adopted on or before `date`,
    /// ordered by (adoption date, index).
    pub fn adopters_through(&self, date: SimDate) -> &[u32] {
        let end = self.adoption_dates.partition_point(|d| *d <= date);
        &self.adoption_order[..end]
    }

    /// Population indices of domains adopting in `(after, through]`.
    pub fn adopters_between(&self, after: SimDate, through: SimDate) -> &[u32] {
        let lo = self.adoption_dates.partition_point(|d| *d <= after);
        let hi = self.adoption_dates.partition_point(|d| *d <= through);
        &self.adoption_order[lo..hi]
    }

    /// Number of domains adopted on or before `date`.
    pub fn adopter_count(&self, date: SimDate) -> usize {
        self.adoption_dates.partition_point(|d| *d <= date)
    }

    /// The registered name at `i`, reconstructed from the label arena.
    pub fn name_of(&self, i: usize) -> String {
        let (leftmost, tld) = self.name_refs[i];
        format!(
            "{}.{}",
            self.labels[leftmost as usize], self.labels[tld as usize]
        )
    }
}

/// The insertion-order blueprint plus the name-sorted traversal order.
///
/// [`plan`] runs every generation pass (the passes are whole-population:
/// quota shuffles, sequential cohort counters, the Tranco permutation) but
/// materializes nothing twice: [`PopulationPlan::into_chunks`] *moves*
/// each spec out exactly once in name-sorted order, and
/// [`PopulationPlan::into_population`] walks the same permutation — so
/// chunked and monolithic emission are byte-identical by construction.
#[derive(Debug, Clone)]
pub struct PopulationPlan {
    /// Specs in insertion (generation) order; `take`n on emission.
    specs: Vec<Option<DomainSpec>>,
    /// Name-sorted permutation over `specs`.
    order: Vec<u32>,
    small_policy_providers: u32,
    small_mail_providers: u32,
}

impl PopulationPlan {
    /// Number of planned domains.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Small policy-provider count (for deploy-side naming).
    pub fn small_policy_providers(&self) -> u32 {
        self.small_policy_providers
    }

    /// Small mail-provider count.
    pub fn small_mail_providers(&self) -> u32 {
        self.small_mail_providers
    }

    /// Streams the population as fixed-size chunks in name-sorted order.
    pub fn into_chunks(self, chunk_size: usize) -> PopulationChunks {
        assert!(chunk_size > 0, "chunk_size must be positive");
        PopulationChunks {
            specs: self.specs,
            order: self.order,
            cursor: 0,
            chunk_size,
            small_policy_providers: self.small_policy_providers,
            small_mail_providers: self.small_mail_providers,
        }
    }

    /// Materializes the whole population (same traversal as the chunk
    /// stream) and builds the columnar index.
    pub fn into_population(mut self) -> Population {
        let mut domains = Vec::with_capacity(self.order.len());
        for &i in &self.order {
            domains.push(
                self.specs[i as usize]
                    .take()
                    .expect("order is a permutation"),
            );
        }
        Population::from_parts(
            domains,
            self.small_policy_providers,
            self.small_mail_providers,
        )
    }
}

/// Iterator over name-sorted, fixed-size spec chunks (see
/// [`PopulationPlan::into_chunks`]). Each spec is moved out exactly once;
/// the stream never holds a second copy of the population.
#[derive(Debug)]
pub struct PopulationChunks {
    specs: Vec<Option<DomainSpec>>,
    order: Vec<u32>,
    cursor: usize,
    chunk_size: usize,
    small_policy_providers: u32,
    small_mail_providers: u32,
}

impl PopulationChunks {
    /// Small policy-provider count (for deploy-side naming).
    pub fn small_policy_providers(&self) -> u32 {
        self.small_policy_providers
    }

    /// Small mail-provider count.
    pub fn small_mail_providers(&self) -> u32 {
        self.small_mail_providers
    }

    /// Total number of domains across all chunks.
    pub fn total_len(&self) -> usize {
        self.order.len()
    }
}

impl Iterator for PopulationChunks {
    type Item = Vec<DomainSpec>;

    fn next(&mut self) -> Option<Vec<DomainSpec>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.chunk_size).min(self.order.len());
        let chunk = self.order[self.cursor..end]
            .iter()
            .map(|&i| {
                self.specs[i as usize]
                    .take()
                    .expect("each index emitted once")
            })
            .collect();
        self.cursor = end;
        Some(chunk)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.order.len() - self.cursor).div_ceil(self.chunk_size);
        (left, Some(left))
    }
}

/// The lucidgrow incident window: every lucidgrow-customer policy is
/// wrong (3LD+ vs their unique MXes) and set to `enforce` (§4.4: observed
/// on January 23, 2024, resolved quickly).
pub const LUCIDGROW_WINDOW: (SimDate, SimDate) = (
    SimDate::from_days_since_epoch(19_743), // 2024-01-21
    SimDate::from_days_since_epoch(19_755), // 2024-02-02
);

/// The June 8, 2024 self-signed-certificate incident window (one scan).
pub const JUNE8_WINDOW: (SimDate, SimDate) = (
    SimDate::from_days_since_epoch(19_880), // 2024-06-06
    SimDate::from_days_since_epoch(19_884), // 2024-06-10
);

/// Deterministically generates the whole population.
pub fn generate(config: &EcosystemConfig) -> Population {
    plan(config).into_population()
}

/// Streams the population as name-sorted, fixed-size chunks — same specs,
/// same order, same bytes as [`generate`], without a second copy.
pub fn generate_chunked(config: &EcosystemConfig, chunk_size: usize) -> PopulationChunks {
    plan(config).into_chunks(chunk_size)
}

/// Runs every generation pass and returns the emission-ready blueprint.
pub fn plan(config: &EcosystemConfig) -> PopulationPlan {
    let root = DetRng::new(config.seed).fork("ecosystem");
    let mut domains: Vec<DomainSpec> = Vec::new();

    // ------------------------------------------------------------------
    // 1. Baseline adopters per TLD with curve-driven adoption dates.
    // ------------------------------------------------------------------
    let weekly: Vec<SimDate> = config.weekly_snapshots();
    // One residual-tracking allocator across the four TLDs: the per-TLD
    // grants sum exactly to the scaled paper total at any scale.
    let mut tld_alloc = config.allocator();
    for tld in ALL_TLDS {
        // The smooth curve excludes the specials appended below.
        let final_count = tld_alloc.take(crate::tld::final_adoption(tld));
        // Precompute scaled counts per week for adoption-date assignment.
        let counts: Vec<u64> = weekly
            .iter()
            .map(|d| config.scaled(adoption_count(tld, *d)))
            .collect();
        for i in 0..final_count {
            // First week whose cumulative count exceeds i.
            let week_idx = counts.partition_point(|&c| c <= i);
            let adopted = weekly.get(week_idx).copied().unwrap_or(config.end);
            let name: DomainName = format!("d{:06}.{}", i, tld.label())
                .parse()
                .expect("generated names are valid");
            domains.push(DomainSpec {
                name,
                tld,
                adopted,
                tranco_rank: None,
                mail: MailHosting::SelfManaged { mx_count: 1 }, // assigned later
                policy: PolicyHosting::SelfManaged,             // assigned later
                mode: Mode::Testing,
                max_age: 604_800,
                faults: FaultProfile::default(),
                tlsrpt: None,
                org_spike: false,
                dmarc_never_hosted: false,
                dmarc_empty: false,
                tutanota_stale: false,
                june8_victim: false,
                lucidgrow: false,
                dns_self_hosted: false,
            });
        }
    }

    // ------------------------------------------------------------------
    // 2. Special cohorts: the .org spike and Porkbun registrations.
    // ------------------------------------------------------------------
    let spike_n = config.scaled_at_least_one(calib::ORG_SPIKE_DOMAINS);
    for i in 0..spike_n {
        domains.push(DomainSpec {
            name: format!("org-campaign{i:04}.org").parse().expect("valid"),
            tld: TldId::Org,
            adopted: SimDate::ymd(2024, 1, 2),
            tranco_rank: None,
            mail: MailHosting::SelfManaged { mx_count: 1 },
            policy: PolicyHosting::SelfManaged,
            mode: Mode::Enforce,
            max_age: 604_800,
            faults: FaultProfile::default(),
            tlsrpt: Some(SimDate::ymd(2024, 1, 2)),
            org_spike: true,
            dmarc_never_hosted: false,
            dmarc_empty: false,
            tutanota_stale: false,
            june8_victim: false,
            lucidgrow: false,
            dns_self_hosted: true,
        });
    }
    let porkbun_n = config.scaled_at_least_one(calib::PORKBUN_DOMAINS);
    let porkbun_start = SimDate::ymd(2024, 8, 1);
    let porkbun_span = config.end.days_since(porkbun_start).max(1);
    for i in 0..porkbun_n {
        let offset = (i as i64 * porkbun_span) / porkbun_n as i64;
        domains.push(DomainSpec {
            name: format!("parked{i:05}.com").parse().expect("valid"),
            tld: TldId::Com,
            adopted: porkbun_start.add_days(offset),
            tranco_rank: None,
            mail: MailHosting::Provider { key: "parkmail" },
            policy: PolicyHosting::Porkbun,
            mode: Mode::Testing,
            max_age: 86_400,
            faults: FaultProfile {
                // Every Porkbun parked domain presents the registrar's
                // parking certificate: a CN mismatch on the policy host.
                policy: Some(PolicyFaultKind::TlsCnMismatch),
                ..FaultProfile::default()
            },
            tlsrpt: None,
            org_spike: false,
            dmarc_never_hosted: false,
            dmarc_empty: false,
            tutanota_stale: false,
            june8_victim: false,
            lucidgrow: false,
            dns_self_hosted: false,
        });
    }

    // ------------------------------------------------------------------
    // 3. Policy-hosting quotas over the baseline (non-special) domains.
    // ------------------------------------------------------------------
    let baseline_count = domains
        .iter()
        .filter(|d| !d.org_spike && !d.is_porkbun())
        .count();
    let mut slots: Vec<PolicyHosting> = Vec::with_capacity(baseline_count);
    // A second residual allocator over the policy-hosting quotas: however
    // the categories round individually, their sum tracks the scaled
    // total instead of drifting by ±1 per category.
    let mut policy_alloc = config.allocator();
    for provider in policy_providers() {
        let n = policy_alloc.take_at_least_one(provider.paper_customers);
        for _ in 0..n {
            slots.push(PolicyHosting::Provider { key: provider.key });
        }
    }
    // Misc classifiable third-party hosts (≥50 customers each).
    let misc_total = policy_alloc.take(calib::MISC_THIRD_PARTY_POLICY);
    let misc_providers = calib::MISC_THIRD_PARTY_PROVIDERS.max(1);
    for i in 0..misc_total {
        // Spread round-robin; deploy names them polhost<i>.net.
        slots.push(PolicyHosting::MiscProvider {
            idx: (i % misc_providers) as u32,
        });
    }
    // Unclassifiable small hosts (6-49 customers).
    let small_total = policy_alloc.take(calib::POLICY_UNCLASSIFIED);
    let small_provider_count = (small_total / calib::SMALL_PROVIDER_MEAN_CUSTOMERS).max(1) as u32;
    for i in 0..small_total {
        slots.push(PolicyHosting::SmallProvider {
            idx: (i % u64::from(small_provider_count)) as u32,
        });
    }
    // mxascen.
    for _ in 0..policy_alloc.take(calib::MXASCEN_DOMAINS) {
        slots.push(PolicyHosting::Mxascen);
    }
    // Everyone else self-manages.
    while slots.len() < baseline_count {
        slots.push(PolicyHosting::SelfManaged);
    }
    slots.truncate(baseline_count);
    slots.shuffle(&mut root.stream_for("policy-slots"));

    let mut slot_iter = slots.into_iter();
    for spec in domains
        .iter_mut()
        .filter(|d| !d.org_spike && !d.is_porkbun())
    {
        spec.policy = slot_iter.next().expect("slots sized to baseline");
    }

    // ------------------------------------------------------------------
    // 4. Mail hosting, correlated with policy hosting.
    // ------------------------------------------------------------------
    let free_weights: Vec<(&'static str, f64)> = mail_providers()
        .iter()
        .filter(|p| p.weight > 0.0)
        .map(|p| (p.key, p.weight))
        .collect();
    let small_mail_providers = (config.scaled(calib::MX_UNCLASSIFIED)
        / calib::SMALL_PROVIDER_MEAN_CUSTOMERS)
        .max(1) as u32;
    // lucidgrow customers: carved from the DMARCReport quota.
    let mut lucid_left = config.scaled_at_least_one(calib::LUCIDGROW_DOMAINS);
    // Tutanota stale leftovers.
    let mut tutanota_stale_left = config.scaled_at_least_one(calib::TUTANOTA_STALE);
    let mut dmarc_never_left = config.scaled_at_least_one(calib::DMARCREPORT_NEVER_HOSTED);
    let mut dmarc_empty_left = config.scaled_at_least_one(calib::DMARCREPORT_EMPTY_POLICY);
    let mut june8_left = config.scaled_at_least_one(calib::JUNE8_SELFSIGNED_DOMAINS);

    for (i, spec) in domains.iter_mut().enumerate() {
        if spec.org_spike || spec.is_porkbun() {
            continue;
        }
        let rng = root.fork(&format!("mail/{}", spec.name));
        spec.mail = match &spec.policy {
            PolicyHosting::Provider { key } if *key == "tutanota" => {
                if tutanota_stale_left > 0 {
                    tutanota_stale_left -= 1;
                    spec.tutanota_stale = true;
                }
                MailHosting::Provider { key: "tutanota" }
            }
            PolicyHosting::Provider { key } if *key == "dmarcreport" => {
                if lucid_left > 0 {
                    lucid_left -= 1;
                    spec.lucidgrow = true;
                    MailHosting::Provider { key: "lucidgrow" }
                } else {
                    if dmarc_never_left > 0 {
                        dmarc_never_left -= 1;
                        spec.dmarc_never_hosted = true;
                    } else if dmarc_empty_left > 0 {
                        dmarc_empty_left -= 1;
                        spec.dmarc_empty = true;
                    }
                    draw_free_mail(&rng, &free_weights, small_mail_providers)
                }
            }
            PolicyHosting::Provider { key } if *key == "powerdmarc" => {
                if june8_left > 0 {
                    june8_left -= 1;
                    spec.june8_victim = true;
                }
                draw_free_mail(&rng, &free_weights, small_mail_providers)
            }
            PolicyHosting::Mxascen => MailHosting::Mxascen,
            _ => draw_free_mail(&rng, &free_weights, small_mail_providers),
        };
        let _ = i;
    }

    // ------------------------------------------------------------------
    // 5. Fault profiles, modes, max_age, TLSRPT, Tranco.
    // ------------------------------------------------------------------
    for spec in domains.iter_mut() {
        if spec.org_spike {
            continue; // the campaign cohort is deliberately healthy
        }
        let rng = root.fork(&format!("faults/{}", spec.name));
        assign_faults(spec, &rng, config);
        assign_mode_and_ages(spec, &rng);
        assign_tlsrpt(spec, &rng, config);
        // DNS hosting: self-managed mail correlates strongly with running
        // your own authoritative DNS; provider customers mostly use a
        // DNS provider or their registrar's servers.
        let p_self_dns = match &spec.mail {
            MailHosting::SelfManaged { .. } | MailHosting::Mxascen => 0.75,
            _ => 0.18,
        };
        spec.dns_self_hosted = rng.chance("dns-self", p_self_dns);
    }
    assign_tranco(&mut domains, &root, config);

    // Exactly one same-provider (Tutanota-both) inconsistency: the
    // laura-norman.com analogue (§4.5.2).
    if let Some(spec) = domains
        .iter_mut()
        .find(|d| d.policy == (PolicyHosting::Provider { key: "tutanota" }) && !d.tutanota_stale)
    {
        spec.faults.inconsistency = Some(InconsistencySpec {
            kind: InconsistencyKind::Typo,
            stale_migration: None,
            stray_label: false,
        });
    }

    // Name-sorted traversal order. Chunked emission and monolithic
    // materialization both walk this permutation, so they agree byte for
    // byte by construction.
    let mut order: Vec<u32> = (0..domains.len() as u32).collect();
    order.sort_by(|&a, &b| domains[a as usize].name.cmp(&domains[b as usize].name));
    PopulationPlan {
        specs: domains.into_iter().map(Some).collect(),
        order,
        small_policy_providers: small_provider_count,
        small_mail_providers,
    }
}

/// Draws mail hosting for domains with no structural constraint.
fn draw_free_mail(
    rng: &DetRng,
    free_weights: &[(&'static str, f64)],
    small_mail_providers: u32,
) -> MailHosting {
    // Global split (§4.3.4): third 59.8%, self 34.6%, unclassified 5.6%.
    let class = rng.weighted_index("class", &[59.8, 34.6, 5.6]);
    match class {
        0 => {
            let weights: Vec<f64> = free_weights.iter().map(|(_, w)| *w).collect();
            let pick = rng.weighted_index("provider", &weights);
            MailHosting::Provider {
                key: free_weights[pick].0,
            }
        }
        1 => MailHosting::SelfManaged {
            mx_count: 1 + rng.index("mx-count", 3) as u8,
        },
        _ => MailHosting::SmallProvider {
            idx: rng.index("small", small_mail_providers as usize) as u32,
        },
    }
}

/// Injects record / policy / MX / inconsistency faults per the calibrated
/// rates.
fn assign_faults(spec: &mut DomainSpec, rng: &DetRng, _config: &EcosystemConfig) {
    // Record faults are uniform across hosting classes (§4.3.2: "the vast
    // majority publish a correct record, irrespective of who manages the
    // zone").
    if rng.chance("record", calib::RECORD_FAULT_RATE) {
        let weights: Vec<f64> = calib::RECORD_FAULT_MIX.iter().map(|(_, w)| *w).collect();
        let pick = rng.weighted_index("record-kind", &weights);
        spec.faults.record = Some(calib::RECORD_FAULT_MIX[pick].0);
    }

    // Policy-server faults, conditioned on the hosting arrangement.
    if spec.is_porkbun() {
        // Already set at construction (parking certificate).
    } else if spec.dmarc_never_hosted {
        spec.faults.policy = Some(PolicyFaultKind::TlsNoCert);
    } else if spec.dmarc_empty {
        spec.faults.policy = Some(PolicyFaultKind::SyntaxEmpty);
    } else if spec.tutanota_stale {
        // 8 of 10 are expired certificates; the rest 404.
        spec.faults.policy = Some(if rng.chance("tuta-expired", 0.8) {
            PolicyFaultKind::TlsExpired
        } else {
            PolicyFaultKind::Http404
        });
    } else {
        spec.faults.policy = match &spec.policy {
            PolicyHosting::SelfManaged | PolicyHosting::Mxascen => draw_policy_fault(
                rng,
                &[
                    (PolicyFaultKind::Dns, calib::SELF_POLICY_DNS_RATE),
                    (
                        PolicyFaultKind::TcpRefused,
                        calib::SELF_POLICY_TCP_RATE * 0.7,
                    ),
                    (
                        PolicyFaultKind::TcpTimeout,
                        calib::SELF_POLICY_TCP_RATE * 0.3,
                    ),
                    (
                        PolicyFaultKind::TlsCnMismatch,
                        calib::SELF_POLICY_TLS_CN_RATE,
                    ),
                    (
                        PolicyFaultKind::TlsSelfSigned,
                        calib::SELF_POLICY_TLS_OTHER_RATE * 0.6,
                    ),
                    (
                        PolicyFaultKind::TlsExpired,
                        calib::SELF_POLICY_TLS_OTHER_RATE * 0.4,
                    ),
                    (
                        PolicyFaultKind::Http404,
                        calib::SELF_POLICY_HTTP_RATE * 0.65,
                    ),
                    (
                        PolicyFaultKind::Http500,
                        calib::SELF_POLICY_HTTP_RATE * 0.35,
                    ),
                    (PolicyFaultKind::SyntaxBadMx, calib::SELF_POLICY_SYNTAX_RATE),
                ],
            ),
            PolicyHosting::Provider { .. } | PolicyHosting::MiscProvider { .. } => {
                draw_policy_fault(
                    rng,
                    &[
                        (PolicyFaultKind::TcpRefused, calib::THIRD_POLICY_TCP_RATE),
                        (
                            PolicyFaultKind::TlsExpired,
                            calib::THIRD_POLICY_TLS_RATE * 0.6,
                        ),
                        (
                            PolicyFaultKind::TlsCnMismatch,
                            calib::THIRD_POLICY_TLS_RATE * 0.4,
                        ),
                        (PolicyFaultKind::Http404, calib::THIRD_POLICY_HTTP_RATE),
                        (
                            PolicyFaultKind::SyntaxBadMx,
                            calib::THIRD_POLICY_SYNTAX_RATE,
                        ),
                    ],
                )
            }
            PolicyHosting::SmallProvider { .. } => {
                if rng.chance("uncls-fault", calib::UNCLASSIFIED_POLICY_FAULT_RATE) {
                    // Small hosts fail like self-managed ones: mostly TLS.
                    Some(
                        match rng.weighted_index("uncls-kind", &[0.70, 0.12, 0.12, 0.06]) {
                            0 => PolicyFaultKind::TlsCnMismatch,
                            1 => PolicyFaultKind::TlsSelfSigned,
                            2 => PolicyFaultKind::Http404,
                            _ => PolicyFaultKind::TcpRefused,
                        },
                    )
                } else {
                    None
                }
            }
            PolicyHosting::Porkbun => unreachable!("handled above"),
        };
    }

    // MX certificate faults.
    let mx_fault_rate = match &spec.mail {
        MailHosting::SelfManaged { .. } | MailHosting::Mxascen => calib::SELF_MX_CERT_FAULT_RATE,
        MailHosting::Provider { key } if *key == "mxrouting" => {
            calib::MXROUTING_FAULTY as f64 / calib::MXROUTING_DOMAINS as f64
        }
        MailHosting::Provider { key } if *key == "parkmail" => 0.0,
        MailHosting::Provider { .. } => calib::THIRD_MX_CERT_FAULT_RATE,
        MailHosting::SmallProvider { .. } => calib::SELF_MX_CERT_FAULT_RATE * 0.8,
    };
    if rng.chance("mx-cert", mx_fault_rate) {
        let weights: Vec<f64> = calib::MX_FAULT_MIX.iter().map(|(_, w)| *w).collect();
        let kind = calib::MX_FAULT_MIX[rng.weighted_index("mx-kind", &weights)].0;
        let scope = if rng.chance("mx-scope", calib::MX_FAULT_ALL_SCOPE_RATE) {
            MxFaultScope::All
        } else {
            MxFaultScope::Partial
        };
        spec.faults.mx_cert = Some((kind, scope));
        // The 270-domain fixed-at-latest cohort (self-hosted CN mismatches).
        if kind == MxCertFaultKind::CnMismatch
            && matches!(spec.mail, MailHosting::SelfManaged { .. })
        {
            // 270 of the (1,316 × 55% CN-mismatch) self-managed cohort
            // fix their mismatch by the final scan.
            let fixed_share = calib::SELF_MX_CN_FIXED as f64
                / (calib::SELF_MX_CERT_FAULT_RATE * 23_512.0 * 0.55).max(1.0);
            if rng.chance("mx-fixed", fixed_share.min(0.9)) {
                spec.faults.mx_cn_fixed_at_latest = true;
            }
        }
    }

    // Inconsistencies, conditioned on the provider split (Figure 10).
    let both_outsourced = matches!(
        spec.policy,
        PolicyHosting::Provider { .. }
            | PolicyHosting::MiscProvider { .. }
            | PolicyHosting::SmallProvider { .. }
    ) && matches!(
        spec.mail,
        MailHosting::Provider { .. } | MailHosting::SmallProvider { .. }
    );
    let same_provider = matches!((&spec.policy, &spec.mail),
        (PolicyHosting::Provider { key: pk }, MailHosting::Provider { key: mk }) if pk == mk);
    let rate = if same_provider {
        0.0 // the single exception is pinned in generate()
    } else if both_outsourced {
        calib::INCONSISTENCY_DIFF_PROVIDER_RATE
    } else {
        calib::INCONSISTENCY_OTHER_RATE
    };
    if rng.chance("inconsistency", rate) && !spec.lucidgrow {
        let weights: Vec<f64> = calib::INCONSISTENCY_MIX.iter().map(|(_, w)| *w).collect();
        let kind = calib::INCONSISTENCY_MIX[rng.weighted_index("inc-kind", &weights)].0;
        let stale_migration = (kind == InconsistencyKind::CompleteDomain
            && rng.chance("inc-stale", calib::COMPLETE_MISMATCH_STALE_SHARE))
        .then(|| {
            // Migration somewhere between adoption+60d and a month before
            // the end, so Figure 9's share climbs over the scan window.
            let lo = spec.adopted.add_days(60);
            let lo = lo.max(SimDate::ymd(2023, 1, 1));
            let hi = SimDate::ymd(2024, 8, 25);
            if lo >= hi {
                lo
            } else {
                let span = hi.days_since(lo);
                lo.add_days(rng.stream_for("inc-migration").gen_range(0..=span))
            }
        });
        let stray_label = kind == InconsistencyKind::ThirdLabel
            && rng.chance("inc-stray", calib::THIRD_LABEL_STRAY_SHARE);
        spec.faults.inconsistency = Some(InconsistencySpec {
            kind,
            stale_migration,
            stray_label,
        });
    }
}

/// One-of-many fault draw: each (kind, rate) is an independent Bernoulli;
/// the first hit wins (rates are small, overlaps negligible).
fn draw_policy_fault(rng: &DetRng, table: &[(PolicyFaultKind, f64)]) -> Option<PolicyFaultKind> {
    for (kind, rate) in table {
        if rng.chance(&format!("policy-{kind:?}"), *rate) {
            return Some(*kind);
        }
    }
    None
}

/// Mode and max_age, correlated with fault presence (§ Figure 7/8 enforce
/// overlays).
fn assign_mode_and_ages(spec: &mut DomainSpec, rng: &DetRng) {
    let faulty = spec.faults.mx_cert.is_some() || spec.faults.inconsistency.is_some();
    let (e, t, n) = if faulty {
        calib::MODE_SPLIT_FAULTY
    } else {
        calib::MODE_SPLIT_CLEAN
    };
    spec.mode = match rng.weighted_index("mode", &[e, t, n]) {
        0 => Mode::Enforce,
        1 => Mode::Testing,
        _ => Mode::None,
    };
    let weights: Vec<f64> = calib::MAX_AGE_MENU.iter().map(|(_, w)| *w).collect();
    spec.max_age = calib::MAX_AGE_MENU[rng.weighted_index("max-age", &weights)].0;
}

/// TLSRPT adoption (Figure 12's bottom panel).
fn assign_tlsrpt(spec: &mut DomainSpec, rng: &DetRng, config: &EcosystemConfig) {
    let u: f64 = rng.stream_for("tlsrpt").gen();
    if u < calib::TLSRPT_AT_ADOPTION {
        spec.tlsrpt = Some(spec.adopted);
    } else if u < calib::TLSRPT_EVENTUAL {
        let span = config.end.days_since(spec.adopted).max(1);
        let lag = rng.stream_for("tlsrpt-lag").gen_range(0..=span);
        spec.tlsrpt = Some(spec.adopted.add_days(lag));
    }
}

/// Tranco rank assignment (Figure 3): per-10k-bin adoption rates decline
/// linearly from 1.2% (top) to 0.4% (bottom).
fn assign_tranco(domains: &mut [DomainSpec], root: &DetRng, config: &EcosystemConfig) {
    let bins = (calib::TRANCO_UNIVERSE / calib::TRANCO_BIN) as usize;
    let mut order: Vec<usize> = (0..domains.len()).collect();
    order.shuffle(&mut root.stream_for("tranco-order"));
    let mut cursor = 0usize;
    for bin in 0..bins {
        let t = bin as f64 / (bins - 1) as f64;
        let rate = calib::TRANCO_TOP_BIN_RATE
            + t * (calib::TRANCO_BOTTOM_BIN_RATE - calib::TRANCO_TOP_BIN_RATE);
        let want = config.scaled((rate * calib::TRANCO_BIN as f64) as u64) as usize;
        for k in 0..want {
            let Some(&idx) = order.get(cursor) else {
                return;
            };
            cursor += 1;
            let rank_in_bin =
                (k as u64 * calib::TRANCO_BIN / want.max(1) as u64).min(calib::TRANCO_BIN - 1);
            domains[idx].tranco_rank =
                Some((bin as u64 * calib::TRANCO_BIN + rank_in_bin) as u32 + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> EcosystemConfig {
        EcosystemConfig::paper(42, 0.02)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_config());
        let b = generate(&small_config());
        assert_eq!(a.domains, b.domains);
        // A different seed changes the population.
        let c = generate(&EcosystemConfig::paper(43, 0.02));
        assert_ne!(a.domains, c.domains);
    }

    #[test]
    fn population_size_tracks_scale() {
        let pop = generate(&small_config());
        let expected = 68_030.0 * 0.02;
        let got = pop.domains.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.1,
            "expected ≈{expected}, got {got}"
        );
    }

    #[test]
    fn adoption_dates_are_in_window_and_monotone_with_index() {
        let config = small_config();
        let pop = generate(&config);
        for d in &pop.domains {
            assert!(
                d.adopted >= config.start && d.adopted <= config.end,
                "{}",
                d.name
            );
        }
        // Baseline .com domains adopt in index order.
        let mut coms: Vec<&DomainSpec> = pop
            .domains
            .iter()
            .filter(|d| d.tld == TldId::Com && !d.is_porkbun() && !d.org_spike)
            .collect();
        coms.sort_by_key(|d| d.name.to_string());
        for w in coms.windows(2) {
            assert!(w[0].adopted <= w[1].adopted);
        }
    }

    #[test]
    fn hosting_split_matches_calibration() {
        let pop = generate(&EcosystemConfig::paper(7, 0.1));
        let n = pop.domains.len() as f64;
        let self_policy = pop
            .domains
            .iter()
            .filter(|d| {
                matches!(
                    d.policy,
                    PolicyHosting::SelfManaged | PolicyHosting::Porkbun | PolicyHosting::Mxascen
                )
            })
            .count() as f64;
        // Paper: 25,344 / 68,030 ≈ 37%.
        assert!((self_policy / n - 0.37).abs() < 0.05, "{}", self_policy / n);
        let third_mail = pop
            .domains
            .iter()
            .filter(|d| matches!(d.mail, MailHosting::Provider { .. }))
            .count() as f64;
        // ≈ 59.8% plus parkmail; allow a band.
        assert!(
            (0.5..0.75).contains(&(third_mail / n)),
            "{}",
            third_mail / n
        );
    }

    #[test]
    fn named_cohorts_exist() {
        let pop = generate(&small_config());
        assert!(pop.domains.iter().any(|d| d.lucidgrow));
        assert!(pop.domains.iter().any(|d| d.dmarc_never_hosted));
        assert!(pop.domains.iter().any(|d| d.is_porkbun()));
        assert!(pop.domains.iter().any(|d| d.org_spike));
        assert!(pop.domains.iter().any(|d| d.june8_victim));
        // Exactly one same-provider inconsistency.
        let same_provider_inconsistent = pop
            .domains
            .iter()
            .filter(|d| {
                d.faults.inconsistency.is_some()
                    && d.policy == (PolicyHosting::Provider { key: "tutanota" })
                    && d.mail == (MailHosting::Provider { key: "tutanota" })
            })
            .count();
        assert_eq!(same_provider_inconsistent, 1);
    }

    #[test]
    fn lucidgrow_customers_use_dmarcreport_policies() {
        let pop = generate(&small_config());
        for d in pop.domains.iter().filter(|d| d.lucidgrow) {
            assert_eq!(d.policy, PolicyHosting::Provider { key: "dmarcreport" });
            assert_eq!(d.mail, MailHosting::Provider { key: "lucidgrow" });
        }
    }

    #[test]
    fn porkbun_cohort_shape() {
        let pop = generate(&small_config());
        for d in pop.domains.iter().filter(|d| d.is_porkbun()) {
            assert!(d.adopted >= SimDate::ymd(2024, 8, 1));
            assert_eq!(d.faults.policy, Some(PolicyFaultKind::TlsCnMismatch));
            assert_eq!(d.tld, TldId::Com);
        }
    }

    #[test]
    fn misconfiguration_rate_is_plausible() {
        let pop = generate(&EcosystemConfig::paper(9, 0.1));
        let n = pop.domains.len() as f64;
        let faulty = pop.domains.iter().filter(|d| !d.faults.is_clean()).count() as f64;
        // Paper: 29.6% at the latest snapshot. The spec-level rate counts
        // every fault that will ever manifest, so allow a generous band.
        assert!(
            (0.20..0.40).contains(&(faulty / n)),
            "faulty share {}",
            faulty / n
        );
    }

    #[test]
    fn tranco_rates_decline_with_rank() {
        let pop = generate(&EcosystemConfig::paper(3, 0.25));
        let ranked: Vec<u32> = pop.domains.iter().filter_map(|d| d.tranco_rank).collect();
        assert!(!ranked.is_empty());
        let top = ranked.iter().filter(|r| **r <= 100_000).count();
        let bottom = ranked.iter().filter(|r| **r > 900_000).count();
        assert!(top > bottom, "top {top} vs bottom {bottom}");
        assert!(ranked.iter().all(|r| (1..=1_000_000).contains(r)));
    }

    #[test]
    fn modes_skew_testing_for_faulty_domains() {
        let pop = generate(&EcosystemConfig::paper(5, 0.1));
        let faulty_enforce = pop
            .domains
            .iter()
            .filter(|d| d.faults.inconsistency.is_some())
            .filter(|d| d.mode == Mode::Enforce)
            .count() as f64;
        let faulty_total = pop
            .domains
            .iter()
            .filter(|d| d.faults.inconsistency.is_some())
            .count() as f64;
        if faulty_total > 20.0 {
            let share = faulty_enforce / faulty_total;
            assert!((0.08..0.40).contains(&share), "enforce share {share}");
        }
    }

    #[test]
    fn tlsrpt_adoption_share() {
        let config = EcosystemConfig::paper(6, 0.1);
        let pop = generate(&config);
        let with = pop.domains.iter().filter(|d| d.tlsrpt.is_some()).count() as f64;
        let share = with / pop.domains.len() as f64;
        assert!(
            (calib::TLSRPT_EVENTUAL - 0.05..calib::TLSRPT_EVENTUAL + 0.05).contains(&share),
            "{share}"
        );
    }

    /// FNV-1a over the Debug rendering of every spec, in order.
    fn population_digest(domains: &[DomainSpec]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for d in domains {
            for b in format!("{d:?}").bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    #[test]
    fn chunked_generation_matches_monolithic() {
        let config = small_config();
        let mono = generate(&config);
        let mono_digest = population_digest(&mono.domains);
        for chunk_size in [1usize, 7, 1024] {
            let chunks = generate_chunked(&config, chunk_size);
            assert_eq!(chunks.small_policy_providers(), mono.small_policy_providers);
            assert_eq!(chunks.small_mail_providers(), mono.small_mail_providers);
            assert_eq!(chunks.total_len(), mono.domains.len());
            let mut streamed: Vec<DomainSpec> = Vec::new();
            for chunk in chunks {
                assert!(!chunk.is_empty() && chunk.len() <= chunk_size);
                streamed.extend(chunk);
            }
            assert_eq!(
                population_digest(&streamed),
                mono_digest,
                "chunk_size {chunk_size}"
            );
            assert_eq!(streamed, mono.domains);
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

        /// Chunked generation is byte-identical to monolithic for
        /// arbitrary seeds and fractional scales, at chunk sizes 1, 7
        /// and 1024 — the digest-parity oracle, property-tested.
        #[test]
        fn chunked_digest_parity_over_seeds(
            seed in 0u64..1_000_000,
            scale_thousandths in 3u32..12,
        ) {
            let config =
                EcosystemConfig::paper(seed, f64::from(scale_thousandths) / 1000.0);
            let mono = generate(&config);
            let mono_digest = population_digest(&mono.domains);
            for chunk_size in [1usize, 7, 1024] {
                let chunks = generate_chunked(&config, chunk_size);
                let mut streamed: Vec<DomainSpec> = Vec::new();
                for chunk in chunks {
                    streamed.extend(chunk);
                }
                proptest::prop_assert_eq!(
                    population_digest(&streamed),
                    mono_digest,
                    "chunk_size {}",
                    chunk_size
                );
            }
        }
    }

    #[test]
    fn columnar_index_mirrors_the_specs() {
        let config = small_config();
        let pop = generate(&config);
        let idx = &pop.index;
        assert_eq!(idx.len(), pop.domains.len());
        for (i, d) in pop.domains.iter().enumerate() {
            assert_eq!(idx.adopted[i], d.adopted);
            assert_eq!(idx.tld[i], d.tld);
            assert_eq!(idx.name_of(i), d.name.to_string());
            match &d.policy {
                PolicyHosting::Provider { key } => assert_eq!(idx.policy_provider[i], Some(*key)),
                _ => assert_eq!(idx.policy_provider[i], None),
            }
            match d.tranco_rank {
                Some(r) => assert_eq!(
                    u64::from(idx.tranco_bin[i]),
                    (u64::from(r) - 1) / calib::TRANCO_BIN
                ),
                None => assert_eq!(idx.tranco_bin[i], u16::MAX),
            }
        }
        // The adoption walk agrees with the brute-force filter at every
        // weekly date, and slices are disjoint unions.
        let mut prev = None;
        let mut seen = 0usize;
        for date in config.weekly_snapshots() {
            let want = pop.domains.iter().filter(|d| d.adopted_by(date)).count();
            assert_eq!(idx.adopter_count(date), want, "{date}");
            assert_eq!(idx.adopters_through(date).len(), want);
            let fresh = match prev {
                Some(p) => idx.adopters_between(p, date),
                None => idx.adopters_through(date),
            };
            for &i in fresh {
                assert!(pop.domains[i as usize].adopted_by(date));
                if let Some(p) = prev {
                    assert!(!pop.domains[i as usize].adopted_by(p));
                }
            }
            seen += fresh.len();
            assert_eq!(seen, want);
            prev = Some(date);
        }
    }

    #[test]
    fn categories_sum_exactly_to_scaled_population() {
        // The rounding-drift satellite: at odd scales the per-TLD grants
        // must still sum to the scaled paper total, with no ±1-per-category
        // drift.
        let paper_total: u64 = ALL_TLDS
            .iter()
            .map(|t| crate::tld::final_adoption(*t))
            .sum();
        for scale in [0.05, 0.33, 1.0] {
            let config = EcosystemConfig::paper(11, scale);
            let pop = generate(&config);
            let baseline = pop
                .domains
                .iter()
                .filter(|d| !d.org_spike && !d.is_porkbun())
                .count() as u64;
            assert_eq!(baseline, config.scaled(paper_total), "scale {scale}");
        }
    }
}
