//! Materializing the population into a [`simnet::World`].
//!
//! [`Ecosystem::world_at`] produces the Internet as it stood on a given
//! date: provider infrastructure first (mail platforms, policy-hosting
//! platforms, the Porkbun parking host, the mxascen setup), then every
//! domain whose MTA-STS record exists by that date. Scans then run against
//! the world exactly as the paper's scanner ran against the real one.
//!
//! Worlds are rebuilt per snapshot (they are cheap relative to scanning),
//! so time-varying state — incident windows, stale-policy MX migrations,
//! certificate expiry, the 270-domain CN-mismatch fix — is simply a
//! function of the date passed in.

use crate::calib::{InconsistencyKind, MxCertFaultKind, RecordFaultKind};
use crate::config::{EcosystemConfig, SnapshotDetail};
use crate::providers::{mail_providers, policy_providers, MailProvider, MxStyle, PolicyProvider};
use crate::spec::{
    generate, DomainSpec, MailHosting, MxFaultScope, PolicyFaultKind, PolicyHosting, Population,
    JUNE8_WINDOW, LUCIDGROW_WINDOW,
};
use dns::RecordData;
use mtasts::{Mode, MxPattern, Policy};
use netbase::{DomainName, SimDate, SimInstant};
use simnet::{CertKind, MxEndpoint, WebEndpoint, World};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// Default TTL for generated records.
pub(crate) const TTL: u32 = 3600;

/// The generated ecosystem: population plus deployment logic.
pub struct Ecosystem {
    /// The configuration it was generated from.
    pub config: EcosystemConfig,
    /// The domain population.
    pub population: Population,
    pub(crate) policy_providers: Vec<PolicyProvider>,
    pub(crate) mail_providers: Vec<MailProvider>,
    /// Lazily built change schedule (see [`crate::timeline`]).
    timeline: std::sync::OnceLock<crate::timeline::ChangeTimeline>,
}

// Shard workers and the longitudinal driver hold `&Ecosystem` across
// threads; the ecosystem is plain generated data (no interior
// mutability), and this assertion keeps it that way at compile time.
#[allow(dead_code)]
fn static_assert_ecosystem_is_shareable() {
    fn shareable<T: Send + Sync>() {}
    shareable::<Ecosystem>();
    shareable::<Population>();
}

/// Provider infrastructure handles inside one world.
///
/// Crate-visible so [`crate::incremental::IncrementalWorld`] can retain the
/// handles across snapshots instead of rebuilding them per date.
pub(crate) struct Infra {
    /// Policy web endpoint per provider key (top-8 + `misc<i>` + `small<i>`).
    pub(crate) policy_ip: HashMap<String, Ipv4Addr>,
    /// An allocated IP with no listener (TCP-refused fault target).
    pub(crate) dead_ip: Ipv4Addr,
    /// Healthy MX endpoint per mail provider key.
    pub(crate) mail_ip: HashMap<String, Ipv4Addr>,
    /// Faulty MX endpoints for per-customer-hostname providers, by
    /// (provider, fault kind).
    pub(crate) mail_faulty_ip: HashMap<(String, MxCertFaultKind), Ipv4Addr>,
    /// The two mxascen policy IPs.
    pub(crate) mxascen_web: [Ipv4Addr; 2],
    /// The Porkbun parking host.
    pub(crate) porkbun_ip: Ipv4Addr,
    /// Shared CNAME targets / shared MX hostnames already given A records.
    /// Invariant: a name is in here iff exactly one domain installed its A
    /// record through the per-customer path — which is what makes
    /// incremental uninstallation able to tell "mine to remove" from
    /// "infrastructure-owned" records.
    pub(crate) shared_a_done: HashSet<DomainName>,
}

impl Ecosystem {
    /// Generates the population for `config`.
    pub fn generate(config: EcosystemConfig) -> Ecosystem {
        let population = generate(&config);
        Ecosystem {
            config,
            population,
            policy_providers: policy_providers(),
            mail_providers: mail_providers(),
            timeline: std::sync::OnceLock::new(),
        }
    }

    /// The precomputed change schedule, built on first use.
    pub fn timeline(&self) -> &crate::timeline::ChangeTimeline {
        self.timeline
            .get_or_init(|| crate::timeline::ChangeTimeline::build(self))
    }

    /// Domains whose record exists at `date`.
    pub fn domains_at(&self, date: SimDate) -> impl Iterator<Item = &DomainSpec> {
        self.population
            .domains
            .iter()
            .filter(move |d| d.adopted_by(date))
    }

    /// A policy provider by key.
    pub fn policy_provider(&self, key: &str) -> Option<&PolicyProvider> {
        self.policy_providers.iter().find(|p| p.key == key)
    }

    /// A mail provider by key.
    pub fn mail_provider(&self, key: &str) -> Option<&MailProvider> {
        self.mail_providers.iter().find(|p| p.key == key)
    }

    /// Builds the world as it stood on `date`.
    ///
    /// Implemented as a single [`crate::incremental::IncrementalWorld`]
    /// advance, so the from-scratch and incremental construction paths are
    /// the same code by definition — the digest-equality oracle the
    /// incremental engine is tested against compares this against a world
    /// advanced date-by-date.
    pub fn world_at(&self, date: SimDate, detail: SnapshotDetail) -> World {
        let mut iw = crate::incremental::IncrementalWorld::new(detail);
        iw.advance_to(self, date);
        iw.into_world()
    }

    /// The deterministic endpoint address of population index `index`,
    /// slot `slot` (0 = policy web server, 1..=3 = MX endpoints).
    ///
    /// Derived addresses live in the reserved upper half of 10/8 (see
    /// [`simnet::DYNAMIC_IP_LIMIT`]) so they never collide with the
    /// sequential infrastructure allocator — and, crucially, never depend
    /// on how many *other* domains are installed, which is what lets a
    /// delta-built world serve byte-identical answers to a from-scratch
    /// one.
    pub(crate) fn domain_ip(index: usize, slot: u8) -> Ipv4Addr {
        debug_assert!(slot < 4, "four endpoint slots per domain");
        let v = simnet::DYNAMIC_IP_LIMIT + (index as u32) * 4 + u32::from(slot);
        assert!(v < 1 << 24, "per-domain 10/8 region exhausted");
        Ipv4Addr::new(10, (v >> 16) as u8, (v >> 8) as u8, v as u8)
    }

    /// The effective MX hosts of a domain at `date` (§4.4's migrations).
    pub fn effective_mx_hosts(&self, spec: &DomainSpec, date: SimDate) -> Vec<DomainName> {
        if let Some(inc) = &spec.faults.inconsistency {
            if let Some(migration) = inc.stale_migration {
                if date < migration {
                    return vec![self.legacy_mx_of(spec)];
                }
            }
        }
        match &spec.mail {
            MailHosting::SelfManaged { mx_count } => (1..=*mx_count)
                .map(|i| spec.name.prefixed(&format!("mx{i}")).expect("static label"))
                .collect(),
            MailHosting::Provider { key } => self
                .mail_provider(key)
                .expect("spec references known providers")
                .mx_hosts(&spec.name),
            MailHosting::Mxascen => {
                vec![crate::providers::MXASCEN_MX.parse().expect("static")]
            }
            MailHosting::SmallProvider { idx } => {
                vec![format!("in.smallmx{idx}.net").parse().expect("valid")]
            }
        }
    }

    /// The pre-migration MX of a stale-policy domain: hosted at the old
    /// mail provider's own registrable domain, with the same TLD as the
    /// new MX so the post-migration mismatch is a *complete domain*
    /// mismatch (§4.4's dominant class), never a TLD or 3LD+ artefact.
    ///
    /// The old host's name embeds both the domain's leftmost label *and*
    /// its TLD: leftmost labels repeat across TLDs (`d000017.com` /
    /// `d000017.org`), and two stale-migration domains must never share a
    /// legacy zone — each domain owns its legacy host outright, so the
    /// incremental engine can drop the whole zone when the migration date
    /// passes.
    pub(crate) fn legacy_mx_of(&self, spec: &DomainSpec) -> DomainName {
        let new_first = match &spec.mail {
            MailHosting::SelfManaged { .. } => spec.name.clone(),
            MailHosting::Provider { key } => self
                .mail_provider(key)
                .expect("spec references known providers")
                .mx_hosts(&spec.name)
                .remove(0),
            MailHosting::Mxascen => crate::providers::MXASCEN_MX.parse().expect("static"),
            MailHosting::SmallProvider { idx } => {
                format!("in.smallmx{idx}.net").parse().expect("valid")
            }
        };
        format!(
            "mx.oldhost-{}-{}.{}",
            spec.name.leftmost(),
            spec.name.tld(),
            new_first.tld()
        )
        .parse()
        .expect("derived names are valid")
    }

    /// The mx patterns the domain's policy lists at `date`.
    pub fn policy_patterns(&self, spec: &DomainSpec, date: SimDate) -> Vec<MxPattern> {
        if spec.lucidgrow && in_window(date, LUCIDGROW_WINDOW) {
            // The January incident: the DMARCReport-hosted policy lists the
            // provider's base MX, matching none of the per-customer hosts.
            return vec![MxPattern::parse("mx.lucidgrow.com").expect("valid")];
        }
        let actual = self.effective_mx_hosts(spec, date);
        let Some(inc) = &spec.faults.inconsistency else {
            return actual
                .iter()
                .map(|h| MxPattern::parse(&h.to_string()).expect("hosts are valid patterns"))
                .collect();
        };
        if let Some(migration) = inc.stale_migration {
            // The policy always lists the legacy MX; before the migration
            // that is also the live MX (consistent), after it the real MXes
            // moved on (Figure 9's stale share).
            let _ = migration;
            return vec![MxPattern::parse(&self.legacy_mx_of(spec).to_string()).expect("valid")];
        }
        let first = actual
            .first()
            .cloned()
            .unwrap_or_else(|| self.legacy_mx_of(spec));
        let pattern = match inc.kind {
            InconsistencyKind::CompleteDomain => {
                // Keep the actual MX's TLD: the paper's complete-domain
                // class is "entirely different domain", not a TLD swap.
                format!("mx.obsolete-{}.{}", spec.name.leftmost(), first.tld())
            }
            InconsistencyKind::ThirdLabel => {
                if inc.stray_label {
                    // The paper's signature misreading: the mta-sts label
                    // inside the pattern.
                    let esld = first.effective_sld().unwrap_or_else(|| first.clone());
                    format!("mta-sts.{esld}")
                } else {
                    format!("extra.{first}")
                }
            }
            InconsistencyKind::Typo => typo_of(&first),
            InconsistencyKind::Tld => swap_tld(&first),
        };
        vec![MxPattern::parse(&pattern).expect("generated patterns are valid")]
    }

    /// The effective policy mode at `date`.
    pub fn effective_mode(&self, spec: &DomainSpec, date: SimDate) -> Mode {
        if spec.lucidgrow && in_window(date, LUCIDGROW_WINDOW) {
            Mode::Enforce
        } else {
            spec.mode
        }
    }

    /// The effective policy-server fault at `date` (incident windows and
    /// the Figure 6 fix cohort are date-dependent).
    pub fn effective_policy_fault(
        &self,
        spec: &DomainSpec,
        date: SimDate,
    ) -> Option<PolicyFaultKind> {
        if spec.june8_victim && in_window(date, JUNE8_WINDOW) {
            return Some(PolicyFaultKind::TlsSelfSigned);
        }
        spec.faults.policy
    }

    /// The effective MX certificate fault at `date`.
    pub fn effective_mx_fault(
        &self,
        spec: &DomainSpec,
        date: SimDate,
    ) -> Option<(MxCertFaultKind, MxFaultScope)> {
        let fault = spec.faults.mx_cert?;
        if spec.faults.mx_cn_fixed_at_latest && date >= self.config.end {
            // The 270-domain cohort fixed their mismatch by the final scan.
            return None;
        }
        Some(fault)
    }

    // ------------------------------------------------------------------
    // Infrastructure.
    // ------------------------------------------------------------------

    pub(crate) fn install_infra(
        &self,
        world: &World,
        now: SimInstant,
        detail: SnapshotDetail,
    ) -> Infra {
        let full = detail == SnapshotDetail::Full;
        let mut policy_ip = HashMap::new();
        let mut mail_ip = HashMap::new();
        let mut mail_faulty_ip = HashMap::new();

        // Policy-hosting platforms.
        for provider in &self.policy_providers {
            let base = provider.base_domain();
            world.ensure_zone(&base);
            let ip = if full {
                world.add_web_endpoint(WebEndpoint::up())
            } else {
                world.alloc_ip()
            };
            policy_ip.insert(provider.key.to_string(), ip);
        }
        // Misc (classifiable) and small (unclassifiable) policy hosts.
        for i in 0..crate::calib::MISC_THIRD_PARTY_PROVIDERS {
            let base: DomainName = format!("polhost{i}.net").parse().expect("valid");
            world.ensure_zone(&base);
            let ip = if full {
                world.add_web_endpoint(WebEndpoint::up())
            } else {
                world.alloc_ip()
            };
            policy_ip.insert(format!("misc{i}"), ip);
        }
        for i in 0..self.population.small_policy_providers {
            let base: DomainName = format!("smallpol{i}.net").parse().expect("valid");
            world.ensure_zone(&base);
            let ip = if full {
                world.add_web_endpoint(WebEndpoint::up())
            } else {
                world.alloc_ip()
            };
            policy_ip.insert(format!("small{i}"), ip);
        }

        // Mail platforms.
        for provider in &self.mail_providers {
            let base: DomainName = provider.base.parse().expect("static");
            world.ensure_zone(&base);
            let chain_names: Vec<DomainName> = match provider.mx_style {
                MxStyle::Shared(host) => vec![host.parse().expect("static")],
                MxStyle::PerCustomerSharedIp(suffix) | MxStyle::PerCustomer(suffix) => {
                    vec![format!("*.{suffix}").parse().expect("valid wildcard")]
                }
            };
            let ip = if full {
                let chain = world.pki.issue(&CertKind::Valid, &chain_names, now);
                world.add_mx_endpoint(MxEndpoint::healthy(chain_names[0].clone(), chain))
            } else {
                world.alloc_ip()
            };
            mail_ip.insert(provider.key.to_string(), ip);
            // Shared hostnames get their A record now.
            if let MxStyle::Shared(host) = provider.mx_style {
                let host: DomainName = host.parse().expect("static");
                let zone_apex = host.effective_sld().unwrap_or_else(|| base.clone());
                world.ensure_zone(&zone_apex);
                world.with_zone(&zone_apex, |z| {
                    z.add_rr(&host, TTL, RecordData::A(ip));
                });
            }
            // Faulty sibling endpoints for per-customer-hostname providers.
            if full
                && matches!(
                    provider.mx_style,
                    MxStyle::PerCustomerSharedIp(_) | MxStyle::PerCustomer(_)
                )
            {
                for kind in [
                    MxCertFaultKind::CnMismatch,
                    MxCertFaultKind::SelfSigned,
                    MxCertFaultKind::Expired,
                ] {
                    let cert_kind = match kind {
                        MxCertFaultKind::CnMismatch => CertKind::WrongName(base.clone()),
                        MxCertFaultKind::SelfSigned => CertKind::SelfSigned,
                        MxCertFaultKind::Expired => CertKind::Expired,
                    };
                    let chain = world.pki.issue(&cert_kind, &chain_names, now);
                    let ip =
                        world.add_mx_endpoint(MxEndpoint::healthy(chain_names[0].clone(), chain));
                    mail_faulty_ip.insert((provider.key.to_string(), kind), ip);
                }
            }
        }
        // Small mail providers.
        for i in 0..self.population.small_mail_providers {
            let base: DomainName = format!("smallmx{i}.net").parse().expect("valid");
            world.ensure_zone(&base);
            let host = base.prefixed("in").expect("static label");
            let ip = if full {
                let chain = world
                    .pki
                    .issue(&CertKind::Valid, std::slice::from_ref(&host), now);
                world.add_mx_endpoint(MxEndpoint::healthy(host.clone(), chain))
            } else {
                world.alloc_ip()
            };
            world.with_zone(&base, |z| {
                z.add_rr(&host, TTL, RecordData::A(ip));
            });
            mail_ip.insert(format!("small{i}"), ip);
            // Faulty sibling (wildcardless: a second endpoint with a bad
            // cert for the same host).
            if full {
                for kind in [
                    MxCertFaultKind::CnMismatch,
                    MxCertFaultKind::SelfSigned,
                    MxCertFaultKind::Expired,
                ] {
                    let cert_kind = match kind {
                        MxCertFaultKind::CnMismatch => CertKind::WrongName(base.clone()),
                        MxCertFaultKind::SelfSigned => CertKind::SelfSigned,
                        MxCertFaultKind::Expired => CertKind::Expired,
                    };
                    let chain = world
                        .pki
                        .issue(&cert_kind, std::slice::from_ref(&host), now);
                    let ip = world.add_mx_endpoint(MxEndpoint::healthy(host.clone(), chain));
                    mail_faulty_ip.insert((format!("small{i}"), kind), ip);
                }
            }
        }

        // mxascen: one administrator, shared MX + two shared policy IPs.
        let mxascen_base: DomainName = "mxascen.com".parse().expect("static");
        world.ensure_zone(&mxascen_base);
        let mxascen_host: DomainName = crate::providers::MXASCEN_MX.parse().expect("static");
        let mxascen_mx = if full {
            let chain = world
                .pki
                .issue(&CertKind::Valid, std::slice::from_ref(&mxascen_host), now);
            world.add_mx_endpoint(MxEndpoint::healthy(mxascen_host.clone(), chain))
        } else {
            world.alloc_ip()
        };
        world.with_zone(&mxascen_base, |z| {
            z.add_rr(&mxascen_host, TTL, RecordData::A(mxascen_mx));
        });
        let mxascen_web = if full {
            [
                world.add_web_endpoint(WebEndpoint::up()),
                world.add_web_endpoint(WebEndpoint::up()),
            ]
        } else {
            [world.alloc_ip(), world.alloc_ip()]
        };

        // Porkbun parking host: serves one default certificate (its own
        // name) for every SNI — a CN mismatch for each parked domain.
        let porkbun_ip = if full {
            let mut parking = WebEndpoint::up();
            let parking_name: DomainName = "parking.porkbun-host.com".parse().expect("static");
            parking.default_chain = Some(world.pki.issue(&CertKind::Valid, &[parking_name], now));
            world.add_web_endpoint(parking)
        } else {
            world.alloc_ip()
        };

        let _ = mxascen_mx; // the shared A record above is its only consumer
        Infra {
            policy_ip,
            dead_ip: world.alloc_ip(),
            mail_ip,
            mail_faulty_ip,
            mxascen_web,
            porkbun_ip,
            shared_a_done: HashSet::new(),
        }
    }

    // ------------------------------------------------------------------
    // Per-domain installation.
    // ------------------------------------------------------------------

    pub(crate) fn install_domain(
        &self,
        world: &World,
        infra: &mut Infra,
        spec: &DomainSpec,
        index: usize,
        date: SimDate,
        detail: SnapshotDetail,
    ) {
        let full = detail == SnapshotDetail::Full;
        let now = date.at_midnight();
        world.ensure_zone(&spec.name);

        // ---- MX records and endpoints -----------------------------------
        let mx_hosts = self.effective_mx_hosts(spec, date);
        let mx_fault = self.effective_mx_fault(spec, date);
        world.with_zone(&spec.name, |z| {
            for (i, host) in mx_hosts.iter().enumerate() {
                z.add_rr(
                    &spec.name,
                    TTL,
                    RecordData::Mx {
                        preference: (i as u16 + 1) * 10,
                        exchange: host.clone(),
                    },
                );
            }
        });
        let legacy_active = spec
            .faults
            .inconsistency
            .as_ref()
            .and_then(|i| i.stale_migration)
            .map(|m| date < m)
            .unwrap_or(false);
        let self_hosted_mx = mx_hosts.iter().any(|h| h.is_subdomain_of(&spec.name));
        if self_hosted_mx || legacy_active {
            // Endpoints + A records, in the domain's own zone (self-hosted)
            // or the legacy provider's zone (pre-migration stale domains).
            for (i, host) in mx_hosts.iter().enumerate() {
                let faulty = match mx_fault {
                    Some((_, MxFaultScope::All)) => true,
                    Some((_, MxFaultScope::Partial)) => i == 0,
                    None => false,
                };
                // MX endpoints live in the domain's slots 1..=3.
                let ip = Self::domain_ip(index, 1 + i as u8);
                if full {
                    let cert_kind = match (faulty, mx_fault) {
                        (true, Some((MxCertFaultKind::CnMismatch, _))) => {
                            CertKind::WrongName(spec.name.clone())
                        }
                        (true, Some((MxCertFaultKind::SelfSigned, _))) => CertKind::SelfSigned,
                        (true, Some((MxCertFaultKind::Expired, _))) => CertKind::Expired,
                        _ => CertKind::Valid,
                    };
                    let chain = world.pki.issue(&cert_kind, std::slice::from_ref(host), now);
                    world.put_mx_endpoint(ip, MxEndpoint::healthy(host.clone(), chain));
                }
                let zone_apex = if host.is_subdomain_of(&spec.name) {
                    spec.name.clone()
                } else {
                    host.effective_sld().expect("legacy hosts have an eSLD")
                };
                world.ensure_zone(&zone_apex);
                world.with_zone(&zone_apex, |z| {
                    z.add_rr(host, TTL, RecordData::A(ip));
                });
            }
        } else {
            // Provider-hosted: per-customer hostnames need A records in the
            // provider zone, pointing at the healthy or faulty endpoint.
            let provider_key = match &spec.mail {
                MailHosting::Provider { key } => key.to_string(),
                MailHosting::SmallProvider { idx } => format!("small{idx}"),
                MailHosting::Mxascen => String::new(), // shared A already set
                MailHosting::SelfManaged { .. } => unreachable!("handled above"),
            };
            if !provider_key.is_empty() {
                let target_ip = match mx_fault {
                    Some((kind, _)) => infra
                        .mail_faulty_ip
                        .get(&(provider_key.clone(), kind))
                        .copied()
                        .unwrap_or_else(|| infra.mail_ip[&provider_key]),
                    None => infra.mail_ip[&provider_key],
                };
                for host in &mx_hosts {
                    if infra.shared_a_done.contains(host) {
                        continue;
                    }
                    let zone_apex = host.effective_sld().expect("provider hosts have an eSLD");
                    world.ensure_zone(&zone_apex);
                    let installed = world.with_zone(&zone_apex, |z| {
                        if z.get(host, dns::RecordType::A).is_empty() {
                            z.add_rr(host, TTL, RecordData::A(target_ip));
                            true
                        } else {
                            false
                        }
                    });
                    if installed {
                        infra.shared_a_done.insert(host.clone());
                    }
                }
            }
        }

        // ---- NS records (the §4.3.1 DNS-hosting signal) -------------------
        world.with_zone(&spec.name, |z| {
            if spec.dns_self_hosted {
                for i in 1..=2u8 {
                    z.add_rr(
                        &spec.name,
                        TTL,
                        RecordData::Ns(
                            spec.name.prefixed(&format!("ns{i}")).expect("static label"),
                        ),
                    );
                }
            } else {
                // A handful of DNS providers, each serving many domains.
                let provider = spec.name.to_string().len() % 6;
                for i in 1..=2u8 {
                    z.add_rr(
                        &spec.name,
                        TTL,
                        RecordData::Ns(
                            format!("ns{i}.dnshost{provider}.net")
                                .parse()
                                .expect("valid"),
                        ),
                    );
                }
            }
        });

        // ---- the _mta-sts record ----------------------------------------
        let record_texts = record_texts(spec);
        world.with_zone(&spec.name, |z| {
            let label = spec.name.prefixed("_mta-sts").expect("static label");
            for text in &record_texts {
                z.add_rr(&label, TTL, RecordData::Txt(vec![text.clone()]));
            }
        });

        // ---- TLSRPT -------------------------------------------------------
        if spec.tlsrpt.is_some_and(|d| d <= date) {
            world.with_zone(&spec.name, |z| {
                let label = spec
                    .name
                    .prefixed("_tls")
                    .and_then(|n| n.prefixed("_smtp"))
                    .expect("static labels");
                z.add_rr(
                    &label,
                    TTL,
                    RecordData::Txt(vec![format!(
                        "v=TLSRPTv1; rua=mailto:tls-reports@{}",
                        spec.name
                    )]),
                );
            });
        }

        // ---- the policy host ---------------------------------------------
        let policy_fault = self.effective_policy_fault(spec, date);
        let policy_host = spec.name.prefixed("mta-sts").expect("static label");
        let document = self.policy_document(spec, date, policy_fault);

        match &spec.policy {
            PolicyHosting::SelfManaged => {
                if policy_fault == Some(PolicyFaultKind::Dns) {
                    return; // no A record at all
                }
                // The self-managed policy server is the domain's slot 0.
                let ip = Self::domain_ip(index, 0);
                if full {
                    let endpoint = self.self_web_endpoint(
                        world,
                        spec,
                        &policy_host,
                        now,
                        policy_fault,
                        &document,
                    );
                    world.put_web_endpoint(ip, endpoint);
                }
                world.with_zone(&spec.name, |z| {
                    z.add_rr(&policy_host, TTL, RecordData::A(ip));
                });
            }
            PolicyHosting::Porkbun => {
                world.with_zone(&spec.name, |z| {
                    z.add_rr(&policy_host, TTL, RecordData::A(infra.porkbun_ip));
                });
            }
            PolicyHosting::Mxascen => {
                if policy_fault == Some(PolicyFaultKind::Dns) {
                    return; // no A record at all
                }
                let ip = if matches!(
                    policy_fault,
                    Some(PolicyFaultKind::TcpRefused | PolicyFaultKind::TcpTimeout)
                ) {
                    infra.dead_ip
                } else {
                    infra.mxascen_web[spec.name.to_string().len() % 2]
                };
                world.with_zone(&spec.name, |z| {
                    z.add_rr(&policy_host, TTL, RecordData::A(ip));
                });
                if full && ip != infra.dead_ip {
                    self.install_provider_customer(
                        world,
                        ip,
                        spec,
                        &policy_host,
                        now,
                        policy_fault,
                        &document,
                    );
                }
            }
            PolicyHosting::Provider { key } => {
                let provider = self.policy_provider(key).expect("known provider");
                let target = provider.cname_target(&spec.name);
                self.install_delegation(
                    world,
                    infra,
                    spec,
                    &policy_host,
                    &target,
                    key,
                    now,
                    policy_fault,
                    &document,
                    full,
                );
            }
            PolicyHosting::MiscProvider { idx } => {
                let target: DomainName =
                    format!("{}.polhost{idx}.net", spec.name.labels().join("-"))
                        .parse()
                        .expect("valid");
                let key = format!("misc{idx}");
                self.install_delegation(
                    world,
                    infra,
                    spec,
                    &policy_host,
                    &target,
                    &key,
                    now,
                    policy_fault,
                    &document,
                    full,
                );
            }
            PolicyHosting::SmallProvider { idx } => {
                let target: DomainName =
                    format!("{}.smallpol{idx}.net", spec.name.labels().join("-"))
                        .parse()
                        .expect("valid");
                let key = format!("small{idx}");
                self.install_delegation(
                    world,
                    infra,
                    spec,
                    &policy_host,
                    &target,
                    &key,
                    now,
                    policy_fault,
                    &document,
                    full,
                );
            }
        }
    }

    /// CNAME delegation: record in the customer zone, A record for the
    /// target in the provider zone, per-customer certificate + document on
    /// the provider endpoint.
    #[allow(clippy::too_many_arguments)]
    fn install_delegation(
        &self,
        world: &World,
        infra: &mut Infra,
        spec: &DomainSpec,
        policy_host: &DomainName,
        target: &DomainName,
        provider_key: &str,
        now: SimInstant,
        policy_fault: Option<PolicyFaultKind>,
        document: &Option<(u16, String)>,
        full: bool,
    ) {
        world.with_zone(&spec.name, |z| {
            z.add_rr(policy_host, TTL, RecordData::Cname(target.clone()));
        });
        // TCP faults route the customer to a dead edge node.
        let endpoint_ip = if matches!(
            policy_fault,
            Some(PolicyFaultKind::TcpRefused | PolicyFaultKind::TcpTimeout)
        ) {
            infra.dead_ip
        } else {
            infra.policy_ip[provider_key]
        };
        // A record for the CNAME target in the provider zone (shared
        // targets only once).
        if !infra.shared_a_done.contains(target) {
            let zone_apex = target
                .effective_sld()
                .expect("provider targets have an eSLD");
            world.ensure_zone(&zone_apex);
            let installed = world.with_zone(&zone_apex, |z| {
                if z.get(target, dns::RecordType::A).is_empty() {
                    z.add_rr(target, TTL, RecordData::A(endpoint_ip));
                    true
                } else {
                    false
                }
            });
            if installed {
                infra.shared_a_done.insert(target.clone());
            }
        }
        if full && endpoint_ip != infra.dead_ip {
            self.install_provider_customer(
                world,
                endpoint_ip,
                spec,
                policy_host,
                now,
                policy_fault,
                document,
            );
        }
    }

    /// Installs one customer's certificate + document on a shared endpoint.
    #[allow(clippy::too_many_arguments)]
    fn install_provider_customer(
        &self,
        world: &World,
        ip: Ipv4Addr,
        spec: &DomainSpec,
        policy_host: &DomainName,
        now: SimInstant,
        policy_fault: Option<PolicyFaultKind>,
        document: &Option<(u16, String)>,
    ) {
        let cert_kind = match policy_fault {
            Some(PolicyFaultKind::TlsNoCert) => None, // nothing installed: SSL alert
            Some(PolicyFaultKind::TlsExpired) => Some(CertKind::Expired),
            Some(PolicyFaultKind::TlsSelfSigned) => Some(CertKind::SelfSigned),
            Some(PolicyFaultKind::TlsCnMismatch) => Some(CertKind::WrongName(spec.name.clone())),
            _ => Some(CertKind::Valid),
        };
        world.with_web(ip, |ep| {
            if let Some(kind) = cert_kind {
                let chain = world
                    .pki
                    .issue(&kind, std::slice::from_ref(policy_host), now);
                ep.install_chain(policy_host.clone(), chain);
            }
            if let Some((status, body)) = document {
                ep.install_document(policy_host.clone(), mtasts::WELL_KNOWN_PATH, *status, body);
            }
        });
    }

    /// Builds a self-managed policy endpoint with the fault applied.
    fn self_web_endpoint(
        &self,
        world: &World,
        spec: &DomainSpec,
        policy_host: &DomainName,
        now: SimInstant,
        policy_fault: Option<PolicyFaultKind>,
        document: &Option<(u16, String)>,
    ) -> WebEndpoint {
        let mut endpoint = WebEndpoint::up();
        match policy_fault {
            Some(PolicyFaultKind::TcpRefused) => {
                endpoint.reachability = simnet::endpoint::Reachability::Refused;
                return endpoint;
            }
            Some(PolicyFaultKind::TcpTimeout) => {
                endpoint.reachability = simnet::endpoint::Reachability::Timeout;
                return endpoint;
            }
            _ => {}
        }
        let cert_kind = match policy_fault {
            Some(PolicyFaultKind::TlsNoCert) => None,
            Some(PolicyFaultKind::TlsExpired) => Some(CertKind::Expired),
            Some(PolicyFaultKind::TlsSelfSigned) => Some(CertKind::SelfSigned),
            Some(PolicyFaultKind::TlsCnMismatch) => Some(CertKind::WrongName(spec.name.clone())),
            _ => Some(CertKind::Valid),
        };
        if let Some(kind) = cert_kind {
            let chain = world
                .pki
                .issue(&kind, std::slice::from_ref(policy_host), now);
            endpoint.install_chain(policy_host.clone(), chain);
        }
        if let Some((status, body)) = document {
            endpoint.install_document(policy_host.clone(), mtasts::WELL_KNOWN_PATH, *status, body);
        }
        endpoint
    }

    /// The document served for a domain at `date`, or `None` for 404.
    fn policy_document(
        &self,
        spec: &DomainSpec,
        date: SimDate,
        policy_fault: Option<PolicyFaultKind>,
    ) -> Option<(u16, String)> {
        match policy_fault {
            Some(PolicyFaultKind::Http404) => return None,
            Some(PolicyFaultKind::Http500) => {
                return Some((500, "internal server error\n".to_string()))
            }
            Some(PolicyFaultKind::SyntaxEmpty) => return Some((200, String::new())),
            Some(PolicyFaultKind::SyntaxBadMx) => {
                // The paper's observed invalid patterns: an email address.
                let body = format!(
                    "version: STSv1\r\nmode: {}\r\nmx: postmaster@mx1.{}\r\nmax_age: {}\r\n",
                    self.effective_mode(spec, date),
                    spec.name,
                    spec.max_age
                );
                return Some((200, body));
            }
            _ => {}
        }
        let policy = Policy {
            mode: self.effective_mode(spec, date),
            max_age: spec.max_age,
            mx: self.policy_patterns(spec, date),
            extensions: Vec::new(),
        };
        Some((200, policy.to_document()))
    }
}

/// The record TXT strings for a domain, faults applied (§4.3.2).
pub(crate) fn record_texts(spec: &DomainSpec) -> Vec<String> {
    let good_id = format!("a{}", spec.adopted.days_since_epoch());
    match spec.faults.record {
        None => vec![format!("v=STSv1; id={good_id};")],
        Some(RecordFaultKind::MissingId) => vec!["v=STSv1;".to_string()],
        Some(RecordFaultKind::InvalidId) => {
            vec![format!("v=STSv1; id={};", spec.adopted)] // dashes: 2024-01-31
        }
        Some(RecordFaultKind::BadVersion) => vec![format!("v=STSV1; id={good_id};")],
        Some(RecordFaultKind::BadExtension) => {
            vec![format!("v=STSv1; id={good_id}; mx: a.com; mode: testing;")]
        }
        Some(RecordFaultKind::MultipleRecords) => vec![
            format!("v=STSv1; id={good_id};"),
            format!("v=STSv1; id={good_id}b;"),
        ],
    }
}

/// Mutates a hostname into a 1-edit typo within the same TLD.
fn typo_of(host: &DomainName) -> String {
    let mut labels: Vec<String> = host.labels().to_vec();
    // Rotate the first alphanumeric character of the leftmost label.
    let rotated: String = {
        let mut done = false;
        labels[0]
            .chars()
            .map(|c| {
                if done {
                    return c;
                }
                let new = match c {
                    'a'..='y' => ((c as u8) + 1) as char,
                    'z' => 'a',
                    '0'..='8' => ((c as u8) + 1) as char,
                    '9' => '0',
                    other => return other,
                };
                done = true;
                new
            })
            .collect()
    };
    labels[0] = rotated;
    labels.join(".")
}

/// Swaps the TLD of a hostname (com↔net, org↔com, se↔nu).
fn swap_tld(host: &DomainName) -> String {
    let mut labels: Vec<String> = host.labels().to_vec();
    let last = labels.last_mut().expect("non-empty");
    *last = match last.as_str() {
        "com" => "net".to_string(),
        "net" => "com".to_string(),
        "org" => "com".to_string(),
        "se" => "nu".to_string(),
        other => format!("x{other}"),
    };
    labels.join(".")
}

/// Whether `date` falls inside an inclusive window.
pub(crate) fn in_window(date: SimDate, window: (SimDate, SimDate)) -> bool {
    date >= window.0 && date <= window.1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eco() -> Ecosystem {
        Ecosystem::generate(EcosystemConfig::paper(42, 0.02))
    }

    #[test]
    fn world_grows_with_time() {
        let eco = eco();
        let early = eco.world_at(SimDate::ymd(2021, 10, 1), SnapshotDetail::DnsOnly);
        let late = eco.world_at(SimDate::ymd(2024, 9, 29), SnapshotDetail::DnsOnly);
        let early_count = eco.domains_at(SimDate::ymd(2021, 10, 1)).count();
        let late_count = eco.domains_at(SimDate::ymd(2024, 9, 29)).count();
        assert!(
            late_count > early_count * 3,
            "{early_count} -> {late_count}"
        );
        assert!(late.authorities.zone_count() > early.authorities.zone_count());
    }

    #[test]
    fn healthy_domain_is_fully_resolvable_and_valid() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let now = date.at_midnight();
        let world = eco.world_at(date, SnapshotDetail::Full);
        // Find a clean, adopted, self-managed domain.
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| {
                d.adopted_by(date)
                    && d.faults.is_clean()
                    && d.policy == PolicyHosting::SelfManaged
                    && matches!(d.mail, MailHosting::SelfManaged { .. })
            })
            .expect("a clean self-managed domain exists");
        // Record parses.
        let txts = world.mta_sts_txts(&spec.name, now).unwrap();
        let record = mtasts::evaluate_record_set(&txts).unwrap();
        assert!(!record.id.is_empty());
        // Policy fetches and matches the MX records.
        let outcome = world.fetch_policy(&spec.name, now);
        let (policy, _) = outcome.result.expect("clean domain fetch succeeds");
        let mx = world.mx_records(&spec.name, now).unwrap();
        assert!(!mx.is_empty());
        for host in &mx {
            assert!(mtasts::mx_matches_policy(host, &policy), "{host}");
            let probe = world.probe_mx(host, now);
            assert_eq!(
                probe.cert_verdict(host, now, world.pki.trust_store()),
                Some(Ok(())),
                "{host}"
            );
        }
    }

    #[test]
    fn faulty_domains_manifest_their_faults() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let now = date.at_midnight();
        let world = eco.world_at(date, SnapshotDetail::Full);
        let mut checked = 0;
        for spec in eco.domains_at(date) {
            let Some(fault) = eco.effective_policy_fault(spec, date) else {
                continue;
            };
            if checked > 50 {
                break;
            }
            let outcome = world.fetch_policy(&spec.name, now);
            let err = match outcome.result {
                Err(e) => e,
                Ok(_) => panic!("{}: fault {fault:?} did not manifest", spec.name),
            };
            let expected_layer = match fault {
                PolicyFaultKind::Dns => "dns",
                PolicyFaultKind::TcpRefused | PolicyFaultKind::TcpTimeout => "tcp",
                PolicyFaultKind::TlsCnMismatch
                | PolicyFaultKind::TlsSelfSigned
                | PolicyFaultKind::TlsExpired
                | PolicyFaultKind::TlsNoCert => "tls",
                PolicyFaultKind::Http404 | PolicyFaultKind::Http500 => "http",
                PolicyFaultKind::SyntaxBadMx | PolicyFaultKind::SyntaxEmpty => "policy-syntax",
            };
            assert_eq!(
                err.layer(),
                expected_layer,
                "{}: {fault:?} vs {err}",
                spec.name
            );
            checked += 1;
        }
        assert!(checked > 10, "too few faulty domains exercised: {checked}");
    }

    #[test]
    fn porkbun_parking_manifests_cn_mismatch() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| d.is_porkbun() && d.adopted_by(date))
            .expect("porkbun domains adopted by the end");
        let outcome = world.fetch_policy(&spec.name, date.at_midnight());
        assert!(
            matches!(
                outcome.result,
                Err(simnet::PolicyFetchError::Tls(simnet::TlsFailure::Cert(
                    pkix::CertError::NameMismatch { .. }
                )))
            ),
            "{:?}",
            outcome.result
        );
    }

    #[test]
    fn lucidgrow_incident_window_manifests() {
        let eco = eco();
        let incident = SimDate::ymd(2024, 1, 23);
        let after = SimDate::ymd(2024, 3, 7);
        let world = eco.world_at(incident, SnapshotDetail::Full);
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| d.lucidgrow && d.adopted_by(incident))
            .expect("lucidgrow domains adopted by January 2024");
        // During the window: policy mismatches the per-customer MX, enforce.
        let outcome = world.fetch_policy(&spec.name, incident.at_midnight());
        let (policy, _) = outcome.result.expect("policy is served");
        assert_eq!(policy.mode, Mode::Enforce);
        let mx = world
            .mx_records(&spec.name, incident.at_midnight())
            .unwrap();
        assert!(!mx.iter().any(|h| mtasts::mx_matches_policy(h, &policy)));
        // After the window: consistent again.
        let world2 = eco.world_at(after, SnapshotDetail::Full);
        let outcome2 = world2.fetch_policy(&spec.name, after.at_midnight());
        let (policy2, _) = outcome2.result.expect("policy is served");
        let mx2 = world2.mx_records(&spec.name, after.at_midnight()).unwrap();
        assert!(mx2.iter().all(|h| mtasts::mx_matches_policy(h, &policy2)));
    }

    #[test]
    fn stale_migration_flips_consistency() {
        let eco = eco();
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| {
                d.faults
                    .inconsistency
                    .as_ref()
                    .is_some_and(|i| i.stale_migration.is_some())
            })
            .expect("stale-policy domains exist");
        let migration = spec
            .faults
            .inconsistency
            .as_ref()
            .unwrap()
            .stale_migration
            .unwrap();
        let before = migration.add_days(-7).max(spec.adopted);
        let after = migration.add_days(7);
        if before >= migration || after > eco.config.end {
            return; // degenerate scheduling at tiny scales
        }
        let hosts_before = eco.effective_mx_hosts(spec, before);
        let patterns = eco.policy_patterns(spec, before);
        assert!(hosts_before
            .iter()
            .all(|h| patterns.iter().any(|p| p.matches(h))));
        let hosts_after = eco.effective_mx_hosts(spec, after);
        let patterns_after = eco.policy_patterns(spec, after);
        assert!(!hosts_after
            .iter()
            .any(|h| patterns_after.iter().any(|p| p.matches(h))));
    }

    #[test]
    fn delegated_domains_expose_cname_chains() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::Full);
        let spec = eco
            .population
            .domains
            .iter()
            .find(|d| {
                d.adopted_by(date)
                    && d.policy == (PolicyHosting::Provider { key: "dmarcreport" })
                    && d.faults.policy.is_none()
                    && !d.lucidgrow
            })
            .expect("healthy dmarcreport customers exist");
        let outcome = world.fetch_policy(&spec.name, date.at_midnight());
        assert!(outcome.result.is_ok(), "{:?}", outcome.result);
        assert!(
            outcome.cname_chain[0].is_subdomain_of(&"dmarcinput.com".parse().unwrap()),
            "{:?}",
            outcome.cname_chain
        );
    }

    #[test]
    fn dns_only_worlds_skip_endpoints_but_serve_records() {
        let eco = eco();
        let date = SimDate::ymd(2024, 9, 29);
        let world = eco.world_at(date, SnapshotDetail::DnsOnly);
        assert!(world.web_ips().is_empty());
        assert!(world.mx_ips().is_empty());
        let spec = eco
            .domains_at(date)
            .find(|d| d.faults.record.is_none())
            .unwrap();
        assert!(
            world.mta_sts_txts(&spec.name, date.at_midnight()).unwrap()[0].starts_with("v=STSv1")
        );
    }

    #[test]
    fn typo_and_tld_helpers() {
        let host: DomainName = "mx1.example.com".parse().unwrap();
        let typo = typo_of(&host);
        assert_ne!(typo, host.to_string());
        assert_eq!(netbase::levenshtein(&typo, &host.to_string()), 1);
        assert_eq!(swap_tld(&host), "mx1.example.net");
    }
}
