//! `ecosystem` — the seeded synthetic Internet population.
//!
//! The paper scans 87M registered domains across `.com`, `.net`, `.org`
//! and `.se` for three years. This crate generates the stand-in
//! population: every domain that ever publishes an MTA-STS record is
//! materialized as a [`spec::DomainSpec`] (adoption date, hosting
//! arrangement, fault profile, incident memberships), while the vast
//! non-adopting majority is carried analytically as per-TLD denominators
//! ([`tld`]).
//!
//! Everything is derived deterministically from `(seed, scale)`:
//! regenerating with the same config yields byte-identical worlds, and
//! `scale` shrinks every absolute count for fast tests (experiments use
//! 1.0; unit tests use ~0.02).
//!
//! Calibration targets come straight from the paper's latest snapshot
//! (2024-09-29) and named incidents; see [`calib`] for the constants and
//! their sources, and EXPERIMENTS.md for measured-vs-paper tables.

pub mod calib;
pub mod config;
pub mod deploy;
pub mod fingerprint;
pub mod incremental;
pub mod providers;
pub mod spec;
pub mod timeline;
pub mod tld;

pub use config::{EcosystemConfig, ScaledAllocator, SnapshotDetail};
pub use deploy::Ecosystem;
pub use fingerprint::{DomainFingerprint, FingerprintContext};
pub use incremental::{AdvanceStats, IncrementalWorld};
pub use providers::{MailProvider, OptOutBehavior, PolicyProvider};
pub use spec::{
    DomainSpec, FaultProfile, MailHosting, PolicyHosting, Population, PopulationChunks,
    PopulationIndex, PopulationPlan,
};
pub use timeline::ChangeTimeline;
pub use tld::TldId;
