//! Wire deployment: the same world, on real sockets.
//!
//! [`WireWorld::deploy`] takes a [`World`] and stands it up on localhost —
//! an authoritative UDP DNS server for every zone, one HTTPS policy server
//! per web endpoint, one SMTP server per MX endpoint — and provides client
//! ladders ([`WireWorld::fetch_policy`], [`WireWorld::probe_mx`]) that
//! return the *same* outcome types as the fast path, so tests can assert
//! layer-for-layer agreement between the in-memory walk and the real
//! protocol stacks.
//!
//! Approximation: endpoints with `Reachability::Timeout` are simply not
//! deployed (localhost cannot swallow SYNs), so both timeout and refusal
//! surface as the TCP layer — the granularity Figure 5 uses anyway.

use crate::endpoint::{MxEndpoint, Reachability, TlsBehavior, WebEndpoint};
use crate::fetch::{MxProbeOutcome, PolicyFetchError, PolicyFetchOutcome, TlsFailure};
use crate::world::World;
use dns::server::AuthServer;
use dns::{RecordType, Resolver, UdpTransport};
use httpsim::{HttpsServer, Router, StatusCode};
use mtasts::parse_policy;
use netbase::{DomainName, SimInstant};
use parking_lot::{Mutex, RwLock};
use pkix::validate_chain;
use smtp::{MxConfig, MxServer, ProbeConfig};
use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration as StdDuration;
use tlssim::{ServerBehavior, ServerConfig, ServerIdentity};
use tokio::net::TcpStream;

/// A deployed world: socket addresses per simulated IP.
pub struct WireWorld {
    /// The authoritative DNS server's address.
    pub dns_addr: SocketAddr,
    web_addrs: HashMap<Ipv4Addr, SocketAddr>,
    mx_addrs: HashMap<Ipv4Addr, SocketAddr>,
    dns_server: Option<AuthServer>,
    https_servers: Vec<HttpsServer>,
    mx_servers: Vec<MxServer>,
}

/// Builds the TLS server config for a web endpoint.
fn web_tls_config(endpoint: &WebEndpoint) -> ServerConfig {
    let mut identity = ServerIdentity::empty();
    for (sni, chain) in &endpoint.chains {
        identity.install(sni.clone(), chain.clone());
    }
    if let Some(default) = &endpoint.default_chain {
        identity.set_default(default.clone());
    }
    ServerConfig {
        identity,
        behavior: match endpoint.tls_behavior {
            TlsBehavior::Normal => ServerBehavior::Normal,
            TlsBehavior::Refuse => ServerBehavior::RefuseHandshake,
            TlsBehavior::Abort => ServerBehavior::AbruptClose,
        },
        nonce: 0x5EED,
        dh_secret: 0xD0_5EC2E7,
    }
}

/// Builds the SMTP server config for an MX endpoint.
fn mx_config(endpoint: &MxEndpoint) -> MxConfig {
    let tls = endpoint.starttls.then(|| {
        let mut identity = ServerIdentity::empty();
        identity.install(endpoint.hostname.clone(), endpoint.chain.clone());
        ServerConfig {
            identity,
            behavior: ServerBehavior::Normal,
            nonce: 0x3A11,
            dh_secret: 0x5EC2E7,
        }
    });
    let mut config = MxConfig::new(endpoint.hostname.clone(), tls);
    if endpoint.hide_starttls {
        config.behavior = smtp::MxBehavior::HideStartTls;
    }
    if endpoint.helo_only {
        config.behavior = smtp::MxBehavior::HeloOnly;
    }
    if !endpoint.reject_rcpt_domains.is_empty() {
        config.recipient_policy =
            smtp::server::RecipientPolicy::RejectDomains(endpoint.reject_rcpt_domains.clone());
    }
    config
}

impl WireWorld {
    /// Deploys every reachable endpoint of `world` onto localhost sockets.
    pub async fn deploy(world: &World) -> std::io::Result<WireWorld> {
        let dns_server =
            AuthServer::spawn("127.0.0.1:0".parse().unwrap(), world.authorities.clone()).await?;
        let dns_addr = dns_server.addr();

        let mut web_addrs = HashMap::new();
        let mut https_servers = Vec::new();
        for ip in world.web_ips() {
            let endpoint = world.web_endpoint(ip).expect("listed ip exists");
            if endpoint.reachability != Reachability::Up {
                continue;
            }
            let router = Router::new();
            for ((host, path), (status, body)) in &endpoint.documents {
                router.route(
                    host.clone(),
                    path,
                    httpsim::Response::text(StatusCode(*status), body),
                );
            }
            let tls = Arc::new(RwLock::new(web_tls_config(&endpoint)));
            let server = HttpsServer::spawn("127.0.0.1:0".parse().unwrap(), tls, router).await?;
            web_addrs.insert(ip, server.addr());
            https_servers.push(server);
        }

        let mut mx_addrs = HashMap::new();
        let mut mx_servers = Vec::new();
        for ip in world.mx_ips() {
            let endpoint = world.mx_endpoint(ip).expect("listed ip exists");
            if endpoint.reachability != Reachability::Up {
                continue;
            }
            let config = Arc::new(Mutex::new(mx_config(&endpoint)));
            let server = MxServer::spawn("127.0.0.1:0".parse().unwrap(), config).await?;
            mx_addrs.insert(ip, server.addr());
            mx_servers.push(server);
        }

        Ok(WireWorld {
            dns_addr,
            web_addrs,
            mx_addrs,
            dns_server: Some(dns_server),
            https_servers,
            mx_servers,
        })
    }

    /// The localhost socket address serving the MX endpoint at simulated
    /// `ip`, if that endpoint was deployed (non-`Up` endpoints are not).
    pub fn mx_addr(&self, ip: Ipv4Addr) -> Option<SocketAddr> {
        self.mx_addrs.get(&ip).copied()
    }

    /// A copy of the whole simulated-IP → socket map for MX endpoints.
    /// Plain data (`Send`), so outbound-delivery transports can carry it
    /// onto blocking worker threads without borrowing the server handles.
    pub fn mx_addr_map(&self) -> HashMap<Ipv4Addr, SocketAddr> {
        self.mx_addrs.clone()
    }

    /// Stops every server.
    pub async fn shutdown(mut self) {
        if let Some(dns) = self.dns_server.take() {
            dns.shutdown().await;
        }
        for s in self.https_servers.drain(..) {
            s.shutdown().await;
        }
        for s in self.mx_servers.drain(..) {
            s.shutdown().await;
        }
    }

    /// Resolves a name over the real UDP DNS server.
    async fn wire_resolve(
        &self,
        name: DomainName,
        rtype: RecordType,
        now: SimInstant,
    ) -> Result<dns::Lookup, dns::DnsError> {
        let addr = self.dns_addr;
        tokio::task::spawn_blocking(move || {
            let resolver = Resolver::new(UdpTransport::new(addr, StdDuration::from_secs(2)));
            resolver.lookup(&name, rtype, now)
        })
        .await
        .expect("resolver task never panics")
    }

    /// The wire-path policy fetch: same ladder, real sockets.
    pub async fn fetch_policy(
        &self,
        world: &World,
        domain: &DomainName,
        now: SimInstant,
    ) -> PolicyFetchOutcome {
        let policy_host = domain
            .prefixed(mtasts::POLICY_HOST_LABEL)
            .expect("policy host label is valid");

        // Layer 1: DNS over UDP.
        let (addrs, cname_chain) = match self
            .wire_resolve(policy_host.clone(), RecordType::A, now)
            .await
        {
            Ok(lookup) => (lookup.a_addrs(), lookup.cname_chain),
            Err(e) => {
                let chain = self
                    .wire_resolve(policy_host.clone(), RecordType::Cname, now)
                    .await
                    .ok()
                    .map(|l| {
                        l.records
                            .iter()
                            .filter_map(|r| match &r.data {
                                dns::RecordData::Cname(t) => Some(t.clone()),
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                return PolicyFetchOutcome {
                    cname_chain: chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Dns(e.to_string())),
                };
            }
        };
        let Some(sim_ip) = addrs.first().copied() else {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: None,
                result: Err(PolicyFetchError::Dns("no A records".to_string())),
            };
        };

        // Layer 2: TCP connect.
        let Some(&addr) = self.web_addrs.get(&sim_ip) else {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: None,
                result: Err(PolicyFetchError::Tcp(format!(
                    "connection refused to {sim_ip}"
                ))),
            };
        };
        let socket = match TcpStream::connect(addr).await {
            Ok(s) => s,
            Err(e) => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tcp(e.to_string())),
                }
            }
        };

        // Layers 3-4: TLS + HTTP via the real client (opportunistic so the
        // chain is captured; validation happens offline below).
        let fetch = match httpsim::client::https_get(
            socket,
            tlssim::ClientConfig::opportunistic(policy_host.clone(), 0xC11E, 0xC11E_5EC2),
            mtasts::WELL_KNOWN_PATH,
        )
        .await
        {
            Ok(fetch) => fetch,
            Err(httpsim::client::HttpsError::Tls(e)) => {
                let failure = match &e {
                    tlssim::HandshakeError::PeerAlert(tlssim::Alert::UnrecognizedName) => {
                        TlsFailure::Cert(pkix::CertError::NoCertificate)
                    }
                    other => TlsFailure::Handshake(other.to_string()),
                };
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tls(failure)),
                };
            }
            Err(httpsim::client::HttpsError::Http(e)) => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tcp(format!("http transport: {e}"))),
                }
            }
        };

        // Offline strict validation (the scanner records invalid chains).
        if let Err(e) = validate_chain(
            &fetch.peer_chain,
            &policy_host,
            now,
            world.pki.trust_store(),
        ) {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(fetch.peer_chain),
                result: Err(PolicyFetchError::Tls(TlsFailure::Cert(e))),
            };
        }
        if fetch.response.status.0 != 200 {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(fetch.peer_chain),
                result: Err(PolicyFetchError::Http(fetch.response.status.0)),
            };
        }
        let body = fetch.response.body_text().unwrap_or_default().to_string();
        match parse_policy(&body) {
            Ok(policy) => PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(fetch.peer_chain),
                result: Ok((policy, body)),
            },
            Err(e) => PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(fetch.peer_chain),
                result: Err(PolicyFetchError::Syntax(e)),
            },
        }
    }

    /// The wire-path MX probe: the instrumented client over real TCP.
    pub async fn probe_mx(&self, mx_host: &DomainName, now: SimInstant) -> MxProbeOutcome {
        let unreachable = MxProbeOutcome {
            reachable: false,
            used_helo: false,
            starttls_offered: false,
            chain: None,
            tls_failure: None,
            tempfail: None,
        };
        let Ok(lookup) = self.wire_resolve(mx_host.clone(), RecordType::A, now).await else {
            return unreachable;
        };
        let Some(sim_ip) = lookup.a_addrs().first().copied() else {
            return unreachable;
        };
        let Some(&addr) = self.mx_addrs.get(&sim_ip) else {
            return unreachable;
        };
        let Ok(socket) = TcpStream::connect(addr).await else {
            return unreachable;
        };
        let config = ProbeConfig {
            helo_name: "scanner.mta-sts-lab.example".parse().expect("static name"),
            mx_hostname: mx_host.clone(),
            nonce: 0x9806,
            dh_secret: 0x9806_5EC2,
        };
        match smtp::probe_mx(socket, &config).await {
            Ok(result) => {
                let (chain, tls_failure) = match result.tls {
                    Some(Ok(chain)) => (Some(chain), None),
                    Some(Err(e)) => (None, Some(e)),
                    None => (None, None),
                };
                MxProbeOutcome {
                    reachable: true,
                    used_helo: result.used_helo_fallback,
                    starttls_offered: result.starttls_offered,
                    chain,
                    tls_failure,
                    tempfail: None,
                }
            }
            Err(_) => unreachable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::CertKind;
    use dns::RecordData;
    use netbase::SimDate;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn now() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    /// Builds a world with one valid domain and one broken-cert domain.
    fn two_domain_world() -> World {
        let w = World::new();
        for (domain, kind) in [
            ("good.com", CertKind::Valid),
            ("badcert.com", CertKind::SelfSigned),
        ] {
            let domain = n(domain);
            let policy_host = domain.prefixed("mta-sts").unwrap();
            let mx_host = domain.prefixed("mx").unwrap();
            w.ensure_zone(&domain);
            let mut web = WebEndpoint::up();
            web.install_chain(
                policy_host.clone(),
                w.pki
                    .issue(&kind, std::slice::from_ref(&policy_host), now()),
            );
            web.install_policy(
                policy_host.clone(),
                &format!("version: STSv1\r\nmode: enforce\r\nmx: {mx_host}\r\nmax_age: 86400\r\n"),
            );
            let web_ip = w.add_web_endpoint(web);
            let mx_chain = w.pki.issue_valid(std::slice::from_ref(&mx_host), now());
            let mx_ip = w.add_mx_endpoint(MxEndpoint::healthy(mx_host.clone(), mx_chain));
            w.with_zone(&domain, |z| {
                z.add_rr(&policy_host, 300, RecordData::A(web_ip));
                z.add_rr(&mx_host, 300, RecordData::A(mx_ip));
                z.add_rr(
                    &domain,
                    300,
                    RecordData::Mx {
                        preference: 10,
                        exchange: mx_host.clone(),
                    },
                );
                z.add_rr(
                    &domain.prefixed("_mta-sts").unwrap(),
                    300,
                    RecordData::Txt(vec!["v=STSv1; id=1;".into()]),
                );
            });
        }
        w
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn wire_and_fast_paths_agree() {
        let world = two_domain_world();
        let wire = WireWorld::deploy(&world).await.unwrap();
        for domain in ["good.com", "badcert.com"] {
            let domain = n(domain);
            let fast = world.fetch_policy(&domain, now());
            let slow = wire.fetch_policy(&world, &domain, now()).await;
            // Layer-for-layer agreement.
            match (&fast.result, &slow.result) {
                (Ok((fp, _)), Ok((sp, _))) => assert_eq!(fp, sp),
                (Err(fe), Err(se)) => assert_eq!(fe.layer(), se.layer(), "{domain}"),
                other => panic!("paths disagree for {domain}: {other:?}"),
            }
            let fast_probe = world.probe_mx(&domain.prefixed("mx").unwrap(), now());
            let slow_probe = wire.probe_mx(&domain.prefixed("mx").unwrap(), now()).await;
            assert_eq!(fast_probe.reachable, slow_probe.reachable);
            assert_eq!(fast_probe.starttls_offered, slow_probe.starttls_offered);
            assert_eq!(fast_probe.chain, slow_probe.chain, "{domain}");
        }
        wire.shutdown().await;
    }

    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn wire_detects_cert_error_like_fast_path() {
        let world = two_domain_world();
        let wire = WireWorld::deploy(&world).await.unwrap();
        let outcome = wire.fetch_policy(&world, &n("badcert.com"), now()).await;
        assert_eq!(
            outcome.result,
            Err(PolicyFetchError::Tls(TlsFailure::Cert(
                pkix::CertError::SelfSigned
            )))
        );
        wire.shutdown().await;
    }
}
