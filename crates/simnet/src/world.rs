//! The world: zones, endpoints and the shared PKI under one handle.

use crate::endpoint::{MxEndpoint, WebEndpoint};
use crate::faults::{
    AttackKind, AttackSchedule, FaultKind, FaultSchedule, FaultStage, TransientFaultConfig,
};
use crate::pki::SharedPki;
use dns::{DnsError, InMemoryAuthorities, Lookup, Rcode, RecordType, Resolver, Zone};
use netbase::{DomainName, SimInstant};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// First 10/8 offset *not* served by [`World::alloc_ip`]. The sequential
/// allocator hands out `10.0.0.1 ..` up to (exclusive) this offset; the
/// range from here to the top of 10/8 belongs to deterministic,
/// caller-derived addressing (incremental deployment derives per-domain
/// endpoint addresses from stable population indices so a domain's IPs
/// never depend on how many other domains were installed first).
pub const DYNAMIC_IP_LIMIT: u32 = 1 << 23;

/// The simulated Internet. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct World {
    /// All authoritative zones.
    pub authorities: InMemoryAuthorities,
    resolver: Arc<Resolver<InMemoryAuthorities>>,
    /// The shared web PKI.
    pub pki: SharedPki,
    web: Arc<Mutex<HashMap<Ipv4Addr, WebEndpoint>>>,
    mx: Arc<Mutex<HashMap<Ipv4Addr, MxEndpoint>>>,
    signed_zones: Arc<Mutex<HashSet<DomainName>>>,
    dns_faults: Arc<Mutex<FaultSchedule>>,
    attacker: Arc<Mutex<AttackSchedule>>,
    next_ip: Arc<Mutex<u32>>,
}

impl World {
    /// An empty world with a fresh PKI.
    pub fn new() -> World {
        let authorities = InMemoryAuthorities::new();
        let resolver = Arc::new(Resolver::new(authorities.clone()));
        World {
            authorities,
            resolver,
            pki: SharedPki::new(),
            web: Arc::new(Mutex::new(HashMap::new())),
            mx: Arc::new(Mutex::new(HashMap::new())),
            signed_zones: Arc::new(Mutex::new(HashSet::new())),
            dns_faults: Arc::new(Mutex::new(FaultSchedule::default())),
            attacker: Arc::new(Mutex::new(AttackSchedule::default())),
            // 10.0.0.0/8, skipping .0.0.0.
            next_ip: Arc::new(Mutex::new(1)),
        }
    }

    /// Installs the transient-fault schedule for the resolver path.
    pub fn set_dns_faults(&self, schedule: FaultSchedule) {
        *self.dns_faults.lock() = schedule;
    }

    /// Applies blanket transient-fault rates across the whole world: the
    /// resolver path plus every currently registered web and MX endpoint
    /// (decorrelated per endpoint by its IP). Endpoints registered later
    /// are unaffected; re-apply after deploying more.
    pub fn inject_transient_faults(&self, cfg: &TransientFaultConfig) {
        self.set_dns_faults(cfg.dns_schedule());
        for (ip, ep) in self.web.lock().iter_mut() {
            ep.faults = cfg.web_schedule(u64::from(u32::from(*ip)));
        }
        for (ip, ep) in self.mx.lock().iter_mut() {
            ep.faults = cfg.mx_schedule(u64::from(u32::from(*ip)));
        }
    }

    /// Installs the active attacker's plan. The attacker sits on-path:
    /// [`World::mta_sts_txts`], [`World::mx_records`],
    /// [`World::fetch_policy`] and [`World::probe_mx`] all consult it.
    pub fn set_attacker(&self, schedule: AttackSchedule) {
        *self.attacker.lock() = schedule;
    }

    /// A snapshot of the attacker's plan.
    pub fn attacker(&self) -> AttackSchedule {
        self.attacker.lock().clone()
    }

    /// Whether `kind` is active against `name` at `now`.
    pub fn attack_active(&self, kind: AttackKind, name: &DomainName, now: SimInstant) -> bool {
        self.attacker.lock().active(kind, name, now)
    }

    /// Every attack kind active against `name` at `now` (omniscient view;
    /// experiments use it to label which deliveries the attacker touched).
    pub fn attacks_active(&self, name: &DomainName, now: SimInstant) -> Vec<AttackKind> {
        self.attacker.lock().active_kinds(name, now)
    }

    /// The shared stub resolver.
    pub fn resolver(&self) -> &Resolver<InMemoryAuthorities> {
        &self.resolver
    }

    /// Drops resolver cache state (between longitudinal snapshots).
    pub fn flush_dns_cache(&self) {
        self.resolver.flush_cache();
    }

    /// Whether any transient-fault schedule is installed anywhere — the
    /// resolver path or any registered endpoint. Scan caches must refuse
    /// to reuse results across snapshots while this is true: fault draws
    /// are keyed on the admitted instant, so an unchanged configuration
    /// does not imply an unchanged observation.
    pub fn has_transient_faults(&self) -> bool {
        if !self.dns_faults.lock().is_empty() {
            return true;
        }
        if self.web.lock().values().any(|ep| !ep.faults.is_empty()) {
            return true;
        }
        self.mx.lock().values().any(|ep| !ep.faults.is_empty())
    }

    /// Whether any attack window is installed at all (active or not).
    pub fn has_attacker(&self) -> bool {
        !self.attacker.lock().is_empty()
    }

    /// Shifts every *leaf* certificate's validity window by `delta`,
    /// re-signing each one. CA certificates keep their fixed windows (the
    /// shared PKI's root and intermediates are issued once with multi-year
    /// validity). Incremental deployment calls this between snapshots so
    /// endpoints that did not change still present certificates dated as a
    /// from-scratch build at the new date would issue them.
    pub fn shift_cert_validity(&self, delta: netbase::Duration) {
        let mut web = self.web.lock();
        for ep in web.values_mut() {
            for chain in ep.chains.values_mut() {
                for cert in chain.iter_mut().filter(|c| !c.is_ca) {
                    cert.shift_validity(delta);
                }
            }
            if let Some(chain) = ep.default_chain.as_mut() {
                for cert in chain.iter_mut().filter(|c| !c.is_ca) {
                    cert.shift_validity(delta);
                }
            }
        }
        drop(web);
        let mut mx = self.mx.lock();
        for ep in mx.values_mut() {
            for cert in ep.chain.iter_mut().filter(|c| !c.is_ca) {
                cert.shift_validity(delta);
            }
        }
    }

    /// Drops the zone for `apex` entirely; returns whether it existed.
    pub fn remove_zone(&self, apex: &DomainName) -> bool {
        self.authorities.remove_zone(apex)
    }

    /// Allocates a fresh simulated IPv4 address in the dynamic half of
    /// 10/8 (below [`DYNAMIC_IP_LIMIT`]). Addresses at or above the limit
    /// are reserved for callers that derive addresses deterministically
    /// and register them via [`World::put_web_endpoint`] /
    /// [`World::put_mx_endpoint`], so the two schemes can never collide.
    pub fn alloc_ip(&self) -> Ipv4Addr {
        let mut next = self.next_ip.lock();
        let v = *next;
        *next += 1;
        assert!(
            v < DYNAMIC_IP_LIMIT,
            "simulated dynamic 10/8 pool exhausted"
        );
        Ipv4Addr::new(10, (v >> 16) as u8, (v >> 8) as u8, v as u8)
    }

    /// Ensures a zone exists for `apex`, creating an empty one if needed.
    pub fn ensure_zone(&self, apex: &DomainName) {
        if self.authorities.with_zone(apex, |_| ()).is_none() {
            self.authorities.upsert_zone(Zone::new(apex.clone()));
        }
    }

    /// Runs `f` on the zone for `apex` (which must exist).
    pub fn with_zone<R>(&self, apex: &DomainName, f: impl FnOnce(&mut Zone) -> R) -> R {
        self.authorities
            .with_zone(apex, f)
            .unwrap_or_else(|| panic!("zone {apex} does not exist"))
    }

    /// Marks a zone as DNSSEC-signed (the DANE gate).
    pub fn set_dnssec(&self, apex: &DomainName, signed: bool) {
        let mut g = self.signed_zones.lock();
        if signed {
            g.insert(apex.clone());
        } else {
            g.remove(apex);
        }
    }

    /// Whether the zone containing `name` is DNSSEC-signed (longest match
    /// by eSLD: per-domain signing in this simulation).
    pub fn is_signed(&self, name: &DomainName) -> bool {
        let g = self.signed_zones.lock();
        let mut candidate = Some(name.clone());
        while let Some(c) = candidate {
            if g.contains(&c) {
                return true;
            }
            candidate = c.parent();
        }
        false
    }

    /// Registers a web endpoint; returns its IP.
    pub fn add_web_endpoint(&self, endpoint: WebEndpoint) -> Ipv4Addr {
        let ip = self.alloc_ip();
        self.web.lock().insert(ip, endpoint);
        ip
    }

    /// Registers a web endpoint at a specific IP (tests, named incidents,
    /// deterministic per-domain addressing).
    pub fn put_web_endpoint(&self, ip: Ipv4Addr, endpoint: WebEndpoint) {
        self.web.lock().insert(ip, endpoint);
    }

    /// Removes the web endpoint at `ip`; returns whether one existed.
    pub fn remove_web_endpoint(&self, ip: Ipv4Addr) -> bool {
        self.web.lock().remove(&ip).is_some()
    }

    /// Mutates the web endpoint at `ip`.
    pub fn with_web<R>(&self, ip: Ipv4Addr, f: impl FnOnce(&mut WebEndpoint) -> R) -> Option<R> {
        self.web.lock().get_mut(&ip).map(f)
    }

    /// Clones the web endpoint at `ip` (wire deployment reads these).
    pub fn web_endpoint(&self, ip: Ipv4Addr) -> Option<WebEndpoint> {
        self.web.lock().get(&ip).cloned()
    }

    /// All web endpoint IPs.
    pub fn web_ips(&self) -> Vec<Ipv4Addr> {
        self.web.lock().keys().copied().collect()
    }

    /// Registers an MX endpoint; returns its IP.
    pub fn add_mx_endpoint(&self, endpoint: MxEndpoint) -> Ipv4Addr {
        let ip = self.alloc_ip();
        self.mx.lock().insert(ip, endpoint);
        ip
    }

    /// Registers an MX endpoint at a specific IP (deterministic per-domain
    /// addressing).
    pub fn put_mx_endpoint(&self, ip: Ipv4Addr, endpoint: MxEndpoint) {
        self.mx.lock().insert(ip, endpoint);
    }

    /// Removes the MX endpoint at `ip`; returns whether one existed.
    pub fn remove_mx_endpoint(&self, ip: Ipv4Addr) -> bool {
        self.mx.lock().remove(&ip).is_some()
    }

    /// Mutates the MX endpoint at `ip`.
    pub fn with_mx<R>(&self, ip: Ipv4Addr, f: impl FnOnce(&mut MxEndpoint) -> R) -> Option<R> {
        self.mx.lock().get_mut(&ip).map(f)
    }

    /// Clones the MX endpoint at `ip`.
    pub fn mx_endpoint(&self, ip: Ipv4Addr) -> Option<MxEndpoint> {
        self.mx.lock().get(&ip).cloned()
    }

    /// All MX endpoint IPs.
    pub fn mx_ips(&self) -> Vec<Ipv4Addr> {
        self.mx.lock().keys().copied().collect()
    }

    /// Resolves `name`/`rtype` at `now` through the shared resolver.
    ///
    /// Transient DNS faults are injected *in front of* the resolver so a
    /// SERVFAIL hiccup never pollutes the TTL cache — a retry at a later
    /// instant re-draws and, absent a fault, sees the real answer.
    pub fn resolve(
        &self,
        name: &DomainName,
        rtype: RecordType,
        now: SimInstant,
    ) -> Result<Lookup, DnsError> {
        let scope = format!("dns/{name}/{rtype:?}");
        if let Some(kind) = self.dns_faults.lock().sample(FaultStage::Dns, &scope, now) {
            return Err(match kind {
                FaultKind::DnsDrop => DnsError::Timeout,
                _ => DnsError::ServFail(Rcode::ServFail),
            });
        }
        self.resolver.lookup(name, rtype, now)
    }

    /// The TXT strings at `_mta-sts.<domain>`, or the DNS error.
    ///
    /// An active [`AttackKind::DnsTxtStrip`] window filters the answers:
    /// the sender sees an empty (record-less) response, exactly as if the
    /// domain never deployed MTA-STS — the first-contact downgrade the
    /// TOFU cache exists to bound.
    pub fn mta_sts_txts(
        &self,
        domain: &DomainName,
        now: SimInstant,
    ) -> Result<Vec<String>, DnsError> {
        if self.attack_active(AttackKind::DnsTxtStrip, domain, now) {
            return Ok(Vec::new());
        }
        let name = domain
            .prefixed(mtasts::RECORD_LABEL)
            .expect("record label is valid");
        Ok(self.resolve(&name, RecordType::Txt, now)?.txt_strings())
    }

    /// The TXT strings at `_smtp._tls.<domain>` (TLSRPT), or the DNS error.
    pub fn tlsrpt_txts(
        &self,
        domain: &DomainName,
        now: SimInstant,
    ) -> Result<Vec<String>, DnsError> {
        let name = domain
            .prefixed("_tls")
            .and_then(|n| n.prefixed("_smtp"))
            .expect("static labels are valid");
        Ok(self.resolve(&name, RecordType::Txt, now)?.txt_strings())
    }

    /// The domain's MX hosts sorted by preference (empty = none published).
    ///
    /// An active [`AttackKind::MxRedirect`] window forges the answer to
    /// point at the attacker's relay — against a cached policy this is the
    /// `MxNotListed` failure RFC 8461 exists to catch.
    pub fn mx_records(
        &self,
        domain: &DomainName,
        now: SimInstant,
    ) -> Result<Vec<DomainName>, DnsError> {
        Ok(self
            .mx_records_with_pref(domain, now)?
            .into_iter()
            .map(|(_, host)| host)
            .collect())
    }

    /// The domain's MX hosts with their RFC 5321 preference values, sorted
    /// ascending by `(preference, host)` — the tiered fail-over ladder the
    /// outbound delivery pipeline walks. A forged [`AttackKind::MxRedirect`]
    /// answer carries preference 0, so the attacker's relay outranks every
    /// legitimate tier exactly as a real forged answer would.
    pub fn mx_records_with_pref(
        &self,
        domain: &DomainName,
        now: SimInstant,
    ) -> Result<Vec<(u16, DomainName)>, DnsError> {
        if self.attack_active(AttackKind::MxRedirect, domain, now) {
            return Ok(vec![(0, self.attacker.lock().attacker_host().clone())]);
        }
        Ok(self.resolve(domain, RecordType::Mx, now)?.mx_hosts())
    }
}

impl Default for World {
    fn default() -> World {
        World::new()
    }
}

// The parallel scan engine hands `&World` to shard workers. Every piece
// of shared state is `Arc<Mutex<_>>` (no `Rc`/`RefCell`); this assertion
// turns a future regression into a compile error instead of a data race.
#[allow(dead_code)]
fn static_assert_world_is_shareable() {
    fn shareable<T: Send + Sync>() {}
    shareable::<World>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::RecordData;
    use netbase::SimDate;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn now() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    #[test]
    fn ip_allocation_is_unique_and_in_10_slash_8() {
        let w = World::new();
        let a = w.alloc_ip();
        let b = w.alloc_ip();
        assert_ne!(a, b);
        assert_eq!(a.octets()[0], 10);
    }

    #[test]
    fn zone_management() {
        let w = World::new();
        w.ensure_zone(&n("example.com"));
        w.with_zone(&n("example.com"), |z| {
            z.add_rr(
                &n("example.com"),
                300,
                RecordData::Mx {
                    preference: 10,
                    exchange: n("mx.example.com"),
                },
            );
        });
        assert_eq!(
            w.mx_records(&n("example.com"), now()).unwrap(),
            vec![n("mx.example.com")]
        );
        // ensure_zone is idempotent.
        w.ensure_zone(&n("example.com"));
        assert_eq!(w.mx_records(&n("example.com"), now()).unwrap().len(), 1);
    }

    #[test]
    fn dnssec_flags_follow_hierarchy() {
        let w = World::new();
        w.set_dnssec(&n("signed.se"), true);
        assert!(w.is_signed(&n("signed.se")));
        assert!(w.is_signed(&n("mx.signed.se")));
        assert!(!w.is_signed(&n("other.se")));
        w.set_dnssec(&n("signed.se"), false);
        assert!(!w.is_signed(&n("mx.signed.se")));
    }

    #[test]
    fn record_lookups() {
        let w = World::new();
        w.ensure_zone(&n("example.com"));
        w.with_zone(&n("example.com"), |z| {
            z.add_rr(
                &n("_mta-sts.example.com"),
                300,
                RecordData::Txt(vec!["v=STSv1; id=1;".into()]),
            );
            z.add_rr(
                &n("_smtp._tls.example.com"),
                300,
                RecordData::Txt(vec!["v=TLSRPTv1; rua=mailto:t@example.com".into()]),
            );
        });
        assert_eq!(w.mta_sts_txts(&n("example.com"), now()).unwrap().len(), 1);
        assert_eq!(w.tlsrpt_txts(&n("example.com"), now()).unwrap().len(), 1);
        assert!(w.mta_sts_txts(&n("missing.org"), now()).is_err());
    }

    #[test]
    fn endpoint_registries() {
        let w = World::new();
        let web_ip = w.add_web_endpoint(WebEndpoint::up());
        assert!(w.web_endpoint(web_ip).is_some());
        w.with_web(web_ip, |ep| {
            ep.install_policy(
                n("mta-sts.example.com"),
                "version: STSv1\nmode: none\nmax_age: 60\n",
            );
        });
        assert_eq!(w.web_endpoint(web_ip).unwrap().documents.len(), 1);
        let mx_ip = w.add_mx_endpoint(MxEndpoint::plaintext(n("mx.example.com")));
        assert!(w.mx_endpoint(mx_ip).is_some());
        assert_eq!(w.web_ips().len(), 1);
        assert_eq!(w.mx_ips().len(), 1);
    }
}
