//! The fast-path error ladders: policy fetch and MX probe.
//!
//! These walk the exact layer sequence the paper's taxonomy is built on
//! (§4.3.3: DNS → TCP → TLS → HTTP → policy syntax; §4.3.4: reachability →
//! STARTTLS → certificate), against the in-memory [`World`]. The wire path
//! in [`crate::wire`] performs the same ladders over real sockets; the
//! differential tests in `tests/` assert agreement.

use crate::endpoint::{Reachability, TlsBehavior};
use crate::world::World;
use dns::RecordType;
use mtasts::{parse_policy, Policy, PolicyError};
use netbase::{DomainName, SimInstant};
use pkix::{validate_chain, CertError, SimCert};
use serde::{Deserialize, Serialize};
use std::fmt;

/// TLS-layer failure detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TlsFailure {
    /// Handshake never completed (refusal, abort, no TLS support).
    Handshake(String),
    /// Handshake completed but the certificate failed validation.
    Cert(CertError),
}

impl fmt::Display for TlsFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsFailure::Handshake(m) => write!(f, "handshake: {m}"),
            TlsFailure::Cert(e) => write!(f, "certificate: {e}"),
        }
    }
}

/// Policy retrieval failure, by layer — Figure 5's five series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyFetchError {
    /// The policy host has no usable A/AAAA (or the lookup failed).
    Dns(String),
    /// TCP connection failed (closed port or timeout).
    Tcp(String),
    /// TLS failed (handshake or certificate).
    Tls(TlsFailure),
    /// An HTTP response other than 200.
    Http(u16),
    /// Fetched but syntactically invalid.
    Syntax(PolicyError),
}

impl PolicyFetchError {
    /// The layer label used by Figure 5.
    pub fn layer(&self) -> &'static str {
        match self {
            PolicyFetchError::Dns(_) => "dns",
            PolicyFetchError::Tcp(_) => "tcp",
            PolicyFetchError::Tls(_) => "tls",
            PolicyFetchError::Http(_) => "http",
            PolicyFetchError::Syntax(_) => "policy-syntax",
        }
    }
}

impl fmt::Display for PolicyFetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyFetchError::Dns(m) => write!(f, "dns: {m}"),
            PolicyFetchError::Tcp(m) => write!(f, "tcp: {m}"),
            PolicyFetchError::Tls(t) => write!(f, "tls: {t}"),
            PolicyFetchError::Http(s) => write!(f, "http status {s}"),
            PolicyFetchError::Syntax(e) => write!(f, "policy syntax: {e}"),
        }
    }
}

/// Everything a policy fetch observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyFetchOutcome {
    /// CNAME chain observed at `mta-sts.<domain>` (delegation evidence,
    /// recorded even when the fetch subsequently fails).
    pub cname_chain: Vec<DomainName>,
    /// The certificate chain the endpoint would present, when the TLS
    /// layer was reached (recorded even when invalid).
    pub presented_chain: Option<Vec<SimCert>>,
    /// The fetch result: parsed policy + raw document, or the layered
    /// error.
    pub result: Result<(Policy, String), PolicyFetchError>,
}

impl PolicyFetchOutcome {
    /// The parsed policy, if retrieval succeeded.
    pub fn policy(&self) -> Option<&Policy> {
        self.result.as_ref().ok().map(|(p, _)| p)
    }
}

/// Everything an MX probe observes (§4.1's instrumented client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxProbeOutcome {
    /// Whether the SMTP endpoint was reachable at all.
    pub reachable: bool,
    /// Whether EHLO failed and HELO was used.
    pub used_helo: bool,
    /// Whether STARTTLS was advertised.
    pub starttls_offered: bool,
    /// The presented certificate chain (empty = none installed), when the
    /// upgrade was attempted.
    pub chain: Option<Vec<SimCert>>,
    /// A handshake-level failure description, if the upgrade broke.
    pub tls_failure: Option<String>,
}

impl MxProbeOutcome {
    /// An unreachable-host outcome.
    fn unreachable() -> MxProbeOutcome {
        MxProbeOutcome {
            reachable: false,
            used_helo: false,
            starttls_offered: false,
            chain: None,
            tls_failure: None,
        }
    }

    /// Validates the presented chain for `host`; `None` when no chain was
    /// retrievable (unreachable or no STARTTLS).
    pub fn cert_verdict(
        &self,
        host: &DomainName,
        now: SimInstant,
        roots: &pkix::TrustStore,
    ) -> Option<Result<(), CertError>> {
        self.chain
            .as_ref()
            .map(|chain| validate_chain(chain, host, now, roots))
    }
}

impl World {
    /// Fetches `domain`'s MTA-STS policy over the simulated HTTPS path,
    /// walking the full §4.3.3 ladder.
    pub fn fetch_policy(&self, domain: &DomainName, now: SimInstant) -> PolicyFetchOutcome {
        let policy_host = domain
            .prefixed(mtasts::POLICY_HOST_LABEL)
            .expect("policy host label is valid");

        // Layer 1: DNS. Resolve A; recover the CNAME chain for delegation
        // analysis even when resolution fails (provider NXDOMAIN opt-outs,
        // §5).
        let (addrs, cname_chain) = match self.resolve(&policy_host, RecordType::A, now) {
            Ok(lookup) => (lookup.a_addrs(), lookup.cname_chain),
            Err(e) => {
                let chain = self
                    .resolve(&policy_host, RecordType::Cname, now)
                    .ok()
                    .map(|l| {
                        l.records
                            .iter()
                            .filter_map(|r| match &r.data {
                                dns::RecordData::Cname(t) => Some(t.clone()),
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                return PolicyFetchOutcome {
                    cname_chain: chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Dns(e.to_string())),
                };
            }
        };
        let Some(ip) = addrs.first().copied() else {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: None,
                result: Err(PolicyFetchError::Dns("no A records".to_string())),
            };
        };

        // Layer 2: TCP.
        let Some(endpoint) = self.web_endpoint(ip) else {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: None,
                result: Err(PolicyFetchError::Tcp(format!("connection refused to {ip}"))),
            };
        };
        match endpoint.reachability {
            Reachability::Up => {}
            Reachability::Refused => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tcp(format!("connection refused to {ip}"))),
                }
            }
            Reachability::Timeout => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tcp(format!("connect timeout to {ip}"))),
                }
            }
        }

        // Layer 3: TLS. SNI and Host stay `mta-sts.<domain>` even through
        // CNAME delegation (RFC 8461 §3.3).
        match endpoint.tls_behavior {
            TlsBehavior::Normal => {}
            TlsBehavior::Refuse => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tls(TlsFailure::Handshake(
                        "handshake_failure alert".to_string(),
                    ))),
                }
            }
            TlsBehavior::Abort => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tls(TlsFailure::Handshake(
                        "connection reset during handshake".to_string(),
                    ))),
                }
            }
        }
        let chain = endpoint.select_chain(&policy_host).cloned().unwrap_or_default();
        if let Err(e) = validate_chain(&chain, &policy_host, now, self.pki.trust_store()) {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(chain),
                result: Err(PolicyFetchError::Tls(TlsFailure::Cert(e))),
            };
        }

        // Layer 4: HTTP.
        let doc = endpoint
            .document(&policy_host, mtasts::WELL_KNOWN_PATH)
            .cloned();
        let (status, body) = match doc {
            Some(pair) => pair,
            None => (404, String::new()),
        };
        if status != 200 {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(chain),
                result: Err(PolicyFetchError::Http(status)),
            };
        }

        // Layer 5: syntax.
        match parse_policy(&body) {
            Ok(policy) => PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(chain),
                result: Ok((policy, body)),
            },
            Err(e) => PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(chain),
                result: Err(PolicyFetchError::Syntax(e)),
            },
        }
    }

    /// Probes one MX host (§4.1's instrumented SMTP client, fast path).
    pub fn probe_mx(&self, mx_host: &DomainName, now: SimInstant) -> MxProbeOutcome {
        let Ok(lookup) = self.resolve(mx_host, RecordType::A, now) else {
            return MxProbeOutcome::unreachable();
        };
        let Some(ip) = lookup.a_addrs().first().copied() else {
            return MxProbeOutcome::unreachable();
        };
        let Some(endpoint) = self.mx_endpoint(ip) else {
            return MxProbeOutcome::unreachable();
        };
        if endpoint.reachability != Reachability::Up {
            return MxProbeOutcome::unreachable();
        }
        let used_helo = endpoint.helo_only;
        let starttls_offered = endpoint.starttls && !endpoint.hide_starttls && !endpoint.helo_only;
        if !starttls_offered {
            return MxProbeOutcome {
                reachable: true,
                used_helo,
                starttls_offered,
                chain: None,
                tls_failure: None,
            };
        }
        MxProbeOutcome {
            reachable: true,
            used_helo,
            starttls_offered,
            chain: Some(endpoint.chain.clone()),
            tls_failure: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{CertKind, MxEndpoint, WebEndpoint};
    use dns::RecordData;
    use netbase::SimDate;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn now() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    const GOOD_POLICY: &str =
        "version: STSv1\r\nmode: enforce\r\nmx: mx.example.com\r\nmax_age: 604800\r\n";

    /// A world with one correctly deployed domain.
    fn good_world() -> World {
        let w = World::new();
        w.ensure_zone(&n("example.com"));
        let policy_host = n("mta-sts.example.com");
        let mut web = WebEndpoint::up();
        web.install_chain(policy_host.clone(), w.pki.issue_valid(&[policy_host.clone()], now()));
        web.install_policy(policy_host.clone(), GOOD_POLICY);
        let web_ip = w.add_web_endpoint(web);
        let mx_chain = w.pki.issue_valid(&[n("mx.example.com")], now());
        let mx_ip = w.add_mx_endpoint(MxEndpoint::healthy(n("mx.example.com"), mx_chain));
        w.with_zone(&n("example.com"), |z| {
            z.add_rr(&n("mta-sts.example.com"), 300, RecordData::A(web_ip));
            z.add_rr(&n("mx.example.com"), 300, RecordData::A(mx_ip));
            z.add_rr(
                &n("example.com"),
                300,
                RecordData::Mx {
                    preference: 10,
                    exchange: n("mx.example.com"),
                },
            );
            z.add_rr(
                &n("_mta-sts.example.com"),
                300,
                RecordData::Txt(vec!["v=STSv1; id=20240601;".into()]),
            );
        });
        w
    }

    #[test]
    fn healthy_domain_fetches_policy() {
        let w = good_world();
        let outcome = w.fetch_policy(&n("example.com"), now());
        let (policy, raw) = outcome.result.expect("fetch must succeed");
        assert_eq!(policy.mode, mtasts::Mode::Enforce);
        assert_eq!(raw, GOOD_POLICY);
        assert!(outcome.cname_chain.is_empty());
    }

    #[test]
    fn dns_layer_error() {
        let w = World::new();
        w.ensure_zone(&n("broken.com"));
        // Record exists but mta-sts has no A record.
        let outcome = w.fetch_policy(&n("broken.com"), now());
        assert!(matches!(outcome.result, Err(PolicyFetchError::Dns(_))));
        assert_eq!(outcome.result.unwrap_err().layer(), "dns");
    }

    #[test]
    fn tcp_layer_errors() {
        let w = good_world();
        let ip = w.web_ips()[0];
        w.with_web(ip, |ep| ep.reachability = Reachability::Refused);
        let refused = w.fetch_policy(&n("example.com"), now());
        assert!(matches!(refused.result, Err(PolicyFetchError::Tcp(_))));
        w.with_web(ip, |ep| ep.reachability = Reachability::Timeout);
        w.flush_dns_cache();
        let timeout = w.fetch_policy(&n("example.com"), now());
        let Err(PolicyFetchError::Tcp(msg)) = timeout.result else {
            panic!("expected tcp error")
        };
        assert!(msg.contains("timeout"));
    }

    #[test]
    fn tls_layer_cert_errors() {
        let w = good_world();
        let ip = w.web_ips()[0];
        let host = n("mta-sts.example.com");
        // Swap in an expired certificate.
        let expired = w.pki.issue(&CertKind::Expired, &[host.clone()], now());
        w.with_web(ip, |ep| ep.install_chain(host.clone(), expired));
        let outcome = w.fetch_policy(&n("example.com"), now());
        assert_eq!(
            outcome.result,
            Err(PolicyFetchError::Tls(TlsFailure::Cert(CertError::Expired)))
        );
        // The invalid chain is still recorded as evidence.
        assert!(outcome.presented_chain.is_some());
    }

    #[test]
    fn tls_layer_no_cert_for_sni() {
        let w = good_world();
        let ip = w.web_ips()[0];
        w.with_web(ip, |ep| {
            ep.chains.clear();
        });
        let outcome = w.fetch_policy(&n("example.com"), now());
        assert_eq!(
            outcome.result,
            Err(PolicyFetchError::Tls(TlsFailure::Cert(CertError::NoCertificate)))
        );
    }

    #[test]
    fn http_layer_404() {
        let w = good_world();
        let ip = w.web_ips()[0];
        w.with_web(ip, |ep| {
            ep.remove_policy(&n("mta-sts.example.com"));
        });
        let outcome = w.fetch_policy(&n("example.com"), now());
        assert_eq!(outcome.result, Err(PolicyFetchError::Http(404)));
    }

    #[test]
    fn syntax_layer_error_and_empty_file() {
        let w = good_world();
        let ip = w.web_ips()[0];
        w.with_web(ip, |ep| {
            ep.install_policy(n("mta-sts.example.com"), "");
        });
        let outcome = w.fetch_policy(&n("example.com"), now());
        assert_eq!(
            outcome.result,
            Err(PolicyFetchError::Syntax(PolicyError::EmptyDocument))
        );
    }

    #[test]
    fn delegated_fetch_records_cname_even_on_nxdomain() {
        // PowerDMARC-style opt-out: the CNAME remains, the target is gone.
        let w = World::new();
        w.ensure_zone(&n("customer.com"));
        w.ensure_zone(&n("provider.net"));
        w.with_zone(&n("customer.com"), |z| {
            z.add_rr(
                &n("mta-sts.customer.com"),
                300,
                RecordData::Cname(n("customer-com.mta-sts.provider.net")),
            );
        });
        // provider.net zone exists but the target name does not → NXDOMAIN.
        let outcome = w.fetch_policy(&n("customer.com"), now());
        assert!(matches!(outcome.result, Err(PolicyFetchError::Dns(_))));
        assert_eq!(outcome.cname_chain, vec![n("customer-com.mta-sts.provider.net")]);
    }

    #[test]
    fn probe_healthy_mx() {
        let w = good_world();
        let probe = w.probe_mx(&n("mx.example.com"), now());
        assert!(probe.reachable && probe.starttls_offered);
        let verdict = probe
            .cert_verdict(&n("mx.example.com"), now(), w.pki.trust_store())
            .unwrap();
        assert_eq!(verdict, Ok(()));
    }

    #[test]
    fn probe_mx_fault_modes() {
        let w = good_world();
        let ip = w.mx_ips()[0];
        // Hide STARTTLS.
        w.with_mx(ip, |mx| mx.hide_starttls = true);
        let hidden = w.probe_mx(&n("mx.example.com"), now());
        assert!(hidden.reachable && !hidden.starttls_offered && hidden.chain.is_none());
        // Self-signed chain.
        w.with_mx(ip, |mx| {
            mx.hide_starttls = false;
        });
        let self_signed = w.pki.issue(&CertKind::SelfSigned, &[n("mx.example.com")], now());
        w.with_mx(ip, |mx| mx.chain = self_signed);
        let probe = w.probe_mx(&n("mx.example.com"), now());
        assert_eq!(
            probe.cert_verdict(&n("mx.example.com"), now(), w.pki.trust_store()),
            Some(Err(CertError::SelfSigned))
        );
        // Unreachable.
        w.with_mx(ip, |mx| mx.reachability = Reachability::Timeout);
        assert!(!w.probe_mx(&n("mx.example.com"), now()).reachable);
        // Unresolvable host.
        assert!(!w.probe_mx(&n("mx.nowhere.org"), now()).reachable);
    }
}
