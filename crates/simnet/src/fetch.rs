//! The fast-path error ladders: policy fetch and MX probe.
//!
//! These walk the exact layer sequence the paper's taxonomy is built on
//! (§4.3.3: DNS → TCP → TLS → HTTP → policy syntax; §4.3.4: reachability →
//! STARTTLS → certificate), against the in-memory [`World`]. The wire path
//! in [`crate::wire`] performs the same ladders over real sockets; the
//! differential tests in `tests/` assert agreement.

use crate::endpoint::{CertKind, Reachability, TlsBehavior};
use crate::faults::{AttackKind, FaultStage};
use crate::world::World;
use dns::RecordType;
use mtasts::{parse_policy, Policy, PolicyError};
use netbase::{DomainName, SimInstant};
use pkix::{validate_chain, CertError, SimCert};
use serde::{Deserialize, Serialize};
use std::fmt;

/// TLS-layer failure detail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TlsFailure {
    /// Handshake never completed (refusal, abort, no TLS support).
    Handshake(String),
    /// Handshake completed but the certificate failed validation.
    Cert(CertError),
}

impl fmt::Display for TlsFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TlsFailure::Handshake(m) => write!(f, "handshake: {m}"),
            TlsFailure::Cert(e) => write!(f, "certificate: {e}"),
        }
    }
}

/// Policy retrieval failure, by layer — Figure 5's five series.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyFetchError {
    /// The policy host has no usable A/AAAA (or the lookup failed).
    Dns(String),
    /// TCP connection failed (closed port or timeout).
    Tcp(String),
    /// TLS failed (handshake or certificate).
    Tls(TlsFailure),
    /// An HTTP response other than 200.
    Http(u16),
    /// Fetched but syntactically invalid.
    Syntax(PolicyError),
}

impl PolicyFetchError {
    /// The layer label used by Figure 5.
    pub fn layer(&self) -> &'static str {
        match self {
            PolicyFetchError::Dns(_) => "dns",
            PolicyFetchError::Tcp(_) => "tcp",
            PolicyFetchError::Tls(_) => "tls",
            PolicyFetchError::Http(_) => "http",
            PolicyFetchError::Syntax(_) => "policy-syntax",
        }
    }

    /// Whether this failure shape is worth retrying — the same judgment a
    /// production scanner makes from the error it observed: server
    /// failures, timeouts, resets and 5xx are plausibly transient; NXDOMAIN,
    /// refused connections, certificate and syntax errors are not. A
    /// *static* fault that happens to look transient (e.g. a permanently
    /// dropped port) simply exhausts its retries and is still classified
    /// persistent.
    pub fn is_transient(&self) -> bool {
        match self {
            PolicyFetchError::Dns(msg) => {
                msg.contains("server failure") || msg.contains("timed out")
            }
            PolicyFetchError::Tcp(msg) => msg.contains("reset") || msg.contains("timeout"),
            PolicyFetchError::Tls(TlsFailure::Handshake(msg)) => msg.contains("reset"),
            PolicyFetchError::Tls(TlsFailure::Cert(_)) => false,
            PolicyFetchError::Http(status) => *status >= 500,
            PolicyFetchError::Syntax(_) => false,
        }
    }
}

/// Whether a raw DNS error is worth retrying (SERVFAIL, timeouts and
/// transport hiccups are; NXDOMAIN and malformed answers are not).
pub fn dns_error_is_transient(e: &dns::DnsError) -> bool {
    matches!(
        e,
        dns::DnsError::ServFail(_) | dns::DnsError::Timeout | dns::DnsError::Transport(_)
    )
}

impl fmt::Display for PolicyFetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyFetchError::Dns(m) => write!(f, "dns: {m}"),
            PolicyFetchError::Tcp(m) => write!(f, "tcp: {m}"),
            PolicyFetchError::Tls(t) => write!(f, "tls: {t}"),
            PolicyFetchError::Http(s) => write!(f, "http status {s}"),
            PolicyFetchError::Syntax(e) => write!(f, "policy syntax: {e}"),
        }
    }
}

/// Everything a policy fetch observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyFetchOutcome {
    /// CNAME chain observed at `mta-sts.<domain>` (delegation evidence,
    /// recorded even when the fetch subsequently fails).
    pub cname_chain: Vec<DomainName>,
    /// The certificate chain the endpoint would present, when the TLS
    /// layer was reached (recorded even when invalid).
    pub presented_chain: Option<Vec<SimCert>>,
    /// The fetch result: parsed policy + raw document, or the layered
    /// error.
    pub result: Result<(Policy, String), PolicyFetchError>,
}

impl PolicyFetchOutcome {
    /// The parsed policy, if retrieval succeeded.
    pub fn policy(&self) -> Option<&Policy> {
        self.result.as_ref().ok().map(|(p, _)| p)
    }
}

/// Everything an MX probe observes (§4.1's instrumented client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxProbeOutcome {
    /// Whether the SMTP endpoint was reachable at all.
    pub reachable: bool,
    /// Whether EHLO failed and HELO was used.
    pub used_helo: bool,
    /// Whether STARTTLS was advertised.
    pub starttls_offered: bool,
    /// The presented certificate chain (empty = none installed), when the
    /// upgrade was attempted.
    pub chain: Option<Vec<SimCert>>,
    /// A handshake-level failure description, if the upgrade broke.
    pub tls_failure: Option<String>,
    /// A 4xx tempfail reply (greylisting), if the session was deferred.
    /// Definitionally transient: the server asked the client to come back.
    pub tempfail: Option<String>,
}

impl MxProbeOutcome {
    /// An unreachable-host outcome.
    fn unreachable() -> MxProbeOutcome {
        MxProbeOutcome {
            reachable: false,
            used_helo: false,
            starttls_offered: false,
            chain: None,
            tls_failure: None,
            tempfail: None,
        }
    }

    /// Whether the probe failed in a plausibly transient way (host down or
    /// session deferred) and is worth retrying.
    pub fn is_transient_failure(&self) -> bool {
        !self.reachable || self.tempfail.is_some()
    }

    /// Validates the presented chain for `host`; `None` when no chain was
    /// retrievable (unreachable or no STARTTLS).
    pub fn cert_verdict(
        &self,
        host: &DomainName,
        now: SimInstant,
        roots: &pkix::TrustStore,
    ) -> Option<Result<(), CertError>> {
        self.chain
            .as_ref()
            .map(|chain| validate_chain(chain, host, now, roots))
    }
}

impl World {
    /// Fetches `domain`'s MTA-STS policy over the simulated HTTPS path,
    /// walking the full §4.3.3 ladder.
    pub fn fetch_policy(&self, domain: &DomainName, now: SimInstant) -> PolicyFetchOutcome {
        let policy_host = domain
            .prefixed(mtasts::POLICY_HOST_LABEL)
            .expect("policy host label is valid");

        // Active attacker: on-path interception happens before any real
        // endpoint is consulted. Either way the attacker cannot present a
        // publicly trusted certificate for `mta-sts.<domain>`, so the
        // strict (RFC 8461 §3.3) fetch fails at the TLS layer; the forged
        // evidence is still recorded like any observed chain.
        let attacker = self.attacker();
        if attacker.active(AttackKind::CnameForge, domain, now) {
            // Forged CNAME to the attacker's host, which serves its own
            // (validly issued) certificate → name mismatch.
            let attacker_host = attacker.attacker_host().clone();
            let chain = self.pki.issue(
                &CertKind::WrongName(attacker_host.clone()),
                std::slice::from_ref(&policy_host),
                now,
            );
            let err = validate_chain(&chain, &policy_host, now, self.pki.trust_store())
                .expect_err("attacker chain never validates for the victim host");
            return PolicyFetchOutcome {
                cname_chain: vec![attacker_host],
                presented_chain: Some(chain),
                result: Err(PolicyFetchError::Tls(TlsFailure::Cert(err))),
            };
        }
        if attacker.active(AttackKind::HttpsMitm, domain, now) {
            // MITM terminates TLS with a certificate for the *right* name
            // issued by the attacker's own CA → unknown issuer.
            let chain = self.pki.issue(
                &CertKind::UntrustedCa,
                std::slice::from_ref(&policy_host),
                now,
            );
            let err = validate_chain(&chain, &policy_host, now, self.pki.trust_store())
                .expect_err("attacker chain never validates for the victim host");
            return PolicyFetchOutcome {
                cname_chain: Vec::new(),
                presented_chain: Some(chain),
                result: Err(PolicyFetchError::Tls(TlsFailure::Cert(err))),
            };
        }

        // Layer 1: DNS. Resolve A; recover the CNAME chain for delegation
        // analysis even when resolution fails (provider NXDOMAIN opt-outs,
        // §5).
        let (addrs, cname_chain) = match self.resolve(&policy_host, RecordType::A, now) {
            Ok(lookup) => (lookup.a_addrs(), lookup.cname_chain),
            Err(e) => {
                let chain = self
                    .resolve(&policy_host, RecordType::Cname, now)
                    .ok()
                    .map(|l| {
                        l.records
                            .iter()
                            .filter_map(|r| match &r.data {
                                dns::RecordData::Cname(t) => Some(t.clone()),
                                _ => None,
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                return PolicyFetchOutcome {
                    cname_chain: chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Dns(e.to_string())),
                };
            }
        };
        let Some(ip) = addrs.first().copied() else {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: None,
                result: Err(PolicyFetchError::Dns("no A records".to_string())),
            };
        };

        // Layer 2: TCP.
        let Some(endpoint) = self.web_endpoint(ip) else {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: None,
                result: Err(PolicyFetchError::Tcp(format!("connection refused to {ip}"))),
            };
        };
        let fault_scope = format!("web/{ip}");
        if endpoint
            .faults
            .sample(FaultStage::Tcp, &fault_scope, now)
            .is_some()
        {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: None,
                result: Err(PolicyFetchError::Tcp(format!(
                    "connection reset by peer at {ip}"
                ))),
            };
        }
        match endpoint.reachability {
            Reachability::Up => {}
            Reachability::Refused => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tcp(format!("connection refused to {ip}"))),
                }
            }
            Reachability::Timeout => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tcp(format!("connect timeout to {ip}"))),
                }
            }
        }

        // Layer 3: TLS. SNI and Host stay `mta-sts.<domain>` even through
        // CNAME delegation (RFC 8461 §3.3).
        if endpoint
            .faults
            .sample(FaultStage::Tls, &fault_scope, now)
            .is_some()
        {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: None,
                result: Err(PolicyFetchError::Tls(TlsFailure::Handshake(
                    "connection reset during handshake".to_string(),
                ))),
            };
        }
        match endpoint.tls_behavior {
            TlsBehavior::Normal => {}
            TlsBehavior::Refuse => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tls(TlsFailure::Handshake(
                        "handshake_failure alert".to_string(),
                    ))),
                }
            }
            TlsBehavior::Abort => {
                return PolicyFetchOutcome {
                    cname_chain,
                    presented_chain: None,
                    result: Err(PolicyFetchError::Tls(TlsFailure::Handshake(
                        "connection reset during handshake".to_string(),
                    ))),
                }
            }
        }
        let chain = endpoint
            .select_chain(&policy_host)
            .cloned()
            .unwrap_or_default();
        if let Err(e) = validate_chain(&chain, &policy_host, now, self.pki.trust_store()) {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(chain),
                result: Err(PolicyFetchError::Tls(TlsFailure::Cert(e))),
            };
        }

        // Layer 4: HTTP.
        if endpoint
            .faults
            .sample(FaultStage::Http, &fault_scope, now)
            .is_some()
        {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(chain),
                result: Err(PolicyFetchError::Http(503)),
            };
        }
        let doc = endpoint
            .document(&policy_host, mtasts::WELL_KNOWN_PATH)
            .cloned();
        let (status, body) = match doc {
            Some(pair) => pair,
            None => (404, String::new()),
        };
        if status != 200 {
            return PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(chain),
                result: Err(PolicyFetchError::Http(status)),
            };
        }

        // Layer 5: syntax.
        match parse_policy(&body) {
            Ok(policy) => PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(chain),
                result: Ok((policy, body)),
            },
            Err(e) => PolicyFetchOutcome {
                cname_chain,
                presented_chain: Some(chain),
                result: Err(PolicyFetchError::Syntax(e)),
            },
        }
    }

    /// Probes one MX host (§4.1's instrumented SMTP client, fast path).
    pub fn probe_mx(&self, mx_host: &DomainName, now: SimInstant) -> MxProbeOutcome {
        let Ok(lookup) = self.resolve(mx_host, RecordType::A, now) else {
            return MxProbeOutcome::unreachable();
        };
        let Some(ip) = lookup.a_addrs().first().copied() else {
            return MxProbeOutcome::unreachable();
        };
        let Some(endpoint) = self.mx_endpoint(ip) else {
            return MxProbeOutcome::unreachable();
        };
        if endpoint.reachability != Reachability::Up {
            return MxProbeOutcome::unreachable();
        }
        let fault_scope = format!("mx/{ip}");
        if endpoint
            .faults
            .sample(FaultStage::Tcp, &fault_scope, now)
            .is_some()
        {
            return MxProbeOutcome::unreachable();
        }
        if endpoint
            .faults
            .sample(FaultStage::Smtp, &fault_scope, now)
            .is_some()
        {
            return MxProbeOutcome {
                reachable: true,
                used_helo: false,
                starttls_offered: false,
                chain: None,
                tls_failure: None,
                tempfail: Some("450 4.7.0 greylisted, try again later".to_string()),
            };
        }
        let used_helo = endpoint.helo_only;
        // An on-path STRIPTLS attacker filters the capability out of the
        // EHLO response; the client cannot tell stripped from never-offered.
        let stripped = self.attack_active(AttackKind::StartTlsStrip, mx_host, now);
        let starttls_offered =
            endpoint.starttls && !endpoint.hide_starttls && !endpoint.helo_only && !stripped;
        if !starttls_offered {
            return MxProbeOutcome {
                reachable: true,
                used_helo,
                starttls_offered,
                chain: None,
                tls_failure: None,
                tempfail: None,
            };
        }
        // A cert-substituting MITM terminates the upgraded session with a
        // chain from its own CA for the right name.
        let chain = if self.attack_active(AttackKind::MxCertSubstitute, mx_host, now) {
            self.pki
                .issue(&CertKind::UntrustedCa, std::slice::from_ref(mx_host), now)
        } else {
            endpoint.chain.clone()
        };
        MxProbeOutcome {
            reachable: true,
            used_helo,
            starttls_offered,
            chain: Some(chain),
            tls_failure: None,
            tempfail: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{CertKind, MxEndpoint, WebEndpoint};
    use dns::RecordData;
    use netbase::SimDate;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn now() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    const GOOD_POLICY: &str =
        "version: STSv1\r\nmode: enforce\r\nmx: mx.example.com\r\nmax_age: 604800\r\n";

    /// A world with one correctly deployed domain.
    fn good_world() -> World {
        let w = World::new();
        w.ensure_zone(&n("example.com"));
        let policy_host = n("mta-sts.example.com");
        let mut web = WebEndpoint::up();
        web.install_chain(
            policy_host.clone(),
            w.pki.issue_valid(std::slice::from_ref(&policy_host), now()),
        );
        web.install_policy(policy_host.clone(), GOOD_POLICY);
        let web_ip = w.add_web_endpoint(web);
        let mx_chain = w.pki.issue_valid(&[n("mx.example.com")], now());
        let mx_ip = w.add_mx_endpoint(MxEndpoint::healthy(n("mx.example.com"), mx_chain));
        w.with_zone(&n("example.com"), |z| {
            z.add_rr(&n("mta-sts.example.com"), 300, RecordData::A(web_ip));
            z.add_rr(&n("mx.example.com"), 300, RecordData::A(mx_ip));
            z.add_rr(
                &n("example.com"),
                300,
                RecordData::Mx {
                    preference: 10,
                    exchange: n("mx.example.com"),
                },
            );
            z.add_rr(
                &n("_mta-sts.example.com"),
                300,
                RecordData::Txt(vec!["v=STSv1; id=20240601;".into()]),
            );
        });
        w
    }

    #[test]
    fn healthy_domain_fetches_policy() {
        let w = good_world();
        let outcome = w.fetch_policy(&n("example.com"), now());
        let (policy, raw) = outcome.result.expect("fetch must succeed");
        assert_eq!(policy.mode, mtasts::Mode::Enforce);
        assert_eq!(raw, GOOD_POLICY);
        assert!(outcome.cname_chain.is_empty());
    }

    #[test]
    fn dns_layer_error() {
        let w = World::new();
        w.ensure_zone(&n("broken.com"));
        // Record exists but mta-sts has no A record.
        let outcome = w.fetch_policy(&n("broken.com"), now());
        assert!(matches!(outcome.result, Err(PolicyFetchError::Dns(_))));
        assert_eq!(outcome.result.unwrap_err().layer(), "dns");
    }

    #[test]
    fn tcp_layer_errors() {
        let w = good_world();
        let ip = w.web_ips()[0];
        w.with_web(ip, |ep| ep.reachability = Reachability::Refused);
        let refused = w.fetch_policy(&n("example.com"), now());
        assert!(matches!(refused.result, Err(PolicyFetchError::Tcp(_))));
        w.with_web(ip, |ep| ep.reachability = Reachability::Timeout);
        w.flush_dns_cache();
        let timeout = w.fetch_policy(&n("example.com"), now());
        let Err(PolicyFetchError::Tcp(msg)) = timeout.result else {
            panic!("expected tcp error")
        };
        assert!(msg.contains("timeout"));
    }

    #[test]
    fn tls_layer_cert_errors() {
        let w = good_world();
        let ip = w.web_ips()[0];
        let host = n("mta-sts.example.com");
        // Swap in an expired certificate.
        let expired = w
            .pki
            .issue(&CertKind::Expired, std::slice::from_ref(&host), now());
        w.with_web(ip, |ep| ep.install_chain(host.clone(), expired));
        let outcome = w.fetch_policy(&n("example.com"), now());
        assert_eq!(
            outcome.result,
            Err(PolicyFetchError::Tls(TlsFailure::Cert(CertError::Expired)))
        );
        // The invalid chain is still recorded as evidence.
        assert!(outcome.presented_chain.is_some());
    }

    #[test]
    fn tls_layer_no_cert_for_sni() {
        let w = good_world();
        let ip = w.web_ips()[0];
        w.with_web(ip, |ep| {
            ep.chains.clear();
        });
        let outcome = w.fetch_policy(&n("example.com"), now());
        assert_eq!(
            outcome.result,
            Err(PolicyFetchError::Tls(TlsFailure::Cert(
                CertError::NoCertificate
            )))
        );
    }

    #[test]
    fn http_layer_404() {
        let w = good_world();
        let ip = w.web_ips()[0];
        w.with_web(ip, |ep| {
            ep.remove_policy(&n("mta-sts.example.com"));
        });
        let outcome = w.fetch_policy(&n("example.com"), now());
        assert_eq!(outcome.result, Err(PolicyFetchError::Http(404)));
    }

    #[test]
    fn syntax_layer_error_and_empty_file() {
        let w = good_world();
        let ip = w.web_ips()[0];
        w.with_web(ip, |ep| {
            ep.install_policy(n("mta-sts.example.com"), "");
        });
        let outcome = w.fetch_policy(&n("example.com"), now());
        assert_eq!(
            outcome.result,
            Err(PolicyFetchError::Syntax(PolicyError::EmptyDocument))
        );
    }

    #[test]
    fn delegated_fetch_records_cname_even_on_nxdomain() {
        // PowerDMARC-style opt-out: the CNAME remains, the target is gone.
        let w = World::new();
        w.ensure_zone(&n("customer.com"));
        w.ensure_zone(&n("provider.net"));
        w.with_zone(&n("customer.com"), |z| {
            z.add_rr(
                &n("mta-sts.customer.com"),
                300,
                RecordData::Cname(n("customer-com.mta-sts.provider.net")),
            );
        });
        // provider.net zone exists but the target name does not → NXDOMAIN.
        let outcome = w.fetch_policy(&n("customer.com"), now());
        assert!(matches!(outcome.result, Err(PolicyFetchError::Dns(_))));
        assert_eq!(
            outcome.cname_chain,
            vec![n("customer-com.mta-sts.provider.net")]
        );
    }

    #[test]
    fn probe_healthy_mx() {
        let w = good_world();
        let probe = w.probe_mx(&n("mx.example.com"), now());
        assert!(probe.reachable && probe.starttls_offered);
        let verdict = probe
            .cert_verdict(&n("mx.example.com"), now(), w.pki.trust_store())
            .unwrap();
        assert_eq!(verdict, Ok(()));
    }

    /// Every `CertError` variant (must stay exhaustive: adding a variant
    /// without updating this table is a compile-time `match` error in
    /// `all_cert_errors`' sibling tests below).
    fn all_cert_errors() -> Vec<CertError> {
        vec![
            CertError::NoCertificate,
            CertError::Expired,
            CertError::NotYetValid,
            CertError::SelfSigned,
            CertError::UnknownIssuer,
            CertError::BadSignature,
            CertError::NotACa,
            CertError::IntermediateExpired,
            CertError::NameMismatch {
                wanted: n("mta-sts.a.com"),
                presented: vec!["shared.host.net".into()],
            },
            CertError::BrokenChain,
        ]
    }

    /// Every `PolicyError` variant.
    fn all_policy_errors() -> Vec<PolicyError> {
        vec![
            PolicyError::EmptyDocument,
            PolicyError::MalformedLine("junk".into()),
            PolicyError::MissingVersion,
            PolicyError::WrongVersion("STSv2".into()),
            PolicyError::MissingMode,
            PolicyError::InvalidMode("panic".into()),
            PolicyError::MissingMaxAge,
            PolicyError::InvalidMaxAge("-1".into()),
            PolicyError::MissingMx,
            PolicyError::InvalidMxPattern {
                pattern: "*.*.a".into(),
                why: "nested wildcard".into(),
            },
            PolicyError::DuplicateKey("mode".into()),
        ]
    }

    #[test]
    fn layer_is_exhaustive_over_every_error_shape() {
        // DNS / TCP / HTTP.
        assert_eq!(PolicyFetchError::Dns("no A records".into()).layer(), "dns");
        assert_eq!(PolicyFetchError::Tcp("refused".into()).layer(), "tcp");
        for status in [301, 403, 404, 500, 503] {
            assert_eq!(PolicyFetchError::Http(status).layer(), "http");
        }
        // TLS: handshake and every certificate variant.
        assert_eq!(
            PolicyFetchError::Tls(TlsFailure::Handshake("alert".into())).layer(),
            "tls"
        );
        for cert in all_cert_errors() {
            assert_eq!(PolicyFetchError::Tls(TlsFailure::Cert(cert)).layer(), "tls");
        }
        // Syntax: every policy-error variant.
        for e in all_policy_errors() {
            assert_eq!(PolicyFetchError::Syntax(e).layer(), "policy-syntax");
        }
    }

    #[test]
    fn transient_classification_over_every_error_shape() {
        // DNS: only failure shapes a resolver could emit transiently.
        assert!(PolicyFetchError::Dns("server failure (ServFail)".into()).is_transient());
        assert!(PolicyFetchError::Dns("query timed out".into()).is_transient());
        assert!(!PolicyFetchError::Dns("NXDOMAIN".into()).is_transient());
        assert!(!PolicyFetchError::Dns("no A records".into()).is_transient());
        // TCP: resets and timeouts, not refusals.
        assert!(
            PolicyFetchError::Tcp("connection reset by peer at 10.0.0.1".into()).is_transient()
        );
        assert!(PolicyFetchError::Tcp("connect timeout to 10.0.0.1".into()).is_transient());
        assert!(!PolicyFetchError::Tcp("connection refused to 10.0.0.1".into()).is_transient());
        // TLS: a torn-down handshake may recover; alerts and every
        // certificate error are configuration, not weather.
        assert!(PolicyFetchError::Tls(TlsFailure::Handshake(
            "connection reset during handshake".into()
        ))
        .is_transient());
        assert!(
            !PolicyFetchError::Tls(TlsFailure::Handshake("handshake_failure alert".into()))
                .is_transient()
        );
        for cert in all_cert_errors() {
            assert!(
                !PolicyFetchError::Tls(TlsFailure::Cert(cert.clone())).is_transient(),
                "{cert:?} must be persistent"
            );
        }
        // HTTP: the server-error range only.
        for status in [500, 502, 503, 599] {
            assert!(PolicyFetchError::Http(status).is_transient(), "{status}");
        }
        for status in [200, 301, 403, 404, 451, 499] {
            assert!(!PolicyFetchError::Http(status).is_transient(), "{status}");
        }
        // Syntax: never transient.
        for e in all_policy_errors() {
            assert!(!PolicyFetchError::Syntax(e.clone()).is_transient(), "{e:?}");
        }
        // Raw DNS errors.
        assert!(dns_error_is_transient(&dns::DnsError::ServFail(
            dns::Rcode::ServFail
        )));
        assert!(dns_error_is_transient(&dns::DnsError::Timeout));
        assert!(!dns_error_is_transient(&dns::DnsError::NxDomain));
        assert!(!dns_error_is_transient(&dns::DnsError::Malformed(
            "truncated header".into()
        )));
        assert!(!dns_error_is_transient(&dns::DnsError::CnameChainTooLong));
    }

    #[test]
    fn transient_web_faults_fire_and_clear() {
        use crate::faults::{FaultKind, FaultSchedule};
        use netbase::Duration;
        let w = good_world();
        let ip = w.web_ips()[0];
        let outage_end = now() + Duration::seconds(60);
        w.with_web(ip, |ep| {
            ep.faults = FaultSchedule::new(1).with_window(FaultKind::TcpReset, now(), outage_end);
        });
        // Inside the window: a reset, classified transient.
        let during = w.fetch_policy(&n("example.com"), now());
        let err = during.result.unwrap_err();
        assert_eq!(err.layer(), "tcp");
        assert!(err.is_transient());
        // After the window: the same fetch succeeds — nothing persistent
        // was recorded anywhere.
        let after = w.fetch_policy(&n("example.com"), outage_end);
        assert!(after.result.is_ok());
    }

    #[test]
    fn transient_dns_faults_do_not_pollute_the_cache() {
        use crate::faults::{FaultKind, FaultSchedule};
        use netbase::Duration;
        let w = good_world();
        let outage_end = now() + Duration::seconds(30);
        w.set_dns_faults(FaultSchedule::new(2).with_window(
            FaultKind::DnsServfail,
            now(),
            outage_end,
        ));
        let during = w.fetch_policy(&n("example.com"), now());
        let err = during.result.unwrap_err();
        assert_eq!(err.layer(), "dns");
        assert!(err.is_transient(), "SERVFAIL must classify as transient");
        // Without flushing the cache, the post-window fetch sees the real
        // answer: the injected SERVFAIL never entered the resolver.
        let after = w.fetch_policy(&n("example.com"), outage_end);
        assert!(after.result.is_ok());
    }

    #[test]
    fn transient_mx_greylisting_fires_and_clears() {
        use crate::faults::{FaultKind, FaultSchedule};
        use netbase::Duration;
        let w = good_world();
        let ip = w.mx_ips()[0];
        let outage_end = now() + Duration::seconds(45);
        w.with_mx(ip, |mx| {
            mx.faults =
                FaultSchedule::new(3).with_window(FaultKind::SmtpGreylist, now(), outage_end);
        });
        let during = w.probe_mx(&n("mx.example.com"), now());
        assert!(during.reachable);
        assert!(during.tempfail.as_deref().unwrap().starts_with("450"));
        assert!(during.is_transient_failure());
        assert!(
            during.chain.is_none(),
            "a deferred session upgrades nothing"
        );
        let after = w.probe_mx(&n("mx.example.com"), outage_end);
        assert!(after.tempfail.is_none() && after.chain.is_some());
        assert!(!after.is_transient_failure());
    }

    #[test]
    fn active_attacker_downgrade_vectors() {
        use crate::faults::{AttackKind, AttackSchedule};
        use netbase::Duration;
        let w = good_world();
        let victim = n("example.com");
        let window_end = now() + Duration::hours(6);
        let attack =
            |kind| AttackSchedule::new().with_window(kind, Some(victim.clone()), now(), window_end);

        // TXT stripping: the record vanishes; other domains are untouched.
        w.set_attacker(attack(AttackKind::DnsTxtStrip));
        assert_eq!(
            w.mta_sts_txts(&victim, now()).unwrap(),
            Vec::<String>::new()
        );
        assert!(!w.mta_sts_txts(&victim, window_end).unwrap().is_empty());

        // Forged CNAME: fetch fails with a name mismatch, forged chain and
        // CNAME evidence recorded.
        w.set_attacker(attack(AttackKind::CnameForge));
        let forged = w.fetch_policy(&victim, now());
        assert_eq!(forged.cname_chain, vec![n("mx.attacker.example")]);
        assert!(matches!(
            forged.result,
            Err(PolicyFetchError::Tls(TlsFailure::Cert(
                CertError::NameMismatch { .. }
            )))
        ));
        assert!(forged.presented_chain.is_some());

        // HTTPS MITM: attacker CA cert for the right name → unknown issuer.
        w.set_attacker(attack(AttackKind::HttpsMitm));
        let mitm = w.fetch_policy(&victim, now());
        assert_eq!(
            mitm.result,
            Err(PolicyFetchError::Tls(TlsFailure::Cert(
                CertError::UnknownIssuer
            )))
        );
        // Outside the window the fetch is clean again.
        assert!(w.fetch_policy(&victim, window_end).result.is_ok());

        // MX redirect: forged MX answer points at the attacker relay.
        w.set_attacker(attack(AttackKind::MxRedirect));
        assert_eq!(
            w.mx_records(&victim, now()).unwrap(),
            vec![n("mx.attacker.example")]
        );

        // STARTTLS stripping on the victim's MX.
        w.set_attacker(attack(AttackKind::StartTlsStrip));
        let strip = w.probe_mx(&n("mx.example.com"), now());
        assert!(strip.reachable && !strip.starttls_offered && strip.chain.is_none());
        assert!(
            w.probe_mx(&n("mx.example.com"), window_end)
                .starttls_offered
        );

        // Cert substitution: the chain no longer validates.
        w.set_attacker(attack(AttackKind::MxCertSubstitute));
        let subst = w.probe_mx(&n("mx.example.com"), now());
        assert_eq!(
            subst.cert_verdict(&n("mx.example.com"), now(), w.pki.trust_store()),
            Some(Err(CertError::UnknownIssuer))
        );
    }

    #[test]
    fn probe_mx_fault_modes() {
        let w = good_world();
        let ip = w.mx_ips()[0];
        // Hide STARTTLS.
        w.with_mx(ip, |mx| mx.hide_starttls = true);
        let hidden = w.probe_mx(&n("mx.example.com"), now());
        assert!(hidden.reachable && !hidden.starttls_offered && hidden.chain.is_none());
        // Self-signed chain.
        w.with_mx(ip, |mx| {
            mx.hide_starttls = false;
        });
        let self_signed = w
            .pki
            .issue(&CertKind::SelfSigned, &[n("mx.example.com")], now());
        w.with_mx(ip, |mx| mx.chain = self_signed);
        let probe = w.probe_mx(&n("mx.example.com"), now());
        assert_eq!(
            probe.cert_verdict(&n("mx.example.com"), now(), w.pki.trust_store()),
            Some(Err(CertError::SelfSigned))
        );
        // Unreachable.
        w.with_mx(ip, |mx| mx.reachability = Reachability::Timeout);
        assert!(!w.probe_mx(&n("mx.example.com"), now()).reachable);
        // Unresolvable host.
        assert!(!w.probe_mx(&n("mx.nowhere.org"), now()).reachable);
    }
}
