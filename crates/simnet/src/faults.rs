//! Transient-fault injection: the flaky-Internet layer.
//!
//! The static fault palette ([`crate::endpoint::Reachability`],
//! [`crate::endpoint::CertKind`], …) models *persistent*
//! misconfigurations — what the paper's taxonomy ultimately counts. Real
//! scans additionally see *transient* failures (intermittent SERVFAIL,
//! connection resets, greylisting 4xx) that must be retried away before
//! classification, or misconfiguration rates inflate. A [`FaultSchedule`]
//! injects exactly those: windowed outages and per-operation probabilistic
//! failures, fully deterministic from a seed.
//!
//! Determinism contract: a draw is keyed on `(seed, scope, kind, instant)`.
//! The same operation at the same simulated instant always sees the same
//! fault decision, while a *retry at a later instant* re-draws — which is
//! what lets retried scans recover from probabilistic transients, and what
//! keeps an interrupted-and-resumed supervisor run byte-identical to an
//! uninterrupted one.

use netbase::{DetRng, DomainName, SimInstant};
use serde::{Deserialize, Serialize};

/// The transient failure modes the schedule can inject, mirroring the
/// layers of the §4.3.3 fetch ladder plus the SMTP session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// DNS answers SERVFAIL (upstream resolver/authority hiccup).
    DnsServfail,
    /// DNS query dropped: the resolver times out.
    DnsDrop,
    /// TCP connection reset by peer.
    TcpReset,
    /// TLS connection torn down mid-handshake.
    TlsHandshakeAbort,
    /// HTTP 503 from an overloaded policy host.
    HttpServerError,
    /// SMTP 450 greylisting tempfail.
    SmtpGreylist,
}

/// The protocol stage a fault fires at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultStage {
    /// Name resolution.
    Dns,
    /// TCP connect.
    Tcp,
    /// TLS handshake.
    Tls,
    /// HTTP request/response.
    Http,
    /// SMTP session.
    Smtp,
}

impl FaultKind {
    /// The stage this fault fires at.
    pub fn stage(self) -> FaultStage {
        match self {
            FaultKind::DnsServfail | FaultKind::DnsDrop => FaultStage::Dns,
            FaultKind::TcpReset => FaultStage::Tcp,
            FaultKind::TlsHandshakeAbort => FaultStage::Tls,
            FaultKind::HttpServerError => FaultStage::Http,
            FaultKind::SmtpGreylist => FaultStage::Smtp,
        }
    }

    /// Stable label used in RNG derivation (renaming a variant must not
    /// silently reshuffle every experiment, so the label is explicit).
    fn label(self) -> &'static str {
        match self {
            FaultKind::DnsServfail => "dns-servfail",
            FaultKind::DnsDrop => "dns-drop",
            FaultKind::TcpReset => "tcp-reset",
            FaultKind::TlsHandshakeAbort => "tls-abort",
            FaultKind::HttpServerError => "http-5xx",
            FaultKind::SmtpGreylist => "smtp-greylist",
        }
    }
}

/// A deterministic outage window: `kind` fires on every matching operation
/// with `start <= now < end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// The injected failure mode.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub start: SimInstant,
    /// Window end (exclusive).
    pub end: SimInstant,
}

impl FaultWindow {
    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: SimInstant) -> bool {
        self.start <= now && now < self.end
    }
}

/// A per-endpoint (or per-resolver) transient-fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed for probabilistic draws.
    seed: u64,
    /// Deterministic outage windows.
    windows: Vec<FaultWindow>,
    /// Per-operation failure probabilities.
    rates: Vec<(FaultKind, f64)>,
}

impl FaultSchedule {
    /// An empty schedule (never faults) rooted at `seed`.
    pub fn new(seed: u64) -> FaultSchedule {
        FaultSchedule {
            seed,
            windows: Vec::new(),
            rates: Vec::new(),
        }
    }

    /// Adds an outage window.
    pub fn with_window(mut self, kind: FaultKind, start: SimInstant, end: SimInstant) -> Self {
        assert!(start <= end, "window must not be inverted");
        self.windows.push(FaultWindow { kind, start, end });
        self
    }

    /// Adds a flapping outage: `cycles` repetitions of `down` (the fault
    /// fires) followed by `up` (it does not), starting at `start`. This is
    /// the degraded-MX pattern the delivery chaos matrix exercises — a
    /// host that keeps dying and recovering, so a queue must both fail
    /// over *and* come back instead of writing the host off.
    pub fn with_flapping(
        mut self,
        kind: FaultKind,
        start: SimInstant,
        down: netbase::Duration,
        up: netbase::Duration,
        cycles: u32,
    ) -> Self {
        assert!(
            down > netbase::Duration::ZERO,
            "flapping down-phase must be positive"
        );
        let mut at = start;
        for _ in 0..cycles {
            self = self.with_window(kind, at, at + down);
            at = at + down + up;
        }
        self
    }

    /// Adds a probabilistic failure mode firing on each operation with
    /// probability `rate`.
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate out of range: {rate}");
        self.rates.push((kind, rate));
        self
    }

    /// Whether the schedule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.rates.iter().all(|(_, r)| *r == 0.0)
    }

    /// The fault (if any) affecting an operation at `stage` on behalf of
    /// `scope` (a stable operation key, e.g. `"dns/mta-sts.a.com/A"`) at
    /// simulated time `now`. Windows take precedence over probabilistic
    /// draws; among overlapping windows the earliest added wins.
    pub fn sample(&self, stage: FaultStage, scope: &str, now: SimInstant) -> Option<FaultKind> {
        for w in &self.windows {
            if w.kind.stage() == stage && w.contains(now) {
                count_fault_activation(w.kind);
                return Some(w.kind);
            }
        }
        let rng = DetRng::new(self.seed).fork(scope);
        for (kind, rate) in &self.rates {
            if kind.stage() != stage {
                continue;
            }
            if *rate > 0.0
                && rng
                    .fork(kind.label())
                    .chance(&format!("t/{}", now.unix_secs()), *rate)
            {
                count_fault_activation(*kind);
                return Some(*kind);
            }
        }
        None
    }
}

/// Telemetry: one counter bump per fault activation, keyed per kind plus
/// a total (a pure side channel — draws above already happened).
fn count_fault_activation(kind: FaultKind) {
    obsv::counter!("fault_activations_total");
    obsv::counter!(match kind {
        FaultKind::DnsServfail => "fault_activations.dns-servfail",
        FaultKind::DnsDrop => "fault_activations.dns-drop",
        FaultKind::TcpReset => "fault_activations.tcp-reset",
        FaultKind::TlsHandshakeAbort => "fault_activations.tls-abort",
        FaultKind::HttpServerError => "fault_activations.http-5xx",
        FaultKind::SmtpGreylist => "fault_activations.smtp-greylist",
    });
}

/// The moves an on-path *active* adversary can make against MTA-STS
/// (paper §2.4, §6): unlike the transient [`FaultKind`]s above, these are
/// deliberate, targeted and persist for the whole attack window. They are
/// exactly the downgrade vectors RFC 8461's TOFU cache is designed to
/// bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Strip `_mta-sts` TXT answers so the victim appears not to deploy
    /// MTA-STS at all (downgrade-by-DNS for first-contact senders).
    DnsTxtStrip,
    /// Forge a CNAME at `mta-sts.<victim>` redirecting the policy fetch to
    /// an attacker host — which cannot present a certificate for the
    /// victim's policy host, so a strict fetch fails with a name mismatch.
    CnameForge,
    /// Intercept the HTTPS policy fetch and present an attacker-CA
    /// certificate for the correct name (fails strict PKIX).
    HttpsMitm,
    /// Forge the victim's MX answers to point at the attacker's relay.
    MxRedirect,
    /// Filter STARTTLS from the MX's EHLO response (classic STRIPTLS).
    StartTlsStrip,
    /// Substitute the MX's certificate chain with one from the attacker's
    /// own CA (passive-decrypt MITM on the SMTP session).
    MxCertSubstitute,
}

impl AttackKind {
    /// All attack kinds (reporting, sweeps).
    pub const ALL: [AttackKind; 6] = [
        AttackKind::DnsTxtStrip,
        AttackKind::CnameForge,
        AttackKind::HttpsMitm,
        AttackKind::MxRedirect,
        AttackKind::StartTlsStrip,
        AttackKind::MxCertSubstitute,
    ];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::DnsTxtStrip => "dns-txt-strip",
            AttackKind::CnameForge => "cname-forge",
            AttackKind::HttpsMitm => "https-mitm",
            AttackKind::MxRedirect => "mx-redirect",
            AttackKind::StartTlsStrip => "starttls-strip",
            AttackKind::MxCertSubstitute => "mx-cert-substitute",
        }
    }
}

/// One attack: `kind` is active against `victim` (or every domain when
/// `None`) for `start <= now < end`. Names match by suffix, so a window
/// targeting `example.com` also covers `mx.example.com` and
/// `mta-sts.example.com`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackWindow {
    /// The attack vector.
    pub kind: AttackKind,
    /// The targeted domain (apex); `None` targets everyone.
    pub victim: Option<DomainName>,
    /// Window start (inclusive).
    pub start: SimInstant,
    /// Window end (exclusive).
    pub end: SimInstant,
}

impl AttackWindow {
    /// Whether this window covers `name` at `now`.
    pub fn applies(&self, name: &DomainName, now: SimInstant) -> bool {
        if !(self.start <= now && now < self.end) {
            return false;
        }
        match &self.victim {
            None => true,
            Some(victim) => name.is_subdomain_of(victim),
        }
    }
}

/// The active attacker's plan: a set of [`AttackWindow`]s plus the host
/// the attacker operates (the target of forged CNAMEs and MX answers).
/// Entirely deterministic — an adversary is deliberate, not stochastic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackSchedule {
    attacker_host: DomainName,
    windows: Vec<AttackWindow>,
}

impl Default for AttackSchedule {
    fn default() -> AttackSchedule {
        AttackSchedule::new()
    }
}

impl AttackSchedule {
    /// An empty schedule with the default attacker host.
    pub fn new() -> AttackSchedule {
        AttackSchedule {
            attacker_host: "mx.attacker.example"
                .parse()
                .expect("static attacker host is valid"),
            windows: Vec::new(),
        }
    }

    /// Overrides the attacker-operated host.
    pub fn with_attacker_host(mut self, host: DomainName) -> Self {
        self.attacker_host = host;
        self
    }

    /// Adds an attack window against `victim` (`None` = every domain).
    pub fn with_window(
        mut self,
        kind: AttackKind,
        victim: Option<DomainName>,
        start: SimInstant,
        end: SimInstant,
    ) -> Self {
        assert!(start <= end, "attack window must not be inverted");
        self.windows.push(AttackWindow {
            kind,
            victim,
            start,
            end,
        });
        self
    }

    /// The host the attacker redirects traffic to.
    pub fn attacker_host(&self) -> &DomainName {
        &self.attacker_host
    }

    /// Whether `kind` is active against `name` at `now`.
    pub fn active(&self, kind: AttackKind, name: &DomainName, now: SimInstant) -> bool {
        let hit = self
            .windows
            .iter()
            .any(|w| w.kind == kind && w.applies(name, now));
        if hit {
            // Telemetry: an operation intersected a live attack window.
            obsv::counter!("attack_window_hits_total");
            obsv::counter!(match kind {
                AttackKind::DnsTxtStrip => "attack_window_hits.dns-txt-strip",
                AttackKind::CnameForge => "attack_window_hits.cname-forge",
                AttackKind::HttpsMitm => "attack_window_hits.https-mitm",
                AttackKind::MxRedirect => "attack_window_hits.mx-redirect",
                AttackKind::StartTlsStrip => "attack_window_hits.starttls-strip",
                AttackKind::MxCertSubstitute => "attack_window_hits.mx-cert-substitute",
            });
        }
        hit
    }

    /// Every attack kind active against `name` at `now` (deduplicated, in
    /// [`AttackKind::ALL`] order).
    pub fn active_kinds(&self, name: &DomainName, now: SimInstant) -> Vec<AttackKind> {
        AttackKind::ALL
            .into_iter()
            .filter(|k| self.active(*k, name, now))
            .collect()
    }

    /// Whether the schedule can ever fire.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// Blanket transient rates for a whole [`crate::World`] — the knob the
/// validation experiment turns (see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientFaultConfig {
    /// Root seed for all fault draws.
    pub seed: u64,
    /// Per-lookup DNS SERVFAIL probability.
    pub dns_servfail: f64,
    /// Per-connect TCP reset probability (policy hosts).
    pub tcp_reset: f64,
    /// Per-handshake TLS abort probability (policy hosts).
    pub tls_abort: f64,
    /// Per-request HTTP 503 probability (policy hosts).
    pub http_5xx: f64,
    /// Per-session SMTP greylisting probability (MX hosts).
    pub smtp_greylist: f64,
}

impl TransientFaultConfig {
    /// A uniform configuration: every stage faults with probability `rate`.
    pub fn uniform(seed: u64, rate: f64) -> TransientFaultConfig {
        TransientFaultConfig {
            seed,
            dns_servfail: rate,
            tcp_reset: rate,
            tls_abort: rate,
            http_5xx: rate,
            smtp_greylist: rate,
        }
    }

    /// The schedule for the resolver path.
    pub fn dns_schedule(&self) -> FaultSchedule {
        FaultSchedule::new(self.seed).with_rate(FaultKind::DnsServfail, self.dns_servfail)
    }

    /// The schedule for one policy web endpoint.
    pub fn web_schedule(&self, seed_offset: u64) -> FaultSchedule {
        FaultSchedule::new(self.seed.wrapping_add(seed_offset))
            .with_rate(FaultKind::TcpReset, self.tcp_reset)
            .with_rate(FaultKind::TlsHandshakeAbort, self.tls_abort)
            .with_rate(FaultKind::HttpServerError, self.http_5xx)
    }

    /// The schedule for one MX endpoint.
    pub fn mx_schedule(&self, seed_offset: u64) -> FaultSchedule {
        FaultSchedule::new(self.seed.wrapping_add(seed_offset))
            .with_rate(FaultKind::SmtpGreylist, self.smtp_greylist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::{Duration, SimDate};

    fn t0() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    #[test]
    fn empty_schedule_never_fires() {
        let s = FaultSchedule::new(1);
        assert!(s.is_empty());
        for i in 0..100 {
            let now = t0() + Duration::seconds(i);
            assert_eq!(s.sample(FaultStage::Dns, "dns/x/A", now), None);
        }
    }

    #[test]
    fn window_fires_inside_only() {
        let s = FaultSchedule::new(1).with_window(
            FaultKind::TcpReset,
            t0() + Duration::seconds(10),
            t0() + Duration::seconds(20),
        );
        assert_eq!(s.sample(FaultStage::Tcp, "web/1", t0()), None);
        let inside = t0() + Duration::seconds(15);
        assert_eq!(
            s.sample(FaultStage::Tcp, "web/1", inside),
            Some(FaultKind::TcpReset)
        );
        // Stage-filtered: the window does not leak into other stages.
        assert_eq!(s.sample(FaultStage::Http, "web/1", inside), None);
        let after = t0() + Duration::seconds(20);
        assert_eq!(s.sample(FaultStage::Tcp, "web/1", after), None);
    }

    #[test]
    fn flapping_alternates_down_and_up_phases() {
        let s = FaultSchedule::new(1).with_flapping(
            FaultKind::TcpReset,
            t0(),
            Duration::seconds(10),
            Duration::seconds(20),
            3,
        );
        let probe = |secs: i64| {
            s.sample(FaultStage::Tcp, "mx/1", t0() + Duration::seconds(secs))
                .is_some()
        };
        // Cycle layout: [0,10) down, [10,30) up, [30,40) down, [40,60) up,
        // [60,70) down, then nothing.
        for (secs, expect) in [
            (0, true),
            (9, true),
            (10, false),
            (29, false),
            (30, true),
            (45, false),
            (60, true),
            (70, false),
            (1000, false),
        ] {
            assert_eq!(probe(secs), expect, "t={secs}");
        }
    }

    #[test]
    fn probabilistic_draws_are_deterministic_and_time_keyed() {
        let s = FaultSchedule::new(7).with_rate(FaultKind::DnsServfail, 0.5);
        let a: Vec<bool> = (0..64)
            .map(|i| {
                s.sample(FaultStage::Dns, "dns/x/A", t0() + Duration::seconds(i))
                    .is_some()
            })
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|i| {
                s.sample(FaultStage::Dns, "dns/x/A", t0() + Duration::seconds(i))
                    .is_some()
            })
            .collect();
        assert_eq!(a, b, "same (scope, instant) must redraw identically");
        // A retry at a later instant is a fresh draw: at rate 0.5 over 64
        // instants both outcomes must occur.
        assert!(a.iter().any(|x| *x) && a.iter().any(|x| !*x), "{a:?}");
    }

    #[test]
    fn scopes_are_independent() {
        let s = FaultSchedule::new(7).with_rate(FaultKind::DnsServfail, 0.5);
        let a: Vec<bool> = (0..64)
            .map(|i| {
                s.sample(FaultStage::Dns, "dns/a/A", t0() + Duration::seconds(i))
                    .is_some()
            })
            .collect();
        let b: Vec<bool> = (0..64)
            .map(|i| {
                s.sample(FaultStage::Dns, "dns/b/A", t0() + Duration::seconds(i))
                    .is_some()
            })
            .collect();
        assert_ne!(a, b, "different scopes must draw independent streams");
    }

    #[test]
    fn rates_are_calibrated() {
        let s = FaultSchedule::new(3).with_rate(FaultKind::SmtpGreylist, 0.2);
        let hits = (0..10_000)
            .filter(|i| {
                s.sample(FaultStage::Smtp, "mx/1", t0() + Duration::seconds(*i))
                    .is_some()
            })
            .count();
        // Binomial(10_000, 0.2): mean 2000, sd = 40. Allow ±5 sd.
        assert!((1800..=2200).contains(&hits), "hits={hits}");
    }

    #[test]
    fn attack_windows_match_by_suffix_and_time() {
        let victim: netbase::DomainName = "example.com".parse().unwrap();
        let s = AttackSchedule::new().with_window(
            AttackKind::DnsTxtStrip,
            Some(victim.clone()),
            t0() + Duration::seconds(10),
            t0() + Duration::seconds(20),
        );
        let inside = t0() + Duration::seconds(15);
        assert!(s.active(AttackKind::DnsTxtStrip, &victim, inside));
        // Suffix match: the record name under the victim is covered too.
        let record: netbase::DomainName = "_mta-sts.example.com".parse().unwrap();
        assert!(s.active(AttackKind::DnsTxtStrip, &record, inside));
        // Other domains, other kinds, and out-of-window instants are not.
        let other: netbase::DomainName = "other.org".parse().unwrap();
        assert!(!s.active(AttackKind::DnsTxtStrip, &other, inside));
        assert!(!s.active(AttackKind::HttpsMitm, &victim, inside));
        assert!(!s.active(AttackKind::DnsTxtStrip, &victim, t0()));
        assert!(!s.active(
            AttackKind::DnsTxtStrip,
            &victim,
            t0() + Duration::seconds(20)
        ));
        assert_eq!(
            s.active_kinds(&victim, inside),
            vec![AttackKind::DnsTxtStrip]
        );
    }

    #[test]
    fn untargeted_window_covers_everyone() {
        let s = AttackSchedule::new().with_window(
            AttackKind::StartTlsStrip,
            None,
            t0(),
            t0() + Duration::hours(1),
        );
        let any: netbase::DomainName = "whoever.net".parse().unwrap();
        assert!(s.active(AttackKind::StartTlsStrip, &any, t0()));
        assert!(!s.is_empty());
        assert!(AttackSchedule::new().is_empty());
    }

    #[test]
    fn attack_labels_are_stable_and_distinct() {
        let labels: std::collections::HashSet<&str> =
            AttackKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), AttackKind::ALL.len());
    }

    #[test]
    fn uniform_config_builds_stage_schedules() {
        let cfg = TransientFaultConfig::uniform(11, 0.1);
        assert!(!cfg.dns_schedule().is_empty());
        assert!(!cfg.web_schedule(1).is_empty());
        assert!(!cfg.mx_schedule(2).is_empty());
        // Different seed offsets decorrelate endpoints.
        assert_ne!(cfg.web_schedule(1), cfg.web_schedule(2));
    }
}
