//! `simnet` — the simulated Internet the study scans.
//!
//! The paper measures the real `.com`/`.net`/`.org`/`.se` ecosystems; this
//! crate provides the stand-in: a world of DNS zones (via
//! [`dns::InMemoryAuthorities`]), HTTPS policy endpoints and SMTP MX
//! endpoints addressed by IPv4, all sharing one simulated web PKI.
//!
//! Two execution paths observe the *same* world:
//!
//! - the **fast path** ([`World::fetch_policy`], [`World::probe_mx`]):
//!   synchronous, allocation-light walks of the §4.3.3 error ladder
//!   (DNS → TCP → TLS → HTTP → syntax) used by the scanner at
//!   tens-of-thousands-of-domains scale;
//! - the **wire path** ([`wire`]): the same endpoints served over real
//!   tokio TCP/UDP sockets with the full `httpsim`/`smtp`/`tlssim`
//!   protocol stacks, used by examples and differential tests that assert
//!   both paths agree.
//!
//! Fault injection is first-class: every endpoint models the reachability,
//! TLS and content failures the paper's taxonomy needs — and, through
//! [`faults::FaultSchedule`], the *transient* failures (SERVFAIL spells,
//! connection resets, greylisting) a resilient scanner must retry away.

pub mod endpoint;
pub mod faults;
pub mod fetch;
pub mod pki;
pub mod wire;
pub mod world;

pub use endpoint::{CertKind, MxEndpoint, Reachability, WebEndpoint};
pub use faults::{
    AttackKind, AttackSchedule, AttackWindow, FaultKind, FaultSchedule, FaultStage, FaultWindow,
    TransientFaultConfig,
};
pub use fetch::{
    dns_error_is_transient, MxProbeOutcome, PolicyFetchError, PolicyFetchOutcome, TlsFailure,
};
pub use pki::SharedPki;
pub use world::{World, DYNAMIC_IP_LIMIT};
