//! Endpoints: the hosts behind the IPs.
//!
//! A [`WebEndpoint`] is an HTTPS server (a policy host — self-managed or a
//! provider platform serving thousands of customers); an [`MxEndpoint`] is
//! an inbound MTA. Both carry the reachability and TLS fault knobs the
//! study's taxonomy requires and can be deployed 1:1 onto real sockets by
//! [`crate::wire`].

use netbase::DomainName;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The certificate situation of an endpoint for a given name — the fault
/// palette behind Figures 5 and 6.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertKind {
    /// Properly issued, covers the right names.
    Valid,
    /// Expired (issued in the past, lapsed).
    Expired,
    /// Self-signed.
    SelfSigned,
    /// Valid chain for a *different* name (shared-hosting default cert —
    /// the CN-mismatch class dominating self-managed failures, §4.3.3).
    WrongName(DomainName),
    /// Issued by a CA outside the public trust store.
    UntrustedCa,
    /// No certificate installed for the name at all (SSL-alert class;
    /// DMARCReport's signature failure, §4.3.3).
    NoneInstalled,
}

/// Reachability of an endpoint's TCP listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Reachability {
    /// Accepting connections.
    #[default]
    Up,
    /// Port closed (RST) — "not running a web server".
    Refused,
    /// Packets dropped — connect timeout.
    Timeout,
}

/// TLS-layer behaviour of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TlsBehavior {
    /// Complete handshakes normally.
    #[default]
    Normal,
    /// Refuse every handshake (no TLS support on the port).
    Refuse,
    /// Drop the connection mid-handshake.
    Abort,
}

/// A policy web host.
///
/// Provider platforms install one certificate chain per customer SNI (or a
/// wildcard/default), and one document per `(host, path)` — exactly the
/// shape of [`httpsim::Router`] + [`tlssim::ServerIdentity`], which the
/// wire deployment reuses directly.
#[derive(Debug, Clone, Default)]
pub struct WebEndpoint {
    /// TCP reachability.
    pub reachability: Reachability,
    /// TLS behaviour.
    pub tls_behavior: TlsBehavior,
    /// Certificate chains by installed SNI name.
    pub chains: HashMap<DomainName, Vec<pkix::SimCert>>,
    /// Fallback chain for unknown SNI (shared-hosting default cert).
    pub default_chain: Option<Vec<pkix::SimCert>>,
    /// Documents by `(host, path)`: `(status, body)`.
    pub documents: HashMap<(DomainName, String), (u16, String)>,
    /// Transient-fault schedule (empty by default). Consulted by the fast
    /// path only; the wire deployment serves the static behaviour.
    pub faults: crate::faults::FaultSchedule,
}

impl WebEndpoint {
    /// A reachable endpoint with nothing installed.
    pub fn up() -> WebEndpoint {
        WebEndpoint::default()
    }

    /// Installs a certificate chain for `sni`.
    pub fn install_chain(&mut self, sni: DomainName, chain: Vec<pkix::SimCert>) {
        self.chains.insert(sni, chain);
    }

    /// Installs a policy document served with HTTP 200.
    pub fn install_policy(&mut self, host: DomainName, body: &str) {
        self.documents.insert(
            (host, mtasts::WELL_KNOWN_PATH.to_string()),
            (200, body.to_string()),
        );
    }

    /// Installs an arbitrary `(status, body)` at `(host, path)`.
    pub fn install_document(&mut self, host: DomainName, path: &str, status: u16, body: &str) {
        self.documents
            .insert((host, path.to_string()), (status, body.to_string()));
    }

    /// Removes the policy document for `host`; returns whether it existed.
    pub fn remove_policy(&mut self, host: &DomainName) -> bool {
        self.documents
            .remove(&(host.clone(), mtasts::WELL_KNOWN_PATH.to_string()))
            .is_some()
    }

    /// Removes the certificate chain installed for `sni`; returns whether
    /// it existed. Used by incremental redeployment to evict a departing
    /// customer from a shared provider endpoint.
    pub fn remove_chain(&mut self, sni: &DomainName) -> bool {
        self.chains.remove(sni).is_some()
    }

    /// Removes every document served for `host` (any path); returns how
    /// many were evicted.
    pub fn remove_documents_for(&mut self, host: &DomainName) -> usize {
        let before = self.documents.len();
        self.documents.retain(|(h, _), _| h != host);
        before - self.documents.len()
    }

    /// Selects the chain presented for `sni`: exact name, then any
    /// wildcard-covering installed chain, then the default.
    pub fn select_chain(&self, sni: &DomainName) -> Option<&Vec<pkix::SimCert>> {
        if let Some(chain) = self.chains.get(sni) {
            return Some(chain);
        }
        self.chains
            .values()
            .find(|chain| {
                chain
                    .first()
                    .is_some_and(|leaf| pkix::validate::cert_covers_host(leaf, sni))
            })
            .or(self.default_chain.as_ref())
    }

    /// Looks up the document for `(host, path)`.
    pub fn document(&self, host: &DomainName, path: &str) -> Option<&(u16, String)> {
        self.documents.get(&(host.clone(), path.to_string()))
    }
}

/// An inbound MTA endpoint.
#[derive(Debug, Clone)]
pub struct MxEndpoint {
    /// The hostname the server announces (and the SNI key for its cert).
    pub hostname: DomainName,
    /// TCP reachability.
    pub reachability: Reachability,
    /// Whether STARTTLS is advertised and usable.
    pub starttls: bool,
    /// The certificate chain presented after STARTTLS (empty = alert).
    pub chain: Vec<pkix::SimCert>,
    /// Whether the server hides STARTTLS (greylisting-style).
    pub hide_starttls: bool,
    /// Whether EHLO is refused (HELO-only legacy server).
    pub helo_only: bool,
    /// Recipient domains rejected with 550 (provider opt-out residue, §5).
    pub reject_rcpt_domains: Vec<DomainName>,
    /// Transient-fault schedule (empty by default). Consulted by the fast
    /// path only; the wire deployment serves the static behaviour.
    pub faults: crate::faults::FaultSchedule,
}

impl MxEndpoint {
    /// A healthy STARTTLS-capable MX presenting `chain`.
    pub fn healthy(hostname: DomainName, chain: Vec<pkix::SimCert>) -> MxEndpoint {
        MxEndpoint {
            hostname,
            reachability: Reachability::Up,
            starttls: true,
            chain,
            hide_starttls: false,
            helo_only: false,
            reject_rcpt_domains: Vec::new(),
            faults: crate::faults::FaultSchedule::default(),
        }
    }

    /// A plaintext-only MX.
    pub fn plaintext(hostname: DomainName) -> MxEndpoint {
        MxEndpoint {
            hostname,
            reachability: Reachability::Up,
            starttls: false,
            chain: Vec::new(),
            hide_starttls: false,
            helo_only: false,
            reject_rcpt_domains: Vec::new(),
            faults: crate::faults::FaultSchedule::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pki::SharedPki;
    use netbase::SimDate;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn web_endpoint_chain_selection() {
        let pki = SharedPki::new();
        let now = SimDate::ymd(2024, 6, 1).at_midnight();
        let mut ep = WebEndpoint::up();
        ep.install_chain(
            n("mta-sts.alpha.com"),
            pki.issue_valid(&[n("mta-sts.alpha.com")], now),
        );
        ep.install_chain(
            n("*.provider.net"),
            pki.issue_valid(&[n("*.provider.net")], now),
        );
        ep.default_chain = Some(pki.issue_valid(&[n("shared.host.net")], now));
        // Exact.
        assert!(ep.select_chain(&n("mta-sts.alpha.com")).is_some());
        // Wildcard coverage.
        let wild = ep.select_chain(&n("a-com.provider.net")).unwrap();
        assert_eq!(wild[0].subject_cn, "*.provider.net");
        // Default for strangers.
        let def = ep.select_chain(&n("mta-sts.unknown.org")).unwrap();
        assert_eq!(def[0].subject_cn, "shared.host.net");
    }

    #[test]
    fn web_endpoint_documents() {
        let mut ep = WebEndpoint::up();
        ep.install_policy(
            n("mta-sts.alpha.com"),
            "version: STSv1\nmode: none\nmax_age: 60\n",
        );
        assert!(ep
            .document(&n("mta-sts.alpha.com"), mtasts::WELL_KNOWN_PATH)
            .is_some());
        assert!(ep.document(&n("mta-sts.alpha.com"), "/other").is_none());
        assert!(ep.remove_policy(&n("mta-sts.alpha.com")));
        assert!(!ep.remove_policy(&n("mta-sts.alpha.com")));
    }
}
