//! The shared web PKI of the simulated Internet.
//!
//! One root CA ("SimNet Root CA") anchors every legitimately issued
//! certificate, mirroring the study's implicit single trust ecosystem. The
//! issuing intermediate plays the ACME CA: providers and self-hosters
//! request domain-validated leaves from it; misconfigured hosts get
//! expired, wrong-name or self-signed certificates via [`SharedPki::issue`].

use crate::endpoint::CertKind;
use netbase::{DomainName, Duration, SimInstant};
use parking_lot::Mutex;
use pkix::authority::self_signed_leaf;
use pkix::{CertAuthority, SimCert, TrustStore};
use std::sync::Arc;

/// Default leaf lifetime (90 days, Let's Encrypt-style).
pub const LEAF_LIFETIME: Duration = Duration::days(90);

/// The shared PKI: root, issuing intermediate, and the public trust store.
#[derive(Clone)]
pub struct SharedPki {
    inner: Arc<Mutex<PkiInner>>,
    /// The trust store every validating client uses (cheap to clone).
    trust: TrustStore,
}

struct PkiInner {
    /// Kept so the root's certificate (and key id) outlive setup — the
    /// trust store references it and examples may serve it.
    #[allow(dead_code)]
    root: CertAuthority,
    issuing: CertAuthority,
}

impl SharedPki {
    /// Creates the PKI with certificates valid across the whole study
    /// window (2021..2027).
    pub fn new() -> SharedPki {
        let nb = netbase::SimDate::ymd(2021, 1, 1).at_midnight();
        let na = netbase::SimDate::ymd(2027, 1, 1).at_midnight();
        let mut root = CertAuthority::new_root("SimNet Root CA", nb, na);
        let issuing = root.issue_intermediate("SimNet Issuing CA R1", nb, na);
        let mut trust = TrustStore::empty();
        trust.add_root(&root);
        SharedPki {
            inner: Arc::new(Mutex::new(PkiInner { root, issuing })),
            trust,
        }
    }

    /// The public trust store.
    pub fn trust_store(&self) -> &TrustStore {
        &self.trust
    }

    /// The intermediate's certificate (served alongside leaves).
    pub fn issuing_cert(&self) -> SimCert {
        self.inner.lock().issuing.cert.clone()
    }

    /// Issues a *valid* domain-validated chain (leaf + intermediate) for
    /// `names`, valid from `now` for [`LEAF_LIFETIME`].
    pub fn issue_valid(&self, names: &[DomainName], now: SimInstant) -> Vec<SimCert> {
        let mut g = self.inner.lock();
        let leaf = g.issuing.issue_leaf(names, now, now + LEAF_LIFETIME);
        vec![leaf, g.issuing.cert.clone()]
    }

    /// Issues a chain exhibiting `kind` for `names` at `now` — the fault
    /// palette of Figures 5 and 6.
    pub fn issue(&self, kind: &CertKind, names: &[DomainName], now: SimInstant) -> Vec<SimCert> {
        match kind {
            CertKind::Valid => self.issue_valid(names, now),
            CertKind::Expired => {
                // Issued long ago, expired before `now`.
                let mut g = self.inner.lock();
                let start = now - Duration::days(180);
                let end = now - Duration::days(30);
                let leaf = g.issuing.issue_leaf(names, start, end);
                vec![leaf, g.issuing.cert.clone()]
            }
            CertKind::SelfSigned => {
                vec![self_signed_leaf(
                    names,
                    now - Duration::days(1),
                    now + LEAF_LIFETIME,
                )]
            }
            CertKind::WrongName(other) => self.issue_valid(std::slice::from_ref(other), now),
            CertKind::UntrustedCa => {
                let mut rogue = CertAuthority::new_root(
                    "Unknown Issuing CA",
                    now - Duration::days(365),
                    now + Duration::days(365),
                );
                let leaf = rogue.issue_leaf(names, now - Duration::days(1), now + LEAF_LIFETIME);
                // Served without the rogue root: the validator sees an
                // unknown external issuer (vs. SelfSigned when a chain
                // terminates in an untrusted self-signed certificate).
                vec![leaf]
            }
            CertKind::NoneInstalled => Vec::new(),
        }
    }
}

impl Default for SharedPki {
    fn default() -> SharedPki {
        SharedPki::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::SimDate;
    use pkix::{validate_chain, CertError};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn now() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    #[test]
    fn valid_chains_validate() {
        let pki = SharedPki::new();
        let chain = pki.issue_valid(&[n("mta-sts.example.com")], now());
        assert_eq!(chain.len(), 2);
        assert!(
            validate_chain(&chain, &n("mta-sts.example.com"), now(), pki.trust_store()).is_ok()
        );
    }

    #[test]
    fn fault_palette_produces_expected_errors() {
        let pki = SharedPki::new();
        let host = n("mta-sts.example.com");
        let cases: Vec<(CertKind, CertError)> = vec![
            (CertKind::Expired, CertError::Expired),
            (CertKind::SelfSigned, CertError::SelfSigned),
            (
                CertKind::WrongName(n("shared.provider.net")),
                CertError::NameMismatch {
                    wanted: host.clone(),
                    presented: vec!["shared.provider.net".to_string()],
                },
            ),
            (CertKind::UntrustedCa, CertError::UnknownIssuer),
            (CertKind::NoneInstalled, CertError::NoCertificate),
        ];
        for (kind, expected) in cases {
            let chain = pki.issue(&kind, std::slice::from_ref(&host), now());
            let got = validate_chain(&chain, &host, now(), pki.trust_store());
            assert_eq!(got, Err(expected), "kind {kind:?}");
        }
    }

    #[test]
    fn issuance_is_shared_across_clones() {
        let pki = SharedPki::new();
        let clone = pki.clone();
        let a = pki.issue_valid(&[n("a.example.com")], now());
        let b = clone.issue_valid(&[n("b.example.com")], now());
        // Serials advance through the shared issuing CA.
        assert_ne!(a[0].serial, b[0].serial);
        assert_eq!(a[1], b[1]);
    }
}
