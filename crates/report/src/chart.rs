//! Terminal line charts for time series (the figures' shapes, in ASCII).

/// A multi-series ASCII chart.
#[derive(Debug, Clone)]
pub struct AsciiChart {
    title: String,
    /// (label, values) per series; all series share the x axis.
    series: Vec<(String, Vec<f64>)>,
    /// Labels for selected x positions (sparse).
    x_labels: Vec<(usize, String)>,
    height: usize,
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 6] = ['*', '+', 'o', 'x', '#', '@'];

impl AsciiChart {
    /// Creates a chart with the given title and height in rows.
    pub fn new(title: &str, height: usize) -> AsciiChart {
        AsciiChart {
            title: title.to_string(),
            series: Vec::new(),
            x_labels: Vec::new(),
            height: height.max(4),
        }
    }

    /// Adds one series. Series must share the x axis length.
    pub fn series(&mut self, label: &str, values: Vec<f64>) -> &mut AsciiChart {
        if let Some((_, first)) = self.series.first() {
            assert_eq!(first.len(), values.len(), "series lengths must agree");
        }
        self.series.push((label.to_string(), values));
        self
    }

    /// Adds a sparse x-axis label at `index`.
    pub fn x_label(&mut self, index: usize, label: &str) -> &mut AsciiChart {
        self.x_labels.push((index, label.to_string()));
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let width = self.series.first().map_or(0, |(_, v)| v.len());
        if width == 0 {
            return format!("{}\n(no data)\n", self.title);
        }
        let max = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let min = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(f64::MAX, f64::min)
            .min(0.0);
        let span = (max - min).max(1e-9);
        let mut grid = vec![vec![' '; width]; self.height];
        for (si, (_, values)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for (x, v) in values.iter().enumerate() {
                let t = (v - min) / span;
                let y = ((1.0 - t) * (self.height - 1) as f64).round() as usize;
                grid[y.min(self.height - 1)][x] = glyph;
            }
        }
        let mut out = format!("{}\n", self.title);
        for (i, row) in grid.iter().enumerate() {
            let axis_value = max - span * i as f64 / (self.height - 1) as f64;
            out.push_str(&format!("{axis_value:8.2} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:8} +{}\n", "", "-".repeat(width)));
        // Sparse x labels.
        if !self.x_labels.is_empty() {
            let mut label_row = vec![' '; width + 10];
            for (idx, label) in &self.x_labels {
                let start = 10 + idx.min(&(width - 1));
                for (off, ch) in label.chars().enumerate() {
                    if start + off < label_row.len() {
                        label_row[start + off] = ch;
                    }
                }
            }
            out.push_str(label_row.iter().collect::<String>().trim_end());
            out.push('\n');
        }
        // Legend.
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (label, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], label))
            .collect();
        out.push_str(&format!("legend: {}\n", legend.join("   ")));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_growing_series() {
        let mut chart = AsciiChart::new("adoption", 6);
        chart.series(".com", (0..40).map(|i| i as f64 * 0.01).collect());
        chart.x_label(0, "2021-09");
        chart.x_label(35, "2024-09");
        let s = chart.render();
        assert!(s.starts_with("adoption\n"));
        assert!(s.contains("legend: * .com"));
        assert!(s.contains("2021-09"));
        // The max value appears on the top axis row.
        assert!(s.contains("0.39"));
    }

    #[test]
    fn multi_series_glyphs() {
        let mut chart = AsciiChart::new("x", 5);
        chart.series("a", vec![1.0, 2.0, 3.0]);
        chart.series("b", vec![3.0, 2.0, 1.0]);
        let s = chart.render();
        assert!(s.contains("* a") && s.contains("+ b"));
    }

    #[test]
    fn empty_chart() {
        let chart = AsciiChart::new("empty", 5);
        assert!(chart.render().contains("(no data)"));
    }

    #[test]
    #[should_panic(expected = "series lengths")]
    fn mismatched_series_length_panics() {
        let mut chart = AsciiChart::new("x", 5);
        chart.series("a", vec![1.0]);
        chart.series("b", vec![1.0, 2.0]);
    }
}
