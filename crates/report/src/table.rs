//! Aligned ASCII tables.

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: &str) -> Table {
        self.title = Some(title.to_string());
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header (a bug in the
    /// experiment binary, caught immediately).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            out.push_str(title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["TLD", "Domains", "%"]).with_title("Table 1");
        t.row(vec![".com".into(), "73939004".into(), "0.07".into()]);
        t.row(vec![".se".into(), "822449".into(), "0.08".into()]);
        let s = t.render();
        assert!(s.starts_with("Table 1\n"));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // Columns align: ".com" padded to the width of "TLD"/".com".
        assert!(lines[1].starts_with("TLD "));
        assert!(lines[3].starts_with(".com"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains('x'));
    }
}
