//! `report` — rendering experiment outputs.
//!
//! The experiment binaries print the same rows and series the paper's
//! tables and figures report. This crate provides the rendering: aligned
//! ASCII tables, a terminal line chart for time series, and CSV/JSON
//! emission for downstream plotting.

pub mod chart;
pub mod table;

pub use chart::AsciiChart;
pub use table::Table;

use serde::Serialize;

/// Serializes any experiment result to pretty JSON (for EXPERIMENTS.md
/// bookkeeping and external plotting).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment outputs serialize")
}

/// Renders rows as CSV with the given header.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|cell| {
                if cell.contains(',') || cell.contains('"') {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            })
            .collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escaping() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["1".into(), "plain".into()],
                vec!["2".into(), "with,comma".into()],
                vec!["3".into(), "with\"quote".into()],
            ],
        );
        assert_eq!(csv, "a,b\n1,plain\n2,\"with,comma\"\n3,\"with\"\"quote\"\n");
    }

    #[test]
    fn json_smoke() {
        #[derive(Serialize)]
        struct X {
            v: u32,
        }
        assert!(to_json(&X { v: 7 }).contains("\"v\": 7"));
    }
}
