//! Property suite for the collector merge semantics (DESIGN.md
//! "Observability"): the shard-order merge convention is deterministic
//! by construction, but the *aggregates* must also be order-free —
//! merging per-shard collectors in any shard order yields identical
//! counters, histograms and span totals — and the histogram bucket
//! boundaries must be pure integer arithmetic, stable across platforms.

use obsv::{Collector, Histogram, SpanAgg, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// Builds a collector from generated primitives. Names draw from a
/// small fixed pool so different shards genuinely collide on keys.
fn build(ops: &[(u8, u8, u64)]) -> Collector {
    const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let mut c = Collector::new();
    for &(what, name, value) in ops {
        let name = NAMES[(name % 4) as usize];
        match what % 3 {
            0 => {
                let slot = c.counters.entry(name).or_default();
                *slot = slot.saturating_add(value);
            }
            1 => c.histograms.entry(name).or_default().record(value),
            _ => {
                let s = c.spans.entry(name).or_default();
                s.count += 1;
                s.real_ns = s.real_ns.saturating_add(value);
                s.sim_secs = s.sim_secs.saturating_add(value % 1000);
            }
        }
    }
    c
}

fn merge_in_order(shards: &[Collector], order: &[usize]) -> Collector {
    let mut total = Collector::new();
    for &i in order {
        total.merge(&shards[i]);
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merging per-shard collectors in shard order and in reverse (or
    /// any rotation) yields the same aggregate — the property that
    /// makes the pool's shard-order convention a determinism guarantee
    /// rather than a load-bearing accident.
    #[test]
    fn merge_is_order_free(
        shard_ops in prop::collection::vec(
            prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..20),
            0..8,
        ),
        rotation in any::<u8>(),
    ) {
        let shards: Vec<Collector> = shard_ops.iter().map(|ops| build(ops)).collect();
        let in_order: Vec<usize> = (0..shards.len()).collect();
        let reversed: Vec<usize> = in_order.iter().rev().copied().collect();
        let rotated: Vec<usize> = if shards.is_empty() {
            Vec::new()
        } else {
            let r = rotation as usize % shards.len();
            in_order[r..].iter().chain(&in_order[..r]).copied().collect()
        };
        let want = merge_in_order(&shards, &in_order);
        prop_assert_eq!(&merge_in_order(&shards, &reversed), &want);
        prop_assert_eq!(&merge_in_order(&shards, &rotated), &want);
    }

    /// One flat collector over all operations equals the merge of any
    /// sharding of those operations — harvest/absorb loses nothing.
    #[test]
    fn sharding_is_lossless(
        ops in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..60),
        cut in any::<u8>(),
    ) {
        let flat = build(&ops);
        let cut = if ops.is_empty() { 0 } else { cut as usize % (ops.len() + 1) };
        let shards = [build(&ops[..cut]), build(&ops[cut..])];
        let merged = merge_in_order(&shards, &[0, 1]);
        prop_assert_eq!(merged, flat);
    }

    /// Histogram bucket boundaries are stable: bucket_of is exactly
    /// `floor(log2(v)) + 1` (0 for 0), every value lands in the bucket
    /// whose bounds contain it, and count/sum track every record.
    #[test]
    fn histogram_buckets_are_log2_stable(values in prop::collection::vec(any::<u64>(), 0..100)) {
        let mut h = Histogram::default();
        for &v in &values {
            let b = Histogram::bucket_of(v);
            prop_assert!(b < HISTOGRAM_BUCKETS);
            if v == 0 {
                prop_assert_eq!(b, 0);
            } else {
                prop_assert_eq!(b, 64 - v.leading_zeros() as usize);
                prop_assert!(v > Histogram::upper_bound(b - 1));
                prop_assert!(v <= Histogram::upper_bound(b));
            }
            h.record(v);
        }
        prop_assert_eq!(h.count, values.len() as u64);
        let expected_sum = values.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(h.sum, expected_sum);
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }
}

#[test]
fn merge_identity_and_empty() {
    let c = build(&[(0, 0, 5), (1, 1, 77), (2, 2, 9)]);
    let mut merged = Collector::new();
    merged.merge(&c);
    assert_eq!(merged, c);
    let mut with_empty = c.clone();
    with_empty.merge(&Collector::new());
    assert_eq!(with_empty, c);
    assert_eq!(
        c.span("gamma"),
        SpanAgg {
            count: 1,
            real_ns: 9,
            sim_secs: 9
        }
    );
}
