//! Property suite for the flight recorder's window merge semantics
//! (DESIGN.md "Flight recorder"), mirroring `merge_props.rs` for the
//! collector: folding per-shard window series in any order yields the
//! same series, sharding a fold loses nothing, gauge windows keep the
//! high-water mark regardless of arrival order, ring eviction is a pure
//! function of the key set, and a recorder's windows always re-sum to
//! the collector totals they were diffed from.

use obsv::timeseries::{Recorder, Window, WindowSeries};
use obsv::Collector;
use proptest::prelude::*;

/// Builds one window from generated primitives. Names draw from a small
/// fixed pool so different shards genuinely collide on keys.
fn build_window(ops: &[(u8, u8, u64)]) -> Window {
    const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let mut w = Window::default();
    for &(what, name, value) in ops {
        let name = NAMES[(name % 4) as usize];
        match what % 3 {
            0 => {
                let slot = w.counters.entry(name).or_default();
                *slot = slot.saturating_add(value);
            }
            1 => w.histograms.entry(name).or_default().record(value),
            _ => {
                let slot = w.gauges.entry(name).or_default();
                *slot = (*slot).max(value);
            }
        }
    }
    w
}

/// Folds keyed windows into a fresh series of the given capacity, in
/// the order given.
fn fold_all(capacity: usize, keyed: &[(i64, Window)]) -> WindowSeries {
    let mut s = WindowSeries::new(capacity);
    for (key, w) in keyed {
        s.fold(*key, w);
    }
    s
}

type ShardOps = [(i64, Vec<(u8, u8, u64)>)];

fn keyed_windows(shard_ops: &ShardOps) -> Vec<(i64, Window)> {
    shard_ops
        .iter()
        .map(|(key, ops)| (*key % 8, build_window(ops)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merging per-shard series in shard order, reversed, or rotated
    /// yields the same series — the property that lets child recorders
    /// fold into a parent in whatever order they finish.
    #[test]
    fn series_merge_is_order_free(
        shard_ops in prop::collection::vec(
            prop::collection::vec(
                (any::<i64>(), prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..8)),
                0..6,
            ),
            0..6,
        ),
        rotation in any::<u8>(),
    ) {
        let shards: Vec<WindowSeries> = shard_ops
            .iter()
            .map(|ops| fold_all(64, &keyed_windows(ops)))
            .collect();
        let merge_order = |order: &[usize]| {
            let mut total = WindowSeries::new(64);
            for &i in order {
                total.merge(&shards[i]);
            }
            total
        };
        let in_order: Vec<usize> = (0..shards.len()).collect();
        let reversed: Vec<usize> = in_order.iter().rev().copied().collect();
        let rotated: Vec<usize> = if shards.is_empty() {
            Vec::new()
        } else {
            let r = rotation as usize % shards.len();
            in_order[r..].iter().chain(&in_order[..r]).copied().collect()
        };
        let want = merge_order(&in_order);
        prop_assert_eq!(&merge_order(&reversed), &want);
        prop_assert_eq!(&merge_order(&rotated), &want);
    }

    /// One flat fold over all keyed windows equals the merge of any
    /// split of those windows across two series — the recorder's
    /// harvest/absorb path loses nothing.
    #[test]
    fn series_sharding_is_lossless(
        ops in prop::collection::vec(
            (any::<i64>(), prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 0..8)),
            0..20,
        ),
        cut in any::<u8>(),
    ) {
        let keyed = keyed_windows(&ops);
        let flat = fold_all(64, &keyed);
        let cut = if keyed.is_empty() { 0 } else { cut as usize % (keyed.len() + 1) };
        let mut merged = fold_all(64, &keyed[..cut]);
        merged.merge(&fold_all(64, &keyed[cut..]));
        prop_assert_eq!(merged, flat);
    }

    /// Gauge windows hold the high-water mark: any arrival order of
    /// samples (and any sharding of them) produces max-per-key.
    #[test]
    fn gauges_keep_the_high_water_mark(
        samples in prop::collection::vec((any::<i64>(), any::<u64>()), 1..30),
        rotation in any::<u8>(),
    ) {
        let fold_samples = |order: &[usize]| {
            let mut s = WindowSeries::new(64);
            for &i in order {
                let (key, v) = samples[i];
                s.fold_gauge(key % 4, "rss", v);
            }
            s
        };
        let in_order: Vec<usize> = (0..samples.len()).collect();
        let r = rotation as usize % samples.len();
        let rotated: Vec<usize> =
            in_order[r..].iter().chain(&in_order[..r]).copied().collect();
        let want = fold_samples(&in_order);
        prop_assert_eq!(&fold_samples(&rotated), &want);
        for (key, w) in want.iter() {
            let max = samples
                .iter()
                .filter(|(k, _)| k % 4 == key)
                .map(|&(_, v)| v)
                .max();
            prop_assert_eq!(w.gauge("rss"), max);
        }
    }

    /// Ring eviction is a pure function of the key set: a bounded fold
    /// retains exactly the unbounded fold's windows at the highest
    /// `capacity` keys — eviction can drop history but never corrupt a
    /// retained window.
    #[test]
    fn ring_eviction_keeps_the_highest_keys_intact(
        ops in prop::collection::vec(
            (any::<i64>(), prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 1..5)),
            0..24,
        ),
        capacity in 1usize..6,
    ) {
        let keyed = keyed_windows(&ops);
        let bounded = fold_all(capacity, &keyed);
        let unbounded = fold_all(usize::MAX, &keyed);
        prop_assert!(bounded.len() <= capacity);
        let mut keys: Vec<i64> = unbounded.iter().map(|(k, _)| k).collect();
        keys.sort();
        let expect_keys: Vec<i64> =
            keys.iter().rev().take(capacity).rev().copied().collect();
        let got_keys: Vec<i64> = bounded.iter().map(|(k, _)| k).collect();
        prop_assert_eq!(got_keys, expect_keys, "retained keys are the highest");
        for (key, w) in bounded.iter() {
            prop_assert_eq!(Some(w), unbounded.window(key), "retained window intact at {}", key);
        }
    }

    /// A recorder's sim windows are exact deltas: summing every window
    /// reconstructs the final collector totals, no matter how the
    /// increments are batched into rolls.
    #[test]
    fn recorder_windows_resum_to_collector_totals(
        increments in prop::collection::vec(
            prop::collection::vec((any::<u8>(), any::<u8>(), any::<u64>() ), 0..6),
            1..10,
        ),
    ) {
        const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
        let mut recorder = Recorder::new(usize::MAX, 1000);
        let mut collector = Collector::new();
        for (i, batch) in increments.iter().enumerate() {
            for &(what, name, value) in batch {
                let name = NAMES[(name % 4) as usize];
                match what % 2 {
                    0 => {
                        let slot = collector.counters.entry(name).or_default();
                        *slot = slot.saturating_add(value);
                    }
                    _ => collector.histograms.entry(name).or_default().record(value),
                }
            }
            recorder.roll(i as i64, &collector);
        }
        let mut total = Window::default();
        for (_, w) in recorder.sim.iter() {
            total.merge(w);
        }
        for (name, v) in &collector.counters {
            prop_assert_eq!(total.counter(name), *v, "counter {} re-sums", name);
        }
        for (name, h) in &collector.histograms {
            let got = total.histograms.get(name).expect("histogram window present");
            prop_assert_eq!(got.count, h.count);
            prop_assert_eq!(got.sum, h.sum);
            prop_assert_eq!(&got.buckets[..], &h.buckets[..]);
        }
    }
}
