//! Streaming JSONL trace exporter.
//!
//! When the `RUN_TRACE` environment variable names a file, every
//! completed span and every event appends one JSON object per line:
//!
//! ```text
//! {"kind":"span","name":"scan.policy","real_ns":183042,"sim_secs":5,"thread":3}
//! {"kind":"event","name":"supervisor.checkpoint_write","thread":0}
//! ```
//!
//! `thread` is a small process-local ordinal (assigned on first write
//! per thread), not an OS thread id, so traces from repeated runs are
//! comparable. `ts_us` is elapsed wall microseconds since the first
//! trace write in the process — a relative clock, so two traces of the
//! same run shape line up when overlaid. Lines from concurrent workers
//! interleave — the trace is an execution log, not a deterministic
//! artifact; the deterministic aggregates live in [`crate::Collector`].
//! JSON is emitted by hand: names are `&'static str` literals from
//! instrumentation sites and the writer escapes them conservatively,
//! keeping the crate zero-dep.
//!
//! [`chrome_trace`] converts a captured JSONL trace into Chrome
//! `trace_event` JSON (the `[{"ph":"X",...}]` array format), loadable
//! directly in [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing` — spans become duration slices per worker track,
//! events become instants. The `trace_chrome` binary in `crates/bench`
//! wraps it for the command line.

use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static WRITER: OnceLock<Option<Mutex<BufWriter<std::fs::File>>>> = OnceLock::new();
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

/// Elapsed wall microseconds since the process's trace epoch (the first
/// call in the process pins the epoch).
pub(crate) fn ts_us() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn writer() -> Option<&'static Mutex<BufWriter<std::fs::File>>> {
    WRITER
        .get_or_init(|| {
            let path = std::env::var_os("RUN_TRACE").filter(|v| !v.is_empty())?;
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .ok()?;
            Some(Mutex::new(BufWriter::new(file)))
        })
        .as_ref()
}

/// Whether a trace file is active (i.e. `RUN_TRACE` named a writable
/// path).
pub fn active() -> bool {
    writer().is_some()
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_line(line: &str) {
    if let Some(w) = writer() {
        if let Ok(mut w) = w.lock() {
            let _ = writeln!(w, "{line}");
        }
    }
}

pub(crate) fn write_span(name: &str, real_ns: u64, sim_secs: u64) {
    if !active() {
        return;
    }
    let ord = THREAD_ORD.with(|t| *t);
    let ts = ts_us();
    let mut line = String::with_capacity(112);
    line.push_str("{\"kind\":\"span\",\"name\":\"");
    escape_into(&mut line, name);
    line.push_str(&format!(
        "\",\"real_ns\":{real_ns},\"sim_secs\":{sim_secs},\"thread\":{ord},\"ts_us\":{ts}}}"
    ));
    write_line(&line);
}

pub(crate) fn write_event(name: &str) {
    if !active() {
        return;
    }
    let ord = THREAD_ORD.with(|t| *t);
    let ts = ts_us();
    let mut line = String::with_capacity(80);
    line.push_str("{\"kind\":\"event\",\"name\":\"");
    escape_into(&mut line, name);
    line.push_str(&format!("\",\"thread\":{ord},\"ts_us\":{ts}}}"));
    write_line(&line);
}

/// Flushes buffered trace lines to disk. Call at the end of a run (the
/// bench binaries and supervisor do); otherwise lines flush when the
/// buffer fills or the process exits cleanly.
pub fn flush() {
    if let Some(w) = writer() {
        if let Ok(mut w) = w.lock() {
            let _ = w.flush();
        }
    }
}

// ---------------------------------------------------------------------
// Chrome trace_event conversion
// ---------------------------------------------------------------------

/// Pulls a JSON string field out of one of *our own* trace lines. This
/// is not a general JSON parser — it relies on the writer above always
/// emitting `"key":"value"` with the value already escaped — which is
/// exactly why it can stay 20 lines and zero-dep.
fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let mut escaped = false;
    for (i, ch) in rest.char_indices() {
        match ch {
            '\\' if !escaped => escaped = true,
            '"' if !escaped => return Some(&rest[..i]),
            _ => escaped = false,
        }
    }
    None
}

/// Pulls an unsigned JSON number field out of one of our trace lines.
fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Converts a captured JSONL trace (the `RUN_TRACE` format) into Chrome
/// `trace_event` JSON — an array of complete-duration (`"ph":"X"`)
/// slices for spans and instant (`"ph":"i"`) markers for events, one
/// track per worker-thread ordinal. The output loads directly in
/// Perfetto or `chrome://tracing`.
///
/// Spans are written at *end* time (the timer records on drop), so the
/// slice start is `ts_us - dur`. Lines without a `ts_us` field (traces
/// captured by older builds) fall back to ts 0 and still render, just
/// stacked at the origin. Unrecognized lines are skipped, not fatal —
/// a truncated trace from a killed run should still open.
pub fn chrome_trace(jsonl: &str) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for line in jsonl.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(name) = extract_str(line, "name") else {
            continue;
        };
        let tid = extract_u64(line, "thread").unwrap_or(0);
        let ts = extract_u64(line, "ts_us").unwrap_or(0);
        let entry = if line.contains("\"kind\":\"span\"") {
            let dur_us = extract_u64(line, "real_ns").unwrap_or(0) / 1000;
            let sim_secs = extract_u64(line, "sim_secs").unwrap_or(0);
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"sim_secs\":{sim_secs}}}}}",
                ts.saturating_sub(dur_us),
                dur_us.max(1),
            )
        } else if line.contains("\"kind\":\"event\"") {
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
                 \"pid\":1,\"tid\":{tid},\"ts\":{ts}}}"
            )
        } else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&entry);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::{chrome_trace, escape_into, extract_str, extract_u64};

    #[test]
    fn escapes_json_specials() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn extracts_own_line_format() {
        let line = "{\"kind\":\"span\",\"name\":\"scan.policy\",\"real_ns\":1500,\"sim_secs\":5,\"thread\":3,\"ts_us\":42}";
        assert_eq!(extract_str(line, "name"), Some("scan.policy"));
        assert_eq!(extract_u64(line, "real_ns"), Some(1500));
        assert_eq!(extract_u64(line, "ts_us"), Some(42));
        assert_eq!(extract_u64(line, "missing"), None);
        let esc = "{\"kind\":\"event\",\"name\":\"a\\\"b\",\"thread\":0,\"ts_us\":1}";
        assert_eq!(extract_str(esc, "name"), Some("a\\\"b"));
    }

    #[test]
    fn chrome_trace_converts_spans_and_events() {
        let jsonl = "\
{\"kind\":\"span\",\"name\":\"scan.policy\",\"real_ns\":2000,\"sim_secs\":5,\"thread\":3,\"ts_us\":100}\n\
garbage line that is not json\n\
{\"kind\":\"event\",\"name\":\"supervisor.checkpoint_write\",\"thread\":0,\"ts_us\":150}\n";
        let out = chrome_trace(jsonl);
        let expected = concat!(
            "[{\"name\":\"scan.policy\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":3,",
            "\"ts\":98,\"dur\":2,\"args\":{\"sim_secs\":5}},",
            "{\"name\":\"supervisor.checkpoint_write\",\"cat\":\"event\",\"ph\":\"i\",",
            "\"s\":\"t\",\"pid\":1,\"tid\":0,\"ts\":150}]",
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn chrome_trace_tolerates_missing_ts() {
        let jsonl =
            "{\"kind\":\"span\",\"name\":\"s\",\"real_ns\":5000,\"sim_secs\":0,\"thread\":1}\n";
        let out = chrome_trace(jsonl);
        assert!(out.starts_with("[{\"name\":\"s\""), "{out}");
        assert!(out.contains("\"ts\":0"), "start clamps at origin: {out}");
        assert!(out.contains("\"dur\":5"), "{out}");
    }
}
