//! Streaming JSONL trace exporter.
//!
//! When the `RUN_TRACE` environment variable names a file, every
//! completed span and every event appends one JSON object per line:
//!
//! ```text
//! {"kind":"span","name":"scan.policy","real_ns":183042,"sim_secs":5,"thread":3}
//! {"kind":"event","name":"supervisor.checkpoint_write","thread":0}
//! ```
//!
//! `thread` is a small process-local ordinal (assigned on first write
//! per thread), not an OS thread id, so traces from repeated runs are
//! comparable. Lines from concurrent workers interleave — the trace is
//! an execution log, not a deterministic artifact; the deterministic
//! aggregates live in [`crate::Collector`]. JSON is emitted by hand:
//! names are `&'static str` literals from instrumentation sites and the
//! writer escapes them conservatively, keeping the crate zero-dep.

use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

static WRITER: OnceLock<Option<Mutex<BufWriter<std::fs::File>>>> = OnceLock::new();
static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

fn writer() -> Option<&'static Mutex<BufWriter<std::fs::File>>> {
    WRITER
        .get_or_init(|| {
            let path = std::env::var_os("RUN_TRACE").filter(|v| !v.is_empty())?;
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .ok()?;
            Some(Mutex::new(BufWriter::new(file)))
        })
        .as_ref()
}

/// Whether a trace file is active (i.e. `RUN_TRACE` named a writable
/// path).
pub fn active() -> bool {
    writer().is_some()
}

fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_line(line: &str) {
    if let Some(w) = writer() {
        if let Ok(mut w) = w.lock() {
            let _ = writeln!(w, "{line}");
        }
    }
}

pub(crate) fn write_span(name: &str, real_ns: u64, sim_secs: u64) {
    if !active() {
        return;
    }
    let ord = THREAD_ORD.with(|t| *t);
    let mut line = String::with_capacity(96);
    line.push_str("{\"kind\":\"span\",\"name\":\"");
    escape_into(&mut line, name);
    line.push_str(&format!(
        "\",\"real_ns\":{real_ns},\"sim_secs\":{sim_secs},\"thread\":{ord}}}"
    ));
    write_line(&line);
}

pub(crate) fn write_event(name: &str) {
    if !active() {
        return;
    }
    let ord = THREAD_ORD.with(|t| *t);
    let mut line = String::with_capacity(64);
    line.push_str("{\"kind\":\"event\",\"name\":\"");
    escape_into(&mut line, name);
    line.push_str(&format!("\",\"thread\":{ord}}}"));
    write_line(&line);
}

/// Flushes buffered trace lines to disk. Call at the end of a run (the
/// bench binaries and supervisor do); otherwise lines flush when the
/// buffer fills or the process exits cleanly.
pub fn flush() {
    if let Some(w) = writer() {
        if let Ok(mut w) = w.lock() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::escape_into;

    #[test]
    fn escapes_json_specials() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "a\\\"b\\\\c\\u000ad");
    }
}
