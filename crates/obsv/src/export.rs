//! Exporters over a [`Collector`] snapshot.
//!
//! Two formats, both hand-rolled so the crate stays zero-dep:
//!
//! - [`prometheus_text`]: Prometheus text exposition (counters, span
//!   aggregates as `_count` / `_real_seconds_total` /
//!   `_sim_seconds_total`, histograms as cumulative `_bucket{le=...}`
//!   series with `+Inf`, `_sum`, `_count`).
//! - [`profile_rows`]: a per-stage self-time table for the `exp_profile`
//!   bench binary, sorted by real time descending.
//!
//! Output is fully determined by the collector contents: maps are
//! `BTreeMap`s, so iteration order is lexicographic and two identical
//! collectors always export identical bytes.

use crate::{Collector, Histogram, HISTOGRAM_BUCKETS};
use std::fmt::Write;

fn sanitize(name: &str) -> String {
    // Prometheus metric names allow [a-zA-Z0-9_:]; instrumentation
    // sites use dots as namespace separators ("scan.policy").
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a collector in the Prometheus text exposition format.
pub fn prometheus_text(c: &Collector) -> String {
    let mut out = String::new();
    for (name, value) in &c.counters {
        let m = sanitize(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, agg) in &c.spans {
        let m = sanitize(name);
        let _ = writeln!(out, "# TYPE {m}_count counter");
        let _ = writeln!(out, "{m}_count {}", agg.count);
        let _ = writeln!(out, "# TYPE {m}_real_seconds_total counter");
        let _ = writeln!(
            out,
            "{m}_real_seconds_total {}",
            format_seconds_from_ns(agg.real_ns)
        );
        let _ = writeln!(out, "# TYPE {m}_sim_seconds_total counter");
        let _ = writeln!(out, "{m}_sim_seconds_total {}", agg.sim_secs);
    }
    for (name, h) in &c.histograms {
        let m = sanitize(name);
        let _ = writeln!(out, "# TYPE {m} histogram");
        let mut cumulative = 0u64;
        for (i, n) in h.buckets.iter().enumerate() {
            cumulative += n;
            // Only print occupied boundaries plus the final +Inf to
            // keep exposition compact; cumulative semantics preserved.
            if *n > 0 {
                if i >= HISTOGRAM_BUCKETS - 1 {
                    continue; // folded into +Inf below
                }
                let _ = writeln!(
                    out,
                    "{m}_bucket{{le=\"{}\"}} {cumulative}",
                    Histogram::upper_bound(i)
                );
            }
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{m}_sum {}", h.sum);
        let _ = writeln!(out, "{m}_count {}", h.count);
        // Server-side quantile estimates from the log2 buckets, as
        // companion gauges (a TYPE histogram series may not carry
        // quantile labels itself). Accurate to the bucket width (2x).
        for (suffix, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
            let _ = writeln!(out, "# TYPE {m}_{suffix} gauge");
            let _ = writeln!(out, "{m}_{suffix} {}", h.quantile(q));
        }
    }
    out
}

/// Nanoseconds → decimal seconds without going through floats (exact,
/// platform-stable).
fn format_seconds_from_ns(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

/// One row of the per-stage self-time profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name ("scan.record", "scan.probe", ...).
    pub name: String,
    /// Completed span count.
    pub count: u64,
    /// Total real time across all spans, nanoseconds.
    pub real_ns: u64,
    /// Total simulated seconds across all spans.
    pub sim_secs: u64,
    /// Mean real time per span, nanoseconds (0 when count is 0).
    pub mean_ns: u64,
}

/// The span aggregates as profile rows, sorted by total real time
/// descending (ties broken by name so output is deterministic).
pub fn profile_rows(c: &Collector) -> Vec<ProfileRow> {
    let mut rows: Vec<ProfileRow> = c
        .spans
        .iter()
        .map(|(name, agg)| ProfileRow {
            name: (*name).to_string(),
            count: agg.count,
            real_ns: agg.real_ns,
            sim_secs: agg.sim_secs,
            mean_ns: agg.real_ns.checked_div(agg.count).unwrap_or(0),
        })
        .collect();
    rows.sort_by(|a, b| b.real_ns.cmp(&a.real_ns).then_with(|| a.name.cmp(&b.name)));
    rows
}

/// Renders the profile rows as an aligned text table (the `exp_profile`
/// binary prints this alongside the JSON report).
pub fn profile_table(rows: &[ProfileRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>14} {:>12} {:>12}",
        "stage", "count", "real_ms", "mean_us", "sim_secs"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>14.3} {:>12.1} {:>12}",
            r.name,
            r.count,
            r.real_ns as f64 / 1e6,
            r.mean_ns as f64 / 1e3,
            r.sim_secs
        );
    }
    out
}

/// One row of the histogram quantile table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileRow {
    /// Histogram name ("probe_us", "resolver.latency_us", ...).
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Estimated quantiles (log2-bucket interpolation, 2x accuracy).
    pub p50: u64,
    /// 95th percentile estimate.
    pub p95: u64,
    /// 99th percentile estimate.
    pub p99: u64,
}

/// The collector's histograms as quantile rows, sorted by name.
pub fn quantile_rows(c: &Collector) -> Vec<QuantileRow> {
    c.histograms
        .iter()
        .map(|(name, h)| QuantileRow {
            name: (*name).to_string(),
            count: h.count,
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        })
        .collect()
}

/// Renders the quantile rows as an aligned text table (printed by
/// `exp_profile` under the per-stage profile).
pub fn quantile_table(rows: &[QuantileRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>10} {:>12} {:>12} {:>12}",
        "histogram", "count", "p50", "p95", "p99"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>12} {:>12} {:>12}",
            r.name, r.count, r.p50, r.p95, r.p99
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanAgg;

    fn sample_collector() -> Collector {
        let mut c = Collector::new();
        *c.counters.entry("scan_retries_total").or_default() += 5;
        c.histograms.entry("probe_us").or_default().record(3);
        c.histograms.entry("probe_us").or_default().record(900);
        c.spans.insert(
            "scan.record",
            SpanAgg {
                count: 2,
                real_ns: 1_500_000_000,
                sim_secs: 9,
            },
        );
        c
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus_text(&sample_collector());
        assert!(text.contains("scan_retries_total 5"));
        assert!(text.contains("scan_record_count 2"));
        assert!(text.contains("scan_record_real_seconds_total 1.500000000"));
        assert!(text.contains("scan_record_sim_seconds_total 9"));
        assert!(text.contains("probe_us_bucket{le=\"3\"} 1"));
        assert!(text.contains("probe_us_bucket{le=\"1023\"} 2"));
        assert!(text.contains("probe_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("probe_us_sum 903"));
        assert!(text.contains("probe_us_count 2"));
        assert!(text.contains("# TYPE probe_us_p99 gauge"));
        assert!(text.contains("probe_us_p50 "));
    }

    #[test]
    fn quantile_rows_cover_all_histograms() {
        let rows = quantile_rows(&sample_collector());
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "probe_us");
        assert_eq!(rows[0].count, 2);
        assert!(rows[0].p50 <= rows[0].p95 && rows[0].p95 <= rows[0].p99);
        let table = quantile_table(&rows);
        assert!(table.contains("probe_us"));
        assert!(table.contains("p99"));
    }

    #[test]
    fn exposition_is_deterministic() {
        let c = sample_collector();
        assert_eq!(prometheus_text(&c), prometheus_text(&c.clone()));
    }

    #[test]
    fn profile_rows_sorted_by_real_time() {
        let mut c = sample_collector();
        c.spans.insert(
            "scan.policy",
            SpanAgg {
                count: 1,
                real_ns: 9_000_000_000,
                sim_secs: 1,
            },
        );
        let rows = profile_rows(&c);
        assert_eq!(rows[0].name, "scan.policy");
        assert_eq!(rows[1].name, "scan.record");
        assert_eq!(rows[1].mean_ns, 750_000_000);
        let table = profile_table(&rows);
        assert!(table.contains("scan.policy"));
    }
}
