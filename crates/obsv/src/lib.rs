//! Deterministic telemetry for the scan pipeline: spans, counters and
//! histograms that are **byte-identity-safe** by construction.
//!
//! The paper's error taxonomy only means something if a failure can be
//! attributed to a stage (DNS TXT, HTTPS policy fetch, per-MX STARTTLS
//! probe — PAPER.md §4, Table 3), and the ROADMAP's "fast as the
//! hardware allows" goal needs to know where wall-clock goes before the
//! next optimisation. But every experiment in this workspace is also
//! contractually reproducible from a seed, so the telemetry layer obeys
//! one hard rule:
//!
//! > **Enabling telemetry must never change any scan output.** It draws
//! > from no RNG, advances no simulated clock, and takes no locks on the
//! > scan path. Collectors are thread-local; the only cross-thread step
//! > is an explicit merge in shard order after the workers have already
//! > produced their (telemetry-free) results.
//!
//! The digest suites pin this: full and weekly study digests are
//! asserted byte-identical with telemetry on and off, at
//! `SCAN_THREADS ∈ {1, 8}` (see `crates/scanner/tests/telemetry_identity.rs`
//! and the CI job that re-runs the PR-3/PR-4 suites with `RUN_TRACE`
//! set).
//!
//! # Model
//!
//! - **Counters** ([`counter!`]) are monotonic `u64` sums keyed by a
//!   static name — retries, backoff sleeps, fault activations,
//!   attack-window intersections, cache hits/misses/stand-downs.
//! - **Histograms** ([`histogram!`]) bucket `u64` samples into
//!   power-of-two buckets. Bucket boundaries are pure integer
//!   arithmetic (`floor(log2(v)) + 1` via `leading_zeros`), so they are
//!   identical on every platform — a property the merge proptests pin.
//! - **Spans** ([`span!`] / [`SpanTimer`]) measure one named pipeline
//!   stage, carrying *both* clocks: real elapsed nanoseconds
//!   (`std::time::Instant`) and simulated elapsed seconds (the
//!   scanner's retry/backoff clock). Per-name aggregates live in the
//!   collector; individual spans stream to the JSONL trace when
//!   `RUN_TRACE` is set.
//! - **Events** ([`event!`]) are counters that also emit a trace line —
//!   supervisor checkpoint writes, resumes, panic isolations.
//!
//! # Enablement
//!
//! Telemetry is off by default and costs one relaxed atomic load per
//! call site when off. It turns on when:
//!
//! - the `RUN_TRACE` environment variable is set (the JSONL trace
//!   exporter activates too, appending to that path), or
//! - the `OBSV` environment variable is set to anything but `0`, or
//! - [`set_enabled`]`(true)` is called programmatically.
//!
//! # Merge discipline
//!
//! Worker threads each accumulate into their own thread-local
//! [`Collector`]. `netbase::map_sharded` harvests each worker's
//! collector ([`harvest`]) and merges them into the caller's collector
//! **in shard order** ([`absorb`]). Aggregate counters and histograms
//! are commutative sums, so any merge order yields the same aggregate —
//! the shard-order convention exists so the operation is deterministic
//! by construction rather than by argument (and the proptests check the
//! commutativity claim).

pub mod export;
pub mod health;
pub mod timeseries;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;
use std::time::Instant;

// ---------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

/// Whether telemetry is enabled. The first call reads the environment
/// (`RUN_TRACE` set, or `OBSV` set to anything but `0` / empty); later
/// calls are one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        let from_env = std::env::var_os("RUN_TRACE").is_some_and(|v| !v.is_empty())
            || std::env::var("OBSV").map(|v| v != "0" && !v.is_empty()) == Ok(true);
        if from_env {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry on or off programmatically (test harnesses, the
/// profiling binary). Overrides whatever the environment said.
pub fn set_enabled(on: bool) {
    ENV_INIT.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A power-of-two histogram over `u64` samples (unit chosen by the call
/// site; the scan path records microseconds).
///
/// Bucket boundaries are integer arithmetic only — `bucket_of` is
/// `floor(log2(v)) + 1` computed from `leading_zeros` — so they cannot
/// drift across platforms or float environments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in: 0 for 0, otherwise
    /// `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i` (`2^i - 1`; the last
    /// bucket's bound is `u64::MAX`).
    pub fn upper_bound(i: usize) -> u64 {
        if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Merges another histogram into this one. Saturating addition on
    /// unsigned integers is commutative *and* associative, so merge
    /// order cannot matter even at the overflow boundary.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Estimates the `q`-quantile (0 ≤ q ≤ 1) from the log2 buckets:
    /// find the bucket holding the `ceil(q·count)`-th sample, then
    /// interpolate linearly within its `[2^(i-1), 2^i)` range by sample
    /// rank. The rank is an integer and the interpolation is pure
    /// integer arithmetic (`u128` intermediate), so the estimate is the
    /// same on every platform; the only float is the initial
    /// `q·count` product, whose IEEE result is fully determined.
    ///
    /// Accuracy is bounded by the bucket width: the estimate lies in
    /// the correct power-of-two bucket, i.e. within 2× of the true
    /// quantile — plenty for a "did p99 blow up" exposition line.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.count as f64) * q).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if i == 0 {
                    0
                } else {
                    Self::upper_bound(i - 1).saturating_add(1)
                };
                let hi = Self::upper_bound(i);
                let within = rank - seen; // 1..=c
                let offset = ((hi - lo) as u128 * within as u128 / c as u128) as u64;
                return lo.saturating_add(offset);
            }
            seen += c;
        }
        Self::upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

// ---------------------------------------------------------------------
// Span aggregates
// ---------------------------------------------------------------------

/// Per-name span aggregate: how many times a stage ran and how much
/// real and simulated time it consumed in total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Number of completed spans.
    pub count: u64,
    /// Total real elapsed nanoseconds.
    pub real_ns: u64,
    /// Total simulated elapsed seconds (the retry/backoff clock).
    pub sim_secs: u64,
}

impl SpanAgg {
    fn merge(&mut self, other: &SpanAgg) {
        self.count = self.count.saturating_add(other.count);
        self.real_ns = self.real_ns.saturating_add(other.real_ns);
        self.sim_secs = self.sim_secs.saturating_add(other.sim_secs);
    }
}

// ---------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------

/// One thread's telemetry: counters, histograms and span aggregates.
///
/// Keys are `&'static str` — every instrumentation point names itself
/// with a literal, so merging collectors from different crates needs no
/// allocation and no interning.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Collector {
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Power-of-two histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Per-name span aggregates.
    pub spans: BTreeMap<&'static str, SpanAgg>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Collector {
        Collector::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.spans.is_empty()
    }

    /// Merges `other` into `self`. Counters, histogram buckets and span
    /// aggregates are all commutative sums, so merging a set of
    /// collectors yields the same aggregate in any order — the property
    /// the merge proptests pin down.
    pub fn merge(&mut self, other: &Collector) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name).or_default();
            *slot = slot.saturating_add(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
        for (name, s) in &other.spans {
            self.spans.entry(name).or_default().merge(s);
        }
    }

    /// A counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A span aggregate (zeroed when the stage never ran).
    pub fn span(&self, name: &str) -> SpanAgg {
        self.spans.get(name).copied().unwrap_or_default()
    }
}

thread_local! {
    static TLS: RefCell<Collector> = RefCell::new(Collector::new());
}

/// Adds `n` to the named counter in this thread's collector. Prefer the
/// [`counter!`] macro, which short-circuits when telemetry is off.
pub fn add_counter(name: &'static str, n: u64) {
    TLS.with(|c| {
        let mut c = c.borrow_mut();
        let slot = c.counters.entry(name).or_default();
        *slot = slot.saturating_add(n);
    });
}

/// Records one histogram sample in this thread's collector. Prefer the
/// [`histogram!`] macro.
pub fn record_histogram(name: &'static str, value: u64) {
    TLS.with(|c| {
        c.borrow_mut()
            .histograms
            .entry(name)
            .or_default()
            .record(value)
    });
}

fn record_span_agg(name: &'static str, real_ns: u64, sim_secs: u64) {
    TLS.with(|c| {
        let agg = &mut *c.borrow_mut();
        let s = agg.spans.entry(name).or_default();
        s.count += 1;
        s.real_ns = s.real_ns.saturating_add(real_ns);
        s.sim_secs = s.sim_secs.saturating_add(sim_secs);
    });
}

/// Takes this thread's collector, leaving an empty one — the pool-worker
/// half of the shard-order merge. Returns `None` when telemetry is off
/// (so the disabled path allocates nothing).
pub fn harvest() -> Option<Collector> {
    if !enabled() {
        return None;
    }
    let c = TLS.with(|c| std::mem::take(&mut *c.borrow_mut()));
    if c.is_empty() {
        None
    } else {
        Some(c)
    }
}

/// Merges a harvested collector into this thread's collector — the
/// caller half of the shard-order merge.
pub fn absorb(other: &Collector) {
    TLS.with(|c| c.borrow_mut().merge(other));
}

/// A clone of this thread's collector (exporters read this).
pub fn snapshot() -> Collector {
    TLS.with(|c| c.borrow().clone())
}

/// Clears this thread's collector.
pub fn reset() {
    TLS.with(|c| *c.borrow_mut() = Collector::new());
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// A live span over one pipeline stage. Created by [`span!`] (or
/// [`SpanTimer::start`]); records itself into the thread-local collector
/// — and the JSONL trace, when active — on drop.
///
/// When telemetry is off the timer holds no clock and drop does
/// nothing, so an early return through an instrumented stage costs one
/// branch.
#[derive(Debug)]
pub struct SpanTimer {
    name: &'static str,
    started: Option<Instant>,
    sim_secs: u64,
}

impl SpanTimer {
    /// Starts a span (no-op when telemetry is off).
    pub fn start(name: &'static str) -> SpanTimer {
        SpanTimer {
            name,
            started: enabled().then(Instant::now),
            sim_secs: 0,
        }
    }

    /// Sets the span's simulated-clock duration in seconds (negative
    /// inputs clamp to 0 so a caller can pass raw clock differences).
    pub fn set_sim_secs(&mut self, secs: i64) {
        self.sim_secs = secs.max(0) as u64;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let real_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        record_span_agg(self.name, real_ns, self.sim_secs);
        trace::write_span(self.name, real_ns, self.sim_secs);
    }
}

/// Emits a named event: a counter increment plus a JSONL trace line when
/// the trace is active. Prefer the [`event!`] macro.
pub fn emit_event(name: &'static str) {
    add_counter(name, 1);
    trace::write_event(name);
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Increments a counter: `obsv::counter!("scan_retries_total")` or
/// `obsv::counter!("scan_retries_total", n)`. Free when telemetry is
/// off.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1)
    };
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            $crate::add_counter($name, $n);
        }
    };
}

/// Records a histogram sample: `obsv::histogram!("probe_us", micros)`.
/// Free when telemetry is off.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            $crate::record_histogram($name, $value);
        }
    };
}

/// Opens a span over the enclosing scope:
/// `let _span = obsv::span!("scan.policy");` — optionally keep the
/// binding mutable to attach the simulated duration via
/// [`SpanTimer::set_sim_secs`]. Free when telemetry is off.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanTimer::start($name)
    };
}

/// Emits an event (counter + trace line):
/// `obsv::event!("supervisor.checkpoint_write");`. Free when telemetry
/// is off.
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::emit_event($name);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Every bucket's values fall within (prev_bound, bound].
        for i in 1..HISTOGRAM_BUCKETS {
            let lo = Histogram::upper_bound(i - 1);
            let hi = Histogram::upper_bound(i);
            assert!(lo < hi, "bucket {i}");
            assert_eq!(Histogram::bucket_of(lo + 1), i, "low edge of {i}");
            assert_eq!(Histogram::bucket_of(hi), i, "high edge of {i}");
        }
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        // Log2 buckets bound accuracy to 2x: the estimate must land in
        // the same power-of-two bucket as the true quantile.
        for (q, truth) in [(0.50, 50u64), (0.95, 95), (0.99, 99)] {
            let est = h.quantile(q);
            assert_eq!(
                Histogram::bucket_of(est),
                Histogram::bucket_of(truth),
                "q={q} est={est} truth={truth}"
            );
        }
        // Degenerate single-value histogram: exact.
        let mut one = Histogram::default();
        one.record(0);
        assert_eq!(one.quantile(0.99), 0);
        let mut big = Histogram::default();
        big.record(u64::MAX);
        assert_eq!(Histogram::bucket_of(big.quantile(0.5)), 64);
    }

    #[test]
    fn collector_merge_sums() {
        let mut a = Collector::new();
        *a.counters.entry("x").or_default() += 3;
        a.histograms.entry("h").or_default().record(10);
        let mut b = Collector::new();
        *b.counters.entry("x").or_default() += 4;
        *b.counters.entry("y").or_default() += 1;
        b.histograms.entry("h").or_default().record(1000);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.counter("y"), 1);
        let h = &a.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1010);
    }

    #[test]
    fn thread_local_collection_round_trips() {
        // Run in a dedicated thread so a fresh TLS collector is
        // guaranteed regardless of what other tests in this process do.
        std::thread::spawn(|| {
            set_enabled(true);
            counter!("tls_test_total", 2);
            histogram!("tls_test_us", 500);
            {
                let mut s = span!("tls_test.stage");
                s.set_sim_secs(7);
            }
            let snap = snapshot();
            assert_eq!(snap.counter("tls_test_total"), 2);
            assert_eq!(snap.histograms["tls_test_us"].count, 1);
            let agg = snap.span("tls_test.stage");
            assert_eq!(agg.count, 1);
            assert_eq!(agg.sim_secs, 7);
            // harvest empties the collector...
            let harvested = harvest().expect("non-empty collector");
            assert!(snapshot().is_empty());
            // ...and absorb restores it.
            absorb(&harvested);
            assert_eq!(snapshot().counter("tls_test_total"), 2);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        std::thread::spawn(|| {
            set_enabled(false);
            counter!("off_total");
            histogram!("off_us", 1);
            let _s = span!("off.stage");
            drop(_s);
            assert!(snapshot().is_empty());
            assert!(harvest().is_none());
        })
        .join()
        .unwrap();
    }
}
