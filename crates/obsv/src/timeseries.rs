//! Windowed time-series telemetry — the flight recorder's storage layer.
//!
//! The end-of-run aggregates in [`crate::Collector`] answer "how much,
//! in total"; a multi-minute scale-1.0 run also needs "how much, *when*"
//! — throughput collapse at a hot date, memory creep, a stalled shard
//! are all invisible in totals. This module records **windows**: for
//! each window key, the counter *deltas*, histogram *deltas* and gauge
//! watermarks accumulated while that window was current.
//!
//! Two parallel keyings per recorder (ISSUE 10's "keyed by both
//! sim-date and wall-clock window"):
//!
//! - the **sim series**, keyed by a caller-supplied ordinal (the
//!   drivers pass the snapshot date's midnight unix seconds). Its
//!   *counter* layer — counter deltas and span-count deltas — is a pure
//!   function of the work and is byte-identical at any thread count;
//!   gauge and histogram windows may carry execution observables (RSS
//!   watermarks, wall-time latencies) placed against sim time, which is
//!   exactly what memory-creep-per-date diagnosis needs but makes them
//!   execution detail like the wall series;
//! - the **wall series**, keyed by elapsed-wall-clock bucket since the
//!   recorder started. An execution log, like the JSONL trace: useful,
//!   comparable across runs, but not a digest artifact.
//!
//! # Merge discipline
//!
//! Exactly [`crate::Collector`]'s: counter and histogram merges are
//! saturating sums (commutative, associative), gauges merge by
//! **maximum** (also commutative/associative — a gauge window holds the
//! high-water mark, so folding shard recorders in any order yields the
//! same series). Ring-buffer eviction happens *after* merge and keeps
//! the highest keys, so eviction cannot reorder a fold either. The
//! proptests in `crates/obsv/tests/timeseries_props.rs` pin all of this
//! the way `merge_props.rs` pins the collector.
//!
//! # Zero perturbation
//!
//! Like the rest of `obsv`, the recorder draws from no RNG, advances no
//! simulated clock and takes no locks on the scan path: drivers call
//! [`roll`] once per date/wave from the orchestrating thread, which
//! diffs that thread's collector snapshot against the previous roll.
//! When flight recording is off ([`flight_enabled`]), `roll` is one
//! relaxed atomic load.

use crate::{Collector, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once};
use std::time::Instant;

// ---------------------------------------------------------------------
// Enablement
// ---------------------------------------------------------------------

static FLIGHT: AtomicBool = AtomicBool::new(false);
static FLIGHT_ENV: Once = Once::new();

/// Whether the flight recorder is on. First call reads the `FLIGHT`
/// environment variable (anything but `0`/empty enables); later calls
/// are one relaxed atomic load. Enabling the flight recorder also
/// enables base telemetry — windows are deltas of the collector, so
/// there is nothing to record without it.
#[inline]
pub fn flight_enabled() -> bool {
    FLIGHT_ENV.call_once(|| {
        let on = std::env::var("FLIGHT").map(|v| v != "0" && !v.is_empty()) == Ok(true);
        if on {
            FLIGHT.store(true, Ordering::Relaxed);
            crate::set_enabled(true);
        }
    });
    FLIGHT.load(Ordering::Relaxed)
}

/// Turns flight recording on or off programmatically. Turning it on
/// also enables base telemetry (see [`flight_enabled`]).
pub fn set_flight(on: bool) {
    FLIGHT_ENV.call_once(|| {});
    FLIGHT.store(on, Ordering::Relaxed);
    if on {
        crate::set_enabled(true);
    }
}

// ---------------------------------------------------------------------
// Window
// ---------------------------------------------------------------------

/// One window's worth of telemetry: counter deltas, histogram deltas,
/// and gauge high-water marks, all keyed by static instrumentation
/// names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Window {
    /// Counter increments that landed in this window.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histogram samples that landed in this window.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// Gauge high-water marks observed during this window.
    pub gauges: BTreeMap<&'static str, u64>,
}

impl Window {
    /// Whether nothing landed in this window.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.gauges.is_empty()
    }

    /// Merges another window into this one: counters and histograms by
    /// saturating sum, gauges by maximum. Both operations are
    /// commutative and associative, so window merges are order-free —
    /// the property `timeseries_props.rs` pins.
    pub fn merge(&mut self, other: &Window) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name).or_default();
            *slot = slot.saturating_add(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name).or_default();
            *slot = (*slot).max(*v);
        }
    }

    /// A counter's delta in this window (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's high-water mark in this window (`None` when never set).
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }
}

// ---------------------------------------------------------------------
// WindowSeries
// ---------------------------------------------------------------------

/// A bounded, key-ordered ring of windows. Keys are caller-defined
/// ordinals (sim-date seconds for the sim series, elapsed-wall buckets
/// for the wall series); when the ring exceeds its capacity the lowest
/// keys are evicted, so a long run keeps its most recent horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSeries {
    capacity: usize,
    /// Windows evicted by the ring bound so far (so an exporter can say
    /// "…and N older windows fell off" instead of silently truncating).
    pub evicted: u64,
    windows: BTreeMap<i64, Window>,
}

/// Default ring capacity: three years of weekly windows plus slack.
pub const DEFAULT_WINDOW_CAPACITY: usize = 256;

impl Default for WindowSeries {
    fn default() -> WindowSeries {
        WindowSeries::new(DEFAULT_WINDOW_CAPACITY)
    }
}

impl WindowSeries {
    /// An empty series bounded to `capacity` windows (min 1).
    pub fn new(capacity: usize) -> WindowSeries {
        WindowSeries {
            capacity: capacity.max(1),
            evicted: 0,
            windows: BTreeMap::new(),
        }
    }

    /// The ring bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window is retained.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The retained windows in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, &Window)> {
        self.windows.iter().map(|(k, w)| (*k, w))
    }

    /// The window at `key`, if retained.
    pub fn window(&self, key: i64) -> Option<&Window> {
        self.windows.get(&key)
    }

    /// Folds `delta` into the window at `key` (creating it), then
    /// enforces the ring bound.
    pub fn fold(&mut self, key: i64, delta: &Window) {
        if delta.is_empty() {
            return;
        }
        self.windows.entry(key).or_default().merge(delta);
        self.trim();
    }

    /// Sets a gauge high-water mark in the window at `key`.
    pub fn fold_gauge(&mut self, key: i64, name: &'static str, value: u64) {
        let slot = self
            .windows
            .entry(key)
            .or_default()
            .gauges
            .entry(name)
            .or_default();
        *slot = (*slot).max(value);
        self.trim();
    }

    /// Merges another series into this one: windows fold pairwise by
    /// key, eviction counts add, and the ring bound applies afterward —
    /// so merging per-shard series in any order yields the same result.
    pub fn merge(&mut self, other: &WindowSeries) {
        for (key, w) in &other.windows {
            self.windows.entry(*key).or_default().merge(w);
        }
        self.evicted = self.evicted.saturating_add(other.evicted);
        self.trim();
    }

    fn trim(&mut self) {
        while self.windows.len() > self.capacity {
            let lowest = *self.windows.keys().next().expect("non-empty over capacity");
            self.windows.remove(&lowest);
            self.evicted += 1;
        }
    }

    /// Renders the series as compact JSON (hand-rolled; see
    /// [`crate::trace`] for the escaping discipline). Deterministic:
    /// `BTreeMap` ordering everywhere.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (key, w)) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"key\":{key}"));
            if !w.counters.is_empty() {
                out.push_str(",\"counters\":{");
                for (j, (name, v)) in w.counters.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{name}\":{v}"));
                }
                out.push('}');
            }
            if !w.gauges.is_empty() {
                out.push_str(",\"gauges\":{");
                for (j, (name, v)) in w.gauges.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{name}\":{v}"));
                }
                out.push('}');
            }
            if !w.histograms.is_empty() {
                out.push_str(",\"histograms\":{");
                for (j, (name, h)) in w.histograms.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        h.count,
                        h.sum,
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    ));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

/// The flight recorder proper: diffs collector snapshots into windows.
///
/// A recorder belongs to one orchestrating thread (the driver loop that
/// absorbs worker collectors); [`Recorder::roll`] diffs that thread's
/// current aggregates against the previous roll and folds the delta
/// into both series. Sharded *recorders* (one per child process, say)
/// fold with [`Recorder::merge`] under the same order-free guarantee as
/// the windows themselves.
#[derive(Debug, Clone)]
pub struct Recorder {
    /// Sim-keyed series (deterministic; part of manifest identity only
    /// for uninterrupted work — see the manifest docs).
    pub sim: WindowSeries,
    /// Elapsed-wall-bucket series (execution log).
    pub wall: WindowSeries,
    /// Wall bucket width in milliseconds.
    pub wall_bucket_ms: u64,
    last: Collector,
    started: Option<Instant>,
    /// Gauges staged by [`Recorder::gauge`] for the next roll.
    pending_gauges: BTreeMap<&'static str, u64>,
}

/// Default wall bucket width: one second.
pub const DEFAULT_WALL_BUCKET_MS: u64 = 1000;

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new(DEFAULT_WINDOW_CAPACITY, DEFAULT_WALL_BUCKET_MS)
    }
}

impl Recorder {
    /// A recorder with the given ring capacity and wall bucket width.
    pub fn new(capacity: usize, wall_bucket_ms: u64) -> Recorder {
        Recorder {
            sim: WindowSeries::new(capacity),
            wall: WindowSeries::new(capacity),
            wall_bucket_ms: wall_bucket_ms.max(1),
            last: Collector::new(),
            started: None,
            pending_gauges: BTreeMap::new(),
        }
    }

    /// Stages a gauge watermark for the next [`Recorder::roll`].
    pub fn gauge(&mut self, name: &'static str, value: u64) {
        let slot = self.pending_gauges.entry(name).or_default();
        *slot = (*slot).max(value);
    }

    /// Diffs `current` against the previous roll and folds the delta
    /// (plus staged gauges) into the sim window at `sim_key` and the
    /// current wall bucket. Returns the delta window.
    pub fn roll(&mut self, sim_key: i64, current: &Collector) -> Window {
        let started = *self.started.get_or_insert_with(Instant::now);
        let mut delta = Window::default();
        for (name, v) in &current.counters {
            let prev = self.last.counters.get(name).copied().unwrap_or(0);
            let d = v.saturating_sub(prev);
            if d > 0 {
                delta.counters.insert(name, d);
            }
        }
        for (name, h) in &current.histograms {
            let d = match self.last.histograms.get(name) {
                Some(prev) => histogram_delta(h, prev),
                None => h.clone(),
            };
            if d.count > 0 {
                delta.histograms.insert(name, d);
            }
        }
        // Span aggregates surface as per-window counters so stage
        // activity is visible over time without a second key space.
        for (name, agg) in &current.spans {
            let prev = self.last.spans.get(name).copied().unwrap_or_default();
            let d = agg.count.saturating_sub(prev.count);
            if d > 0 {
                delta.counters.insert(name, d);
            }
        }
        delta.gauges = std::mem::take(&mut self.pending_gauges);
        self.last = current.clone();
        let wall_key = (started.elapsed().as_millis() as u64 / self.wall_bucket_ms) as i64;
        self.sim.fold(sim_key, &delta);
        self.wall.fold(wall_key, &delta);
        delta
    }

    /// Merges another recorder's series into this one (order-free).
    pub fn merge(&mut self, other: &Recorder) {
        self.sim.merge(&other.sim);
        self.wall.merge(&other.wall);
    }
}

/// Bucket-wise histogram subtraction (`current - previous`). Sound
/// because histograms only ever grow; saturating keeps a (buggy) reset
/// from panicking.
fn histogram_delta(current: &Histogram, previous: &Histogram) -> Histogram {
    let mut d = Histogram::default();
    for (i, slot) in d.buckets.iter_mut().enumerate() {
        *slot = current.buckets[i].saturating_sub(previous.buckets[i]);
    }
    d.count = current.count.saturating_sub(previous.count);
    d.sum = current.sum.saturating_sub(previous.sum);
    d
}

// ---------------------------------------------------------------------
// Process-global recorder (driver hooks)
// ---------------------------------------------------------------------

static GLOBAL: Mutex<Option<Recorder>> = Mutex::new(None);

/// Folds this thread's collector delta into the global recorder at
/// `sim_key` — the one hook drivers call per date / wave. One atomic
/// load when flight recording is off.
pub fn roll(sim_key: i64) {
    if !flight_enabled() {
        return;
    }
    let current = crate::snapshot();
    let mut guard = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
    guard
        .get_or_insert_with(Recorder::default)
        .roll(sim_key, &current);
}

/// Stages a gauge watermark on the global recorder (applied at the next
/// [`roll`]). Free when flight recording is off.
pub fn gauge(name: &'static str, value: u64) {
    if !flight_enabled() {
        return;
    }
    let mut guard = GLOBAL.lock().unwrap_or_else(|p| p.into_inner());
    guard
        .get_or_insert_with(Recorder::default)
        .gauge(name, value);
}

/// Takes the global recorder, leaving none (manifest assembly reads
/// this at end of run). `None` when nothing ever rolled.
pub fn take() -> Option<Recorder> {
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner()).take()
}

/// A clone of the global recorder, if any (mid-run inspection).
pub fn peek() -> Option<Recorder> {
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner()).clone()
}

/// Clears the global recorder (test harnesses, bench binaries).
pub fn reset_flight() {
    *GLOBAL.lock().unwrap_or_else(|p| p.into_inner()) = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_windows_are_counter_deltas() {
        let mut r = Recorder::new(8, 1000);
        let mut c = Collector::new();
        *c.counters.entry("x").or_default() += 5;
        c.histograms.entry("h").or_default().record(100);
        let w1 = r.roll(10, &c);
        assert_eq!(w1.counter("x"), 5);
        assert_eq!(w1.histograms["h"].count, 1);
        *c.counters.entry("x").or_default() += 2;
        c.histograms.entry("h").or_default().record(7);
        let w2 = r.roll(20, &c);
        assert_eq!(w2.counter("x"), 2, "second window holds only the delta");
        assert_eq!(w2.histograms["h"].count, 1);
        assert_eq!(w2.histograms["h"].sum, 7);
        assert_eq!(r.sim.len(), 2);
        assert_eq!(r.sim.window(10).unwrap().counter("x"), 5);
        assert_eq!(r.sim.window(20).unwrap().counter("x"), 2);
    }

    #[test]
    fn gauges_merge_by_max_and_ring_evicts_lowest() {
        let mut s = WindowSeries::new(2);
        s.fold_gauge(1, "rss", 10);
        s.fold_gauge(1, "rss", 7);
        assert_eq!(s.window(1).unwrap().gauge("rss"), Some(10));
        s.fold_gauge(2, "rss", 11);
        s.fold_gauge(3, "rss", 12);
        assert_eq!(s.len(), 2);
        assert_eq!(s.evicted, 1);
        assert!(s.window(1).is_none(), "lowest key evicted");
        assert!(s.window(3).is_some());
    }

    #[test]
    fn series_json_is_deterministic() {
        let mut s = WindowSeries::new(4);
        let mut w = Window::default();
        w.counters.insert("b", 2);
        w.counters.insert("a", 1);
        w.gauges.insert("g", 9);
        s.fold(5, &w);
        let json = s.to_json();
        assert_eq!(
            json,
            "[{\"key\":5,\"counters\":{\"a\":1,\"b\":2},\"gauges\":{\"g\":9}}]"
        );
        assert_eq!(json, s.clone().to_json());
    }

    #[test]
    fn staged_gauges_land_in_the_next_roll() {
        let mut r = Recorder::new(8, 1000);
        r.gauge("rss_kb", 100);
        r.gauge("rss_kb", 90);
        let w = r.roll(1, &Collector::new());
        assert_eq!(w.gauge("rss_kb"), Some(100));
        let w2 = r.roll(2, &Collector::new());
        assert_eq!(
            w2.gauge("rss_kb"),
            None,
            "gauges do not persist across rolls"
        );
    }
}
