//! Run-health layer: RSS watermarks, progress/ETA/stall tracking, and
//! the end-of-run [`RunManifest`].
//!
//! A multi-minute scale-1.0 study needs three things the end-of-run
//! aggregates can't give: *is it still moving* (progress + stall
//! detection), *is memory creeping* (RSS/VmHWM sampling, the same
//! `/proc/self/status` probe `exp_scale` uses for its child-process
//! watermarks), and *what run was this, exactly* (the manifest: seed,
//! config digest, output digest, per-stage profile, peak memory).
//!
//! # Streaming vs. manifest
//!
//! Progress is streamed as JSONL while the run is live — set the
//! `RUN_HEALTH` environment variable to a file path and every
//! [`progress`] call appends one line:
//!
//! ```text
//! {"kind":"progress","label":"scan.full","done":12,"total":100,"rate_milli":4100,"eta_secs":21,"rss_kb":51234,"ts_us":812345}
//! {"kind":"stall","label":"scan.full","gap_ms":31007,"ts_us":31819352}
//! ```
//!
//! Like the trace, the stream is an execution log (wall-clock rates,
//! interleaving) — not a digest artifact. The manifest splits the same
//! way, explicitly: its **identity** section (experiment, seed, config
//! digest, output digest, deterministic totals) is a pure function of
//! the work and is what the kill/resume test compares; its
//! **execution** section (wall time, peak RSS, threads, stage profile,
//! flight-recorder windows) describes *this particular* execution and
//! legitimately differs between a resumed and an uninterrupted run —
//! a resumed run replays completed dates from the checkpoint instead
//! of rescanning them, so its wall clock and window deltas must
//! differ while its identity must not.
//!
//! # Stall detection
//!
//! A stall is an inter-progress gap exceeding the threshold
//! (`RUN_HEALTH_STALL_MS`, default 30 000). Detection is post-hoc at
//! the next update — the recorder has no watchdog thread, because a
//! thread that wakes on wall-clock timers is exactly the kind of
//! nondeterminism this crate exists to avoid. A run that hangs
//! *forever* is caught by the absence of further JSONL lines, which is
//! what an operator tails anyway.

use crate::export::ProfileRow;
use crate::timeseries::WindowSeries;
use crate::trace::{escape_into, ts_us};
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{BufWriter, Write};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// FNV-1a (the workspace-wide digest primitive)
// ---------------------------------------------------------------------

/// FNV-1a 64-bit over a byte string — the same digest primitive the
/// checkpoint format and bench binaries use.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// RSS probes (/proc/self/status)
// ---------------------------------------------------------------------

fn proc_status_kb(key: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
            return digits.parse().unwrap_or(0);
        }
    }
    0
}

/// Peak resident set size (VmHWM) of this process in kB; 0 where
/// `/proc` is unavailable. Cumulative per process — `exp_scale` re-execs
/// itself per step for exactly this reason.
pub fn peak_rss_kb() -> u64 {
    proc_status_kb("VmHWM:")
}

/// Current resident set size (VmRSS) in kB; 0 where `/proc` is
/// unavailable.
pub fn current_rss_kb() -> u64 {
    proc_status_kb("VmRSS:")
}

// ---------------------------------------------------------------------
// Progress stream
// ---------------------------------------------------------------------

static HEALTH_WRITER: OnceLock<Option<Mutex<BufWriter<std::fs::File>>>> = OnceLock::new();

fn health_writer() -> Option<&'static Mutex<BufWriter<std::fs::File>>> {
    HEALTH_WRITER
        .get_or_init(|| {
            let path = std::env::var_os("RUN_HEALTH").filter(|v| !v.is_empty())?;
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .ok()?;
            Some(Mutex::new(BufWriter::new(file)))
        })
        .as_ref()
}

/// Whether the progress stream is active (`RUN_HEALTH` named a writable
/// path).
pub fn health_active() -> bool {
    health_writer().is_some()
}

fn write_health_line(line: &str) {
    if let Some(w) = health_writer() {
        if let Ok(mut w) = w.lock() {
            let _ = writeln!(w, "{line}");
        }
    }
}

/// Flushes buffered progress lines (end-of-run; mirrors
/// [`crate::trace::flush`]).
pub fn flush() {
    if let Some(w) = health_writer() {
        if let Ok(mut w) = w.lock() {
            let _ = w.flush();
        }
    }
}

fn stall_threshold_ms() -> u64 {
    static MS: OnceLock<u64> = OnceLock::new();
    *MS.get_or_init(|| {
        std::env::var("RUN_HEALTH_STALL_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30_000)
    })
}

struct ProgressState {
    started: Instant,
    last_update: Option<Instant>,
    stalls: u64,
}

static PROGRESS: Mutex<Option<ProgressState>> = Mutex::new(None);

/// One progress snapshot, as computed by [`progress`] (returned so
/// callers — and tests — can see what was derived).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressReport {
    /// Work units completed so far.
    pub done: u64,
    /// Total work units (0 when unknown).
    pub total: u64,
    /// Throughput in milli-units per second (integer arithmetic: a
    /// rate of 4.1 domains/sec reports 4100).
    pub rate_milli: u64,
    /// Estimated seconds to completion (0 when rate or total unknown).
    pub eta_secs: u64,
    /// Current VmRSS sample in kB.
    pub rss_kb: u64,
    /// Whether this update closed a stall gap.
    pub stalled: bool,
}

/// Derives rate/ETA from raw elapsed time — pure integer arithmetic,
/// kept separate so the math is unit-testable without wall clocks.
pub fn derive_progress(done: u64, total: u64, elapsed_ms: u64, rss_kb: u64) -> ProgressReport {
    let rate_milli = if elapsed_ms == 0 {
        0
    } else {
        (done as u128 * 1_000_000 / elapsed_ms as u128) as u64
    };
    let eta_secs = if rate_milli == 0 || total <= done {
        0
    } else {
        ((total - done) as u128 * 1000 / rate_milli as u128) as u64
    };
    ProgressReport {
        done,
        total,
        rate_milli,
        eta_secs,
        rss_kb,
        stalled: false,
    }
}

/// Records a progress tick for a named stage: derives throughput and
/// ETA, samples VmRSS, stages RSS as a flight-recorder gauge, detects
/// stalls (gap since the previous tick above the threshold), and
/// appends a JSONL line when `RUN_HEALTH` is active. Cheap when
/// neither the health stream nor the flight recorder is on.
pub fn progress(label: &'static str, done: u64, total: u64) -> Option<ProgressReport> {
    if !health_active() && !crate::timeseries::flight_enabled() {
        return None;
    }
    let now = Instant::now();
    let mut guard = PROGRESS.lock().unwrap_or_else(|p| p.into_inner());
    let state = guard.get_or_insert_with(|| ProgressState {
        started: now,
        last_update: None,
        stalls: 0,
    });
    let elapsed_ms =
        u64::try_from(now.duration_since(state.started).as_millis()).unwrap_or(u64::MAX);
    let gap_ms = state
        .last_update
        .map(|t| u64::try_from(now.duration_since(t).as_millis()).unwrap_or(u64::MAX));
    state.last_update = Some(now);
    let stalled = gap_ms.is_some_and(|g| g >= stall_threshold_ms());
    if stalled {
        state.stalls += 1;
    }
    let stalls = state.stalls;
    drop(guard);

    let rss = current_rss_kb();
    let mut report = derive_progress(done, total, elapsed_ms, rss);
    report.stalled = stalled;

    crate::timeseries::gauge("health.rss_kb", rss);
    if stalled {
        crate::counter!("health.stalls_total");
    }

    if health_active() {
        if let Some(gap) = gap_ms.filter(|_| stalled) {
            let mut line = String::with_capacity(96);
            line.push_str("{\"kind\":\"stall\",\"label\":\"");
            escape_into(&mut line, label);
            line.push_str(&format!(
                "\",\"gap_ms\":{gap},\"stalls\":{stalls},\"ts_us\":{}}}",
                ts_us()
            ));
            write_health_line(&line);
        }
        let mut line = String::with_capacity(160);
        line.push_str("{\"kind\":\"progress\",\"label\":\"");
        escape_into(&mut line, label);
        line.push_str(&format!(
            "\",\"done\":{},\"total\":{},\"rate_milli\":{},\"eta_secs\":{},\"rss_kb\":{},\"ts_us\":{}}}",
            report.done,
            report.total,
            report.rate_milli,
            report.eta_secs,
            report.rss_kb,
            ts_us()
        ));
        write_health_line(&line);
    }
    Some(report)
}

/// Stalls observed so far (manifest assembly reads this).
pub fn stall_count() -> u64 {
    PROGRESS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .as_ref()
        .map(|s| s.stalls)
        .unwrap_or(0)
}

/// Clears progress state (test harnesses, bench child steps).
pub fn reset_progress() {
    *PROGRESS.lock().unwrap_or_else(|p| p.into_inner()) = None;
}

// ---------------------------------------------------------------------
// RunManifest
// ---------------------------------------------------------------------

/// The end-of-run manifest: what ran (identity) and how it ran
/// (execution). Written next to the checkpoint as
/// `<checkpoint>.manifest.json` and by the bench binaries next to
/// their reports.
///
/// The identity section is deterministic — same seed, same config,
/// same outputs ⇒ same [`RunManifest::identity_digest`], regardless of
/// thread count, flight recorder, or kill/resume. The execution
/// section is this execution's log and carries no such guarantee.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Experiment name ("scan.full_supervised", "exp_scale.step", ...).
    pub experiment: String,
    /// The run's RNG seed.
    pub seed: u64,
    /// Digest of the run configuration.
    pub config_digest: u64,
    /// Digest of the run's outputs (snapshot fingerprints, ledger
    /// digests — whatever the driver considers its product).
    pub output_digest: u64,
    /// Deterministic named totals (error taxonomy counts, domain
    /// counts) — kill/resume-stable by construction.
    pub totals: BTreeMap<String, u64>,
    /// Worker thread count used.
    pub threads: u64,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: u64,
    /// Peak resident set size (VmHWM) in kB.
    pub peak_rss_kb: u64,
    /// Stalls detected by the progress layer.
    pub stalls: u64,
    /// Per-stage self-time profile (sorted by real time desc).
    pub profile: Vec<ProfileRow>,
    /// Flight-recorder sim-keyed windows, when recording was on.
    pub sim_windows: Option<WindowSeries>,
    /// Flight-recorder wall-keyed windows, when recording was on.
    pub wall_windows: Option<WindowSeries>,
}

impl RunManifest {
    /// The identity section as canonical JSON — the digest input.
    pub fn identity_json(&self) -> String {
        let mut out = String::from("{\"experiment\":\"");
        escape_into(&mut out, &self.experiment);
        out.push_str(&format!(
            "\",\"seed\":{},\"config_digest\":\"{:016x}\",\"output_digest\":\"{:016x}\",\"totals\":{{",
            self.seed, self.config_digest, self.output_digest
        ));
        for (i, (name, v)) in self.totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, name);
            out.push_str(&format!("\":{v}"));
        }
        out.push_str("}}");
        out
    }

    /// FNV-1a digest of the identity section.
    pub fn identity_digest(&self) -> u64 {
        fnv64(self.identity_json().as_bytes())
    }

    /// The full manifest as JSON (identity + digest + execution).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"identity\": ");
        out.push_str(&self.identity_json());
        out.push_str(&format!(
            ",\n  \"identity_digest\": \"{:016x}\",\n  \"execution\": {{\"threads\":{},\"wall_ms\":{},\"peak_rss_kb\":{},\"stalls\":{}",
            self.identity_digest(),
            self.threads,
            self.wall_ms,
            self.peak_rss_kb,
            self.stalls
        ));
        out.push_str(",\"profile\":[");
        for (i, r) in self.profile.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_into(&mut out, &r.name);
            out.push_str(&format!(
                "\",\"count\":{},\"real_ns\":{},\"sim_secs\":{},\"mean_ns\":{}}}",
                r.count, r.real_ns, r.sim_secs, r.mean_ns
            ));
        }
        out.push(']');
        if let Some(s) = &self.sim_windows {
            out.push_str(",\"sim_windows\":");
            out.push_str(&s.to_json());
            out.push_str(&format!(",\"sim_windows_evicted\":{}", s.evicted));
        }
        if let Some(s) = &self.wall_windows {
            out.push_str(",\"wall_windows\":");
            out.push_str(&s.to_json());
        }
        out.push_str("}\n}\n");
        out
    }

    /// Fills the execution profile and flight-recorder windows from the
    /// current thread's collector and the global recorder (taking the
    /// recorder), plus peak RSS and stall count. Call once, at end of
    /// run, from the driver thread that absorbed the workers.
    pub fn capture_execution(&mut self) {
        self.profile = crate::export::profile_rows(&crate::snapshot());
        self.peak_rss_kb = peak_rss_kb();
        self.stalls = stall_count();
        if let Some(rec) = crate::timeseries::take() {
            self.sim_windows = Some(rec.sim);
            self.wall_windows = Some(rec.wall);
        }
    }

    /// Writes the manifest atomically (unique temp file + rename, the
    /// checkpoint discipline) so a kill mid-write can't leave a torn
    /// manifest next to a good checkpoint.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = self.to_json();
        let pid = std::process::id();
        let tmp = path.with_extension(format!("tmp.{pid}"));
        std::fs::write(&tmp, json.as_bytes())?;
        std::fs::rename(&tmp, path)
    }

    /// The conventional manifest path for a checkpoint file.
    pub fn path_for_checkpoint(checkpoint: &std::path::Path) -> std::path::PathBuf {
        let mut name = checkpoint.file_name().unwrap_or_default().to_os_string();
        name.push(".manifest.json");
        checkpoint.with_file_name(name)
    }
}

/// Extracts the `identity_digest` field from a serialized manifest
/// without a JSON parser — the kill/resume test reads manifests from
/// disk and only needs the digest.
pub fn identity_digest_of_json(manifest_json: &str) -> Option<String> {
    let needle = "\"identity_digest\": \"";
    let start = manifest_json.find(needle)? + needle.len();
    let rest = &manifest_json[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn derive_progress_rates_and_eta() {
        let r = derive_progress(50, 100, 10_000, 1234);
        assert_eq!(r.rate_milli, 5_000, "50 units / 10s = 5/s");
        assert_eq!(r.eta_secs, 10, "50 left at 5/s");
        assert_eq!(r.rss_kb, 1234);
        let done = derive_progress(100, 100, 10_000, 0);
        assert_eq!(done.eta_secs, 0);
        let fresh = derive_progress(0, 100, 0, 0);
        assert_eq!(fresh.rate_milli, 0);
        assert_eq!(fresh.eta_secs, 0);
    }

    #[test]
    fn manifest_identity_digest_ignores_execution() {
        let mut a = RunManifest {
            experiment: "scan.full".into(),
            seed: 42,
            config_digest: 7,
            output_digest: 9,
            ..Default::default()
        };
        a.totals.insert("domains".into(), 100);
        let mut b = a.clone();
        b.wall_ms = 99_999;
        b.peak_rss_kb = 1 << 20;
        b.threads = 8;
        b.stalls = 3;
        assert_eq!(a.identity_digest(), b.identity_digest());
        b.output_digest = 10;
        assert_ne!(a.identity_digest(), b.identity_digest());
    }

    #[test]
    fn manifest_json_round_trips_digest() {
        let mut m = RunManifest {
            experiment: "exp\"quoted".into(),
            seed: 1,
            ..Default::default()
        };
        m.totals.insert("t".into(), 2);
        let json = m.to_json();
        let extracted = identity_digest_of_json(&json).expect("digest field present");
        assert_eq!(extracted, format!("{:016x}", m.identity_digest()));
    }

    #[test]
    fn manifest_path_is_checkpoint_sibling() {
        let p = RunManifest::path_for_checkpoint(std::path::Path::new("/tmp/run/scan.ckpt"));
        assert_eq!(p, std::path::Path::new("/tmp/run/scan.ckpt.manifest.json"));
    }

    #[test]
    fn manifest_write_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("obsv_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.manifest.json");
        let m = RunManifest {
            experiment: "t".into(),
            seed: 3,
            ..Default::default()
        };
        m.write(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, m.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
