//! Concurrency and determinism suite for the shared policy-resolution
//! service (DESIGN.md "Policy-resolution service").
//!
//! Contracts under test:
//!
//! - **single-flight**: a thundering herd of N threads resolving the
//!   same cold domain triggers exactly one policy fetch — the herd
//!   parks on the in-flight slot and reuses the leader's result;
//! - **shard-merge determinism**: the sharded cache's snapshot is
//!   byte-identical to a single `PolicyCache`'s for every shard count
//!   (property);
//! - **oracle equivalence**: for any interleaving of stores and
//!   decisions, the sharded cache answers exactly what a single
//!   `PolicyCache` oracle answers (property);
//! - **batch determinism**: `resolve_batch`'s ledger digest is
//!   byte-identical at `SCAN_THREADS ∈ {1, 8}`, including duplicate
//!   coalescing and admission-control shedding;
//! - **outage-at-expiry regression**: a DNS outage coinciding with
//!   cache expiry keeps delivery protected through §3.3 stale fallback
//!   (the pre-fix cache erased the entry in `decide` and downgraded to
//!   plaintext under an active STARTTLS strip);
//! - **/metrics**: the daemon serves the resolver counters in
//!   Prometheus text exposition over real TCP.

use mtasts::{CachedPolicy, Mode, MxPattern, Policy, PolicyCache};
use mtasts_sender::resolver::{
    resolution_digest, AdmissionConfig, DaemonConfig, Disposition, PolicyResolver, PolicySource,
    ResolverConfig, ResolverDaemon, ShardedPolicyCache,
};
use mtasts_sender::{
    AttemptDisposition, DeliveryQueue, EnforcementConfig, MxTransport, QueueConfig, QueuedMessage,
    TlsEvidence, TlsRequirement,
};
use netbase::{DomainName, Duration, SimInstant};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Barrier, Mutex};

fn n(s: &str) -> DomainName {
    s.parse().unwrap()
}

fn t0() -> SimInstant {
    SimInstant::from_unix_secs(1_717_200_000)
}

fn policy_text(max_age: u64) -> String {
    format!("version: STSv1\r\nmode: enforce\r\nmx: mx.example.com\r\nmax_age: {max_age}\r\n")
}

/// A policy source that counts fetches per domain and can stall the
/// HTTPS leg to widen the herd window.
struct CountingSource {
    records: HashMap<DomainName, Option<Vec<String>>>,
    bodies: HashMap<DomainName, Result<String, String>>,
    fetches: Mutex<HashMap<DomainName, u64>>,
    fetch_stall: std::time::Duration,
}

impl CountingSource {
    fn new() -> CountingSource {
        CountingSource {
            records: HashMap::new(),
            bodies: HashMap::new(),
            fetches: Mutex::new(HashMap::new()),
            fetch_stall: std::time::Duration::ZERO,
        }
    }

    fn deploy(&mut self, domain: &str, max_age: u64) {
        self.records
            .insert(n(domain), Some(vec!["v=STSv1; id=one;".to_string()]));
        self.bodies.insert(n(domain), Ok(policy_text(max_age)));
    }

    fn fetch_count(&self, domain: &str) -> u64 {
        *self.fetches.lock().unwrap().get(&n(domain)).unwrap_or(&0)
    }
}

impl PolicySource for CountingSource {
    fn record_txts(&self, domain: &DomainName, _now: SimInstant) -> Option<Vec<String>> {
        self.records
            .get(domain)
            .cloned()
            .unwrap_or(Some(Vec::new()))
    }

    fn fetch_policy(&self, domain: &DomainName, _now: SimInstant) -> Result<String, String> {
        *self
            .fetches
            .lock()
            .unwrap()
            .entry(domain.clone())
            .or_default() += 1;
        if !self.fetch_stall.is_zero() {
            std::thread::sleep(self.fetch_stall);
        }
        self.bodies
            .get(domain)
            .cloned()
            .unwrap_or(Err("no policy host".to_string()))
    }
}

// ---------------------------------------------------------------------
// Single-flight
// ---------------------------------------------------------------------

#[test]
fn cold_herd_single_flight_one_fetch() {
    let mut source = CountingSource::new();
    source.deploy("herd.example", 86_400);
    source.fetch_stall = std::time::Duration::from_millis(50);
    let source = Arc::new(source);
    let resolver = Arc::new(PolicyResolver::new(ResolverConfig::default(), t0()));

    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let source = Arc::clone(&source);
            let resolver = Arc::clone(&resolver);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                resolver.resolve(&*source, &n("herd.example"), t0())
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // The single-flight contract: 8 threads, 1 cold domain, exactly 1
    // policy fetch.
    assert_eq!(source.fetch_count("herd.example"), 1, "herd broke through");
    for (resolved, _) in &results {
        match resolved {
            mtasts_sender::ResolvedPolicy::Active { policy, .. } => {
                assert_eq!(policy.mode, Mode::Enforce)
            }
            other => panic!("herd member got {other:?}"),
        }
    }
    let m = resolver.metrics();
    assert_eq!(m.requests, THREADS as u64);
    assert_eq!(m.fetches, 1);
    // Everyone but the leader either parked on the flight or landed
    // after the store as a plain hit.
    assert_eq!(m.coalesced + m.hits, THREADS as u64 - 1, "{m:?}");
    assert_eq!(resolver.cache().len(), 1);
}

#[test]
fn concurrent_herd_fetches_each_domain_once() {
    let mut source = CountingSource::new();
    let domains = ["a.example", "b.example", "c.example", "d.example"];
    for d in &domains {
        source.deploy(d, 86_400);
    }
    source.fetch_stall = std::time::Duration::from_millis(10);
    let source = Arc::new(source);
    let resolver = Arc::new(PolicyResolver::new(ResolverConfig::default(), t0()));

    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let source = Arc::clone(&source);
            let resolver = Arc::clone(&resolver);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Each thread walks the domains from a different start,
                // so every domain sees contention from every side.
                for k in 0..domains.len() {
                    let d = domains[(i + k) % domains.len()];
                    let (resolved, _) = resolver.resolve(&*source, &n(d), t0());
                    assert!(
                        matches!(resolved, mtasts_sender::ResolvedPolicy::Active { .. }),
                        "{d}: {resolved:?}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    for d in &domains {
        assert_eq!(source.fetch_count(d), 1, "{d} fetched more than once");
    }
    let m = resolver.metrics();
    assert_eq!(m.fetches, domains.len() as u64);
    assert_eq!(m.requests, (THREADS * domains.len()) as u64);
}

// ---------------------------------------------------------------------
// Shard-merge determinism + oracle equivalence (properties)
// ---------------------------------------------------------------------

fn arb_entry(
    domain_tag: u8,
    mode_tag: u8,
    max_age: u16,
    fetched: u16,
) -> (DomainName, CachedPolicy) {
    let domain = n(&format!("d{}.example", domain_tag % 24));
    let mode = match mode_tag % 3 {
        0 => Mode::Enforce,
        1 => Mode::Testing,
        _ => Mode::None,
    };
    let policy = Policy::new(
        mode,
        u64::from(max_age),
        vec![MxPattern::parse("mx.example.com").unwrap()],
    );
    let entry = CachedPolicy {
        policy,
        record_id: format!("id{}", mode_tag % 5),
        fetched_at: t0() + Duration::seconds(i64::from(fetched)),
    };
    (domain, entry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Snapshotting a sharded cache equals snapshotting one big
    /// `PolicyCache`, whatever the shard count — merging shards in
    /// shard order is a determinism guarantee, not an accident.
    #[test]
    fn shard_merge_matches_single_cache(
        raw in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u16>(), any::<u16>()),
            0..40,
        ),
        shards in any::<u8>(),
    ) {
        let entries: Vec<(DomainName, CachedPolicy)> = raw
            .iter()
            .map(|&(d, m, a, f)| arb_entry(d, m, a, f))
            .collect();
        // Duplicates keep the last entry in both implementations.
        let oracle = PolicyCache::from_snapshot(entries.clone()).snapshot();
        for count in [1usize, 2, usize::from(shards % 16) + 1, 64] {
            let sharded = ShardedPolicyCache::from_snapshot(entries.clone(), count);
            prop_assert_eq!(&sharded.snapshot(), &oracle, "shards={}", count);
        }
    }

    /// For any interleaving of stores and decisions, the sharded cache
    /// answers exactly what a single `PolicyCache` oracle answers, and
    /// both end with identical contents.
    #[test]
    fn sharded_decisions_match_oracle(
        ops in prop::collection::vec(
            (any::<bool>(), any::<u8>(), any::<u8>(), any::<u32>()),
            0..60,
        ),
    ) {
        let sharded = ShardedPolicyCache::new(8);
        let mut oracle = PolicyCache::new();
        for &(is_store, d, m, at) in &ops {
            let (a, t) = ((at >> 16) as u16, (at & 0xffff) as u16);
            let now = t0() + Duration::seconds(i64::from(t));
            if is_store {
                let (domain, entry) = arb_entry(d, m, a, t);
                sharded.store(domain.clone(), entry.policy.clone(), &entry.record_id, now);
                oracle.store(domain, entry.policy, &entry.record_id, now);
            } else {
                let domain = n(&format!("d{}.example", d % 24));
                let record_id = match m % 3 {
                    0 => None,
                    _ => Some(format!("id{}", m % 5)),
                };
                let got = sharded.assess(&domain, record_id.as_deref(), now);
                let want = oracle.decide(&domain, record_id.as_deref(), now);
                prop_assert_eq!(got, want);
            }
        }
        prop_assert_eq!(sharded.snapshot(), oracle.snapshot());
        // Sharded hit accounting mirrors the oracle's.
        prop_assert_eq!(sharded.stats().0, oracle.stats().0);
    }
}

// ---------------------------------------------------------------------
// Batch determinism
// ---------------------------------------------------------------------

/// A mixed world: deployed, undeployed, SERVFAIL, invalid-record and
/// dark-policy-host domains, plus duplicates inside the batch.
struct MixedSource;

impl PolicySource for MixedSource {
    fn record_txts(&self, domain: &DomainName, _now: SimInstant) -> Option<Vec<String>> {
        let tag = domain.labels().first().map(String::as_str).unwrap_or("");
        let k: u64 = tag
            .trim_start_matches(|c: char| !c.is_ascii_digit())
            .parse()
            .unwrap_or(0);
        match k % 5 {
            0 | 1 => Some(vec![format!("v=STSv1; id=gen{};", k % 7)]),
            2 => Some(Vec::new()),                  // undeployed
            3 => None,                              // SERVFAIL
            _ => Some(vec!["v=STSv1".to_string()]), // invalid (no id)
        }
    }

    fn fetch_policy(&self, domain: &DomainName, _now: SimInstant) -> Result<String, String> {
        let tag = domain.labels().first().map(String::as_str).unwrap_or("");
        let k: u64 = tag
            .trim_start_matches(|c: char| !c.is_ascii_digit())
            .parse()
            .unwrap_or(0);
        if k % 5 == 1 {
            Err("policy host down".to_string()) // dark host
        } else {
            Ok(policy_text(86_400))
        }
    }
}

fn mixed_batch(size: usize) -> Vec<DomainName> {
    (0..size)
        .map(|i| {
            // Every third request duplicates an earlier domain so the
            // batch exercises in-batch coalescing.
            let k = if i % 3 == 2 { i / 2 } else { i };
            n(&format!("m{k}.example"))
        })
        .collect()
}

fn batch_cfg(threads: usize) -> ResolverConfig {
    ResolverConfig {
        shards: 16,
        admission: Some(AdmissionConfig {
            rate_per_sec: 50.0,
            burst: 40,
            max_delay: Duration::seconds(2),
        }),
        threads,
    }
}

#[test]
fn batch_ledger_digest_is_thread_count_invariant() {
    let batch = mixed_batch(600);
    let run = |threads: usize| {
        let resolver = PolicyResolver::new(batch_cfg(threads), t0());
        let rows = resolver.resolve_batch(&MixedSource, &batch, t0());
        (resolution_digest(&rows), rows, resolver.metrics())
    };
    let (d1, rows1, m1) = run(1);
    let (d8, rows8, m8) = run(8);
    assert_eq!(rows1, rows8);
    assert_eq!(d1, d8, "ledger digest diverged across thread counts");
    assert_eq!(m1, m8, "service counters diverged across thread counts");

    // The batch genuinely exercised every disposition class.
    for want in [
        Disposition::Fetched,
        Disposition::Coalesced,
        Disposition::Undeployed,
        Disposition::RecordInvalid,
        Disposition::Unavailable,
        Disposition::Shed,
    ] {
        assert!(
            rows1.iter().any(|r| r.disposition == want),
            "batch never produced {want:?}"
        );
    }
    // Rows stay in submission order at every thread count.
    assert!(rows1.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
}

#[test]
fn warm_batch_is_all_hits() {
    let batch = mixed_batch(90);
    let resolver = PolicyResolver::new(batch_cfg(1), t0());
    let cold = resolver.resolve_batch(&MixedSource, &batch, t0());
    let later = t0() + Duration::minutes(5);
    let warm = resolver.resolve_batch(&MixedSource, &batch, later);
    for (c, w) in cold.iter().zip(&warm) {
        if matches!(
            c.disposition,
            Disposition::Fetched | Disposition::StaleFallback
        ) || (matches!(c.disposition, Disposition::Coalesced) && c.mode.is_some())
        {
            assert!(
                matches!(w.disposition, Disposition::Hit | Disposition::HitDespiteDns),
                "seq {}: fetched cold but {:?} warm",
                c.seq,
                w.disposition
            );
        }
    }
    // No fetch traffic on the warm pass beyond what cold left shed.
    let (_, fetches) = resolver.cache().stats();
    assert_eq!(
        fetches,
        warm.iter()
            .chain(cold.iter())
            .filter(|r| r.disposition == Disposition::Fetched)
            .count() as u64
    );
}

// ---------------------------------------------------------------------
// Outage-at-expiry regression (the pre-fix cache erased the entry)
// ---------------------------------------------------------------------

/// One enforce-mode domain whose DNS goes dark exactly when the cached
/// policy expires, with a STARTTLS strip running at that moment.
struct ExpiryOutage {
    /// Unix secs at which `_mta-sts` lookups start failing.
    outage_from: i64,
    /// STARTTLS strip window `[from, to)` in unix secs.
    strip: (i64, i64),
}

impl ExpiryOutage {
    fn stripped(&self, now: SimInstant) -> bool {
        (self.strip.0..self.strip.1).contains(&now.unix_secs())
    }
}

impl MxTransport for ExpiryOutage {
    fn route(
        &self,
        _domain: &DomainName,
        _now: SimInstant,
    ) -> Result<Vec<(u16, DomainName)>, String> {
        Ok(vec![(10, n("mx.example.com"))])
    }

    fn attempt(
        &self,
        _mx_host: &DomainName,
        _message: &QueuedMessage,
        now: SimInstant,
        tls: &TlsRequirement,
    ) -> AttemptDisposition {
        if self.stripped(now) {
            // The attacker strips STARTTLS: hard requirements refuse,
            // opportunistic sessions fall back to plaintext.
            match tls {
                TlsRequirement::RequirePkix | TlsRequirement::RequireDane(_) => {
                    AttemptDisposition::TlsRefused {
                        failure: mtasts::StsFailure::StartTlsUnavailable,
                    }
                }
                _ => AttemptDisposition::Delivered {
                    tls: TlsEvidence::Plaintext,
                },
            }
        } else {
            AttemptDisposition::Delivered {
                tls: match tls {
                    TlsRequirement::Opportunistic => TlsEvidence::Encrypted,
                    _ => TlsEvidence::Validated,
                },
            }
        }
    }

    fn sts_record(&self, _domain: &DomainName, now: SimInstant) -> Option<Vec<String>> {
        if now.unix_secs() >= self.outage_from {
            None // SERVFAIL-class: the lookup failed
        } else {
            Some(vec!["v=STSv1; id=one;".to_string()])
        }
    }

    fn fetch_sts_policy(&self, _domain: &DomainName, now: SimInstant) -> Result<String, String> {
        if now.unix_secs() >= self.outage_from {
            Err("policy host unreachable".to_string())
        } else {
            Ok(policy_text(3600))
        }
    }

    fn attack_touched(&self, _name: &DomainName, now: SimInstant) -> bool {
        self.stripped(now)
    }
}

#[test]
fn dns_outage_at_expiry_keeps_delivery_protected() {
    let epoch = t0().unix_secs();
    // Message 0 admits at epoch and warms the cache (max_age 3600).
    // Message 1 admits at +7200 — past expiry, inside both the DNS
    // outage (from +3600) and a strip window around its first attempt.
    let transport = ExpiryOutage {
        outage_from: epoch + 3600,
        strip: (epoch + 7200, epoch + 7240),
    };
    let cfg = QueueConfig {
        threads: 1,
        wave_size: 1,
        admission_spacing_secs: 7200,
        enforcement: Some(EnforcementConfig::default()),
        ..QueueConfig::default()
    };
    let messages = [
        QueuedMessage::new("m0", "a@send.example", "x@example.com", "warm the cache"),
        QueuedMessage::new("m1", "a@send.example", "y@example.com", "cross the outage"),
    ];
    let out = DeliveryQueue::new(cfg).run(&transport, &messages);

    // The retained (expired) entry must keep governing: the stripped
    // attempt is refused under RequirePkix and recovers after the
    // window. Before the cache fix, `decide` erased the entry, the
    // resolution fell to NotApplicable, and m1 left in plaintext
    // through the strip (intercepted = 1).
    assert_eq!(out.stats.delivered, 2, "{:?}", out.stats);
    assert_eq!(
        out.stats.intercepted, 0,
        "stale fallback failed: plaintext leaked"
    );
    assert_eq!(out.stats.delivered_validated, 2, "{:?}", out.stats);
    assert!(out.stats.stale_fallbacks >= 1, "{:?}", out.stats);
    let m1 = &out.records[1];
    assert!(m1.attempts > 1, "m1 never hit the strip window: {m1:?}");
}

// ---------------------------------------------------------------------
// /metrics
// ---------------------------------------------------------------------

#[test]
fn daemon_serves_prometheus_metrics_over_tcp() {
    use std::io::{Read as _, Write as _};

    let mut source = CountingSource::new();
    source.deploy("metrics.example", 86_400);
    let resolver = Arc::new(PolicyResolver::new(ResolverConfig::default(), t0()));
    let mut daemon = ResolverDaemon::new(DaemonConfig::default(), Arc::clone(&resolver), t0());
    let rows = daemon.tick(&source, &[n("metrics.example"), n("metrics.example")]);
    assert_eq!(rows.len(), 2);

    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = {
        let resolver = Arc::clone(&resolver);
        std::thread::spawn(move || {
            ResolverDaemon::serve_metrics(resolver, "127.0.0.1:0", Some(1), move |addr| {
                addr_tx.send(addr).unwrap();
            })
        })
    };
    let addr = addr_rx.recv().unwrap();
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    server.join().unwrap().unwrap();

    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("resolver_requests 2"), "{response}");
    assert!(response.contains("resolver_fetches 1"), "{response}");
    assert!(
        response.contains("resolver_coalesced_waits 1"),
        "{response}"
    );
    assert!(response.contains("resolver_cache_entries 1"), "{response}");
}

#[test]
fn daemon_serves_healthz_over_tcp() {
    use std::io::{Read as _, Write as _};

    let mut source = CountingSource::new();
    source.deploy("health.example", 86_400);
    let resolver = Arc::new(PolicyResolver::new(ResolverConfig::default(), t0()));
    let mut daemon = ResolverDaemon::new(DaemonConfig::default(), Arc::clone(&resolver), t0());
    daemon.tick(&source, &[n("health.example")]);
    daemon.tick(&source, &[n("health.example"), n("health.example")]);

    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let server = {
        let resolver = Arc::clone(&resolver);
        let health = daemon.health();
        std::thread::spawn(move || {
            ResolverDaemon::serve(resolver, health, "127.0.0.1:0", Some(3), move |addr| {
                addr_tx.send(addr).unwrap();
            })
        })
    };
    let addr = addr_rx.recv().unwrap();
    let fetch = |path: &str| {
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        response
    };

    let healthz = fetch("/healthz");
    assert!(healthz.starts_with("HTTP/1.1 200 OK"), "{healthz}");
    assert!(healthz.contains("application/json"), "{healthz}");
    assert!(healthz.contains("\"status\":\"ok\""), "{healthz}");
    assert!(healthz.contains("\"ticks\":2"), "{healthz}");
    assert!(healthz.contains("\"cache_entries\":1"), "{healthz}");
    // Second tick's window: two requests, nothing shed.
    assert!(healthz.contains("\"requests_last_window\":2"), "{healthz}");
    assert!(healthz.contains("\"shed_last_window\":0"), "{healthz}");
    assert!(healthz.contains("\"last_sweep_age_ticks\":2"), "{healthz}");

    // The live-resolve latency histogram rides the same exposition.
    let metrics = fetch("/metrics");
    assert!(metrics.contains("resolver_latency_us_count"), "{metrics}");
    assert!(metrics.contains("resolver_latency_us_p95"), "{metrics}");

    let missing = fetch("/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    assert!(missing.contains("see /metrics or /healthz"), "{missing}");
    server.join().unwrap().unwrap();
}

#[test]
fn sweep_disposes_expired_entries_metrics_counted() {
    let mut source = CountingSource::new();
    source.deploy("short.example", 60);
    source.deploy("long.example", 86_400);
    let resolver = PolicyResolver::new(ResolverConfig::default(), t0());
    resolver.resolve_batch(&source, &[n("short.example"), n("long.example")], t0());
    assert_eq!(resolver.cache().len(), 2);

    let evicted = resolver.sweep(t0() + Duration::minutes(10));
    assert_eq!(evicted, 1);
    assert_eq!(resolver.cache().len(), 1);
    let m = resolver.metrics();
    assert_eq!((m.evicted, m.sweeps), (1, 1));
}
