//! Determinism, fail-over, and chaos suite for the outbound delivery
//! pipeline (DESIGN.md "Delivery pipeline").
//!
//! The contracts under test:
//!
//! - **fail-over totality**: with one of N MX hosts hard-down, every
//!   message still delivers, and retry amplification stays within the
//!   policy's attempt cap;
//! - **thread invariance**: the ledger digest is byte-identical for
//!   every worker-thread count;
//! - **kill/resume**: a budget-suspended run resumed from its
//!   checkpoint produces the same ledger as an uninterrupted one;
//! - **circuit breaking**: a dead host is skipped after the threshold
//!   (throughput degrades, the queue never stalls), and a recovered
//!   host is re-admitted through a half-open probe;
//! - **typed taxonomy**: 5xx bounces immediately, 4xx requeues with
//!   backoff until the cap;
//! - **MX shuffle** (property): the seeded equal-preference shuffle is
//!   a permutation, stable per `(seed, domain)`, and independent of
//!   thread count.

use mtasts_sender::scenario::{build, Degradation, ScenarioSpec};
use mtasts_sender::{
    ledger_digest, mx_ladder, BounceReason, BreakerConfig, DeliveryQueue, FastTransport,
    MessageStatus, QueueConfig, QueueOutcome,
};
use netbase::{map_sharded, DetRng, DomainName};
use proptest::prelude::*;

fn queue_cfg(threads: usize) -> QueueConfig {
    QueueConfig {
        threads,
        wave_size: 8,
        ..QueueConfig::default()
    }
}

fn run_scenario(degradation: Degradation, threads: usize) -> QueueOutcome {
    let s = build(ScenarioSpec::small(7, degradation));
    let queue = DeliveryQueue::new(queue_cfg(threads));
    queue.run(&FastTransport::new(&s.world), &s.messages)
}

#[test]
fn one_of_n_down_delivers_everything_with_bounded_amplification() {
    let out = run_scenario(Degradation::OneMxDown, 1);
    let cap = queue_cfg(1).retry.max_attempts;
    assert!(!out.suspended);
    for rec in &out.records {
        assert!(
            rec.delivered(),
            "message {} failed to fail over: {:?}",
            rec.id,
            rec.status
        );
        assert!(
            rec.attempts <= cap,
            "retry amplification beyond the cap: {rec:?}"
        );
        // The dead host is mxa (first primary); nothing may claim
        // delivery through it.
        if let MessageStatus::Delivered { mx_host, .. } = &rec.status {
            assert!(!mx_host.starts_with("mxa."), "delivered via a dead MX");
        }
    }
    assert_eq!(out.stats.delivered, out.records.len() as u64);
    // Fail-over actually happened (some messages hit the dead rung
    // before the breaker opened).
    assert!(out.stats.failovers > 0, "{:?}", out.stats);
}

#[test]
fn ledger_digest_is_thread_count_invariant() {
    for degradation in [
        Degradation::None,
        Degradation::OneMxDown,
        Degradation::FlappingMx {
            down_secs: 120,
            up_secs: 240,
            cycles: 4,
        },
        Degradation::TierOutage,
        Degradation::Greylist { rate: 0.4 },
    ] {
        let digests: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&threads| ledger_digest(&run_scenario(degradation, threads).records))
            .collect();
        assert_eq!(
            digests[0], digests[1],
            "{degradation:?} diverges at 2 threads"
        );
        assert_eq!(
            digests[0], digests[2],
            "{degradation:?} diverges at 8 threads"
        );
    }
}

#[test]
fn killed_queue_resumes_to_the_same_ledger() {
    let s = build(ScenarioSpec::small(
        11,
        Degradation::FlappingMx {
            down_secs: 120,
            up_secs: 240,
            cycles: 4,
        },
    ));
    let transport = FastTransport::new(&s.world);

    // Reference: uninterrupted, no checkpoint file.
    let reference = DeliveryQueue::new(queue_cfg(2)).run(&transport, &s.messages);
    assert!(!reference.suspended);

    let dir = std::env::temp_dir().join(format!("mtasts-dlvq-{}-resume", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("queue.ckpt");
    let _ = std::fs::remove_file(&path);

    // Kill a third of the way in (the budget suspends at the next wave
    // boundary), then resume to completion.
    let killed = DeliveryQueue::new(QueueConfig {
        checkpoint_path: Some(path.clone()),
        message_budget: Some(s.messages.len() / 3),
        ..queue_cfg(2)
    })
    .run(&transport, &s.messages);
    assert!(killed.suspended);
    assert!(killed.records.len() < s.messages.len());

    let resumed = DeliveryQueue::new(QueueConfig {
        checkpoint_path: Some(path.clone()),
        ..queue_cfg(2)
    })
    .run(&transport, &s.messages);
    assert!(!resumed.suspended);

    assert_eq!(
        ledger_digest(&reference.records),
        ledger_digest(&resumed.records),
        "kill/resume must be byte-identical to an uninterrupted run"
    );
    assert_eq!(reference.stats, resumed.stats);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn breaker_opens_on_the_dead_host_and_queue_keeps_draining() {
    // Enough load that the dead primary trips its breakers well before
    // the queue drains; later messages must skip the dead rung outright.
    let s = build(ScenarioSpec {
        seed: 3,
        domains: 2,
        messages_per_domain: 40,
        degradation: Degradation::OneMxDown,
        sts: mtasts_sender::scenario::StsDeployment::None,
        epoch: netbase::SimInstant::from_unix_secs(1_717_200_000),
    });
    let queue = DeliveryQueue::new(QueueConfig {
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_secs: 100_000,
        },
        ..queue_cfg(1)
    });
    let out = queue.run(&FastTransport::new(&s.world), &s.messages);
    assert_eq!(out.stats.delivered, out.records.len() as u64);
    assert_eq!(out.board.open_count(), 2, "one open breaker per domain");
    assert!(
        out.stats.breaker_skips > 0,
        "later messages must skip the dead rung: {:?}",
        out.stats
    );
    // Once open, the dead host stops eating connection attempts: hard
    // failures are bounded by (threshold × hosts) plus the pre-open
    // window, far below one-per-message.
    assert!(
        out.stats.failovers < out.records.len() as u64,
        "breaker failed to contain the dead host: {:?}",
        out.stats
    );
}

#[test]
fn recovered_host_is_readmitted_through_a_half_open_probe() {
    // One short down phase at the epoch; the host is healthy afterwards.
    // With a short cooldown the breaker must re-admit it and later
    // messages deliver via the (preference-shuffled) ladder normally.
    let s = build(ScenarioSpec {
        seed: 5,
        domains: 1,
        messages_per_domain: 60,
        degradation: Degradation::FlappingMx {
            down_secs: 60,
            up_secs: 100_000,
            cycles: 1,
        },
        sts: mtasts_sender::scenario::StsDeployment::None,
        epoch: netbase::SimInstant::from_unix_secs(1_717_200_000),
    });
    let queue = DeliveryQueue::new(QueueConfig {
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_secs: 30,
        },
        ..queue_cfg(1)
    });
    let out = queue.run(&FastTransport::new(&s.world), &s.messages);
    assert_eq!(out.stats.delivered, out.records.len() as u64);
    // The breaker closed again after the probe landed.
    assert_eq!(out.board.open_count(), 0, "{:?}", out.board);
    // And the recovered primary actually carries mail again.
    let via_mxa = out
        .records
        .iter()
        .filter(|r| matches!(&r.status, MessageStatus::Delivered { mx_host, .. } if mx_host.starts_with("mxa.")))
        .count();
    assert!(via_mxa > 0, "recovered host never re-admitted");
}

#[test]
fn permanent_rejection_bounces_without_retry() {
    let s = build(ScenarioSpec::small(13, Degradation::None));
    // Every MX of d0.test refuses RCPTs for d0.test: provider opt-out.
    let victim: DomainName = "d0.test".parse().unwrap();
    for ip in s.world.mx_ips() {
        s.world.with_mx(ip, |e| {
            if e.hostname.to_string().ends_with(".d0.test") {
                e.reject_rcpt_domains.push(victim.clone());
            }
        });
    }
    let out = DeliveryQueue::new(queue_cfg(1)).run(&FastTransport::new(&s.world), &s.messages);
    for rec in &out.records {
        if rec.rcpt_to.ends_with("@d0.test") {
            let MessageStatus::Bounced { reason } = &rec.status else {
                panic!("550 must bounce: {rec:?}");
            };
            assert!(
                matches!(reason, BounceReason::Permanent { code: 550, .. }),
                "wrong bounce class: {reason:?}"
            );
            assert_eq!(rec.attempts, 1, "5xx must not retry: {rec:?}");
        } else {
            assert!(rec.delivered());
        }
    }
    assert_eq!(out.stats.bounced_permanent, 8);
}

#[test]
fn hard_greylisting_requeues_to_the_cap_then_bounces_typed() {
    let out = run_scenario(Degradation::Greylist { rate: 1.0 }, 1);
    let cap = queue_cfg(1).retry.max_attempts;
    for rec in &out.records {
        let MessageStatus::Bounced { reason } = &rec.status else {
            panic!("a 100% greylist world cannot deliver: {rec:?}");
        };
        let BounceReason::RetriesExhausted { last_error } = reason else {
            panic!("4xx must exhaust, not bounce permanent: {reason:?}");
        };
        assert!(last_error.contains("450"), "{last_error}");
        assert_eq!(rec.attempts, cap, "requeue must run to the cap: {rec:?}");
    }
    assert_eq!(out.stats.bounced_exhausted, out.records.len() as u64);
    assert_eq!(
        out.stats.requeues,
        out.records.len() as u64 * u64::from(cap - 1)
    );
    // Greylisting is protocol-level: the hosts are alive, no breaker
    // may open.
    assert_eq!(out.board.open_count(), 0);
}

// ---- satellite: MX weight-shuffle properties -------------------------

fn arb_records() -> impl Strategy<Value = Vec<(u16, DomainName)>> {
    proptest::collection::vec((0u16..4, 0usize..12), 1..16).prop_map(|raw| {
        raw.into_iter()
            .map(|(tier, host)| {
                let name: DomainName = format!("mx{host}.pool.example").parse().unwrap();
                (tier * 10, name)
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn shuffle_is_a_permutation(records in arb_records(), seed in 0u64..1_000) {
        let domain: DomainName = "rcpt.example".parse().unwrap();
        let ladder = mx_ladder(&DetRng::new(seed), &domain, &records);
        // Same multiset in, same multiset out (duplicates preserved).
        let mut want: Vec<(u16, String)> =
            records.iter().map(|(p, h)| (*p, h.to_string())).collect();
        let mut got: Vec<(u16, String)> = ladder
            .iter()
            .map(|c| (c.preference, c.host.to_string()))
            .collect();
        want.sort();
        got.sort();
        prop_assert_eq!(want, got);
        // Preference tiers never interleave.
        for pair in ladder.windows(2) {
            prop_assert!(pair[0].preference <= pair[1].preference);
        }
    }

    #[test]
    fn shuffle_is_stable_per_seed_and_domain(records in arb_records(), seed in 0u64..1_000) {
        let domain: DomainName = "rcpt.example".parse().unwrap();
        let a = mx_ladder(&DetRng::new(seed), &domain, &records);
        let b = mx_ladder(&DetRng::new(seed), &domain, &records);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn shuffle_ignores_input_order(records in arb_records(), seed in 0u64..1_000) {
        let domain: DomainName = "rcpt.example".parse().unwrap();
        let a = mx_ladder(&DetRng::new(seed), &domain, &records);
        let mut reversed = records.clone();
        reversed.reverse();
        let b = mx_ladder(&DetRng::new(seed), &domain, &reversed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn shuffle_is_thread_count_independent(seed in 0u64..200) {
        // The same ladder computed inside 1-, 2- and 8-way sharded maps:
        // byte-identical outputs, the pipeline's core obligation.
        let rng = DetRng::new(seed);
        let records: Vec<(u16, DomainName)> = (0..6)
            .map(|i| (10 * (i as u16 / 3), format!("mx{i}.pool.example").parse().unwrap()))
            .collect();
        let domains: Vec<DomainName> = (0..16)
            .map(|i| format!("d{i}.example").parse().unwrap())
            .collect();
        let runs: Vec<Vec<String>> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                map_sharded(threads, &domains, |_, d| {
                    mx_ladder(&rng, d, &records)
                        .iter()
                        .map(|c| c.host.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[0], &runs[2]);
    }
}
