//! Enforcement suite for the delivery queue: MTA-STS applied *inside*
//! the retry/fail-over machinery (DESIGN.md "Policy enforcement in the
//! queue").
//!
//! Contracts under test:
//!
//! - **containment**: enforce-mode domains with a warm covered cache
//!   lose nothing to STARTTLS stripping or forged-MX redirection — the
//!   attacked attempts are refused and recover via post-window retries;
//! - **typed policy bounces**: a ladder fully filtered by the policy's
//!   `mx` patterns exhausts into [`BounceReason::PolicyRefused`], never
//!   the generic `Unroutable`/`RetriesExhausted` classes;
//! - **testing-mode accounting**: mail keeps flowing through the attack
//!   while every downgraded session lands in the RFC 8460 report;
//! - **DANE precedence**: TLSA-covered rungs survive the `mx`-pattern
//!   filter and validate under DANE instead of PKIX (RFC 7672);
//! - **no cache, no downgrade**: a stripped `_mta-sts` TXT record does
//!   not disable a warm cached policy (RFC 8461 §2.6 hazard);
//! - **determinism**: ledger digests byte-identical at 1/8 worker
//!   threads and across kill/resume — including a resume landing inside
//!   an attack window — with the policy cache riding the checkpoint;
//! - **checkpoint robustness**: a corrupted policy-cache section
//!   degrades to a clean refetch, never a panic.

use dns::RecordData;
use mtasts::Mode;
use mtasts_sender::scenario::{build, Degradation, Scenario, ScenarioSpec};
use mtasts_sender::{
    ledger_digest, BounceReason, DeliveryQueue, EnforcementConfig, FastTransport, MessageStatus,
    QueueConfig, QueueOutcome, StsApplication,
};
use netbase::DomainName;

/// The strip/redirect attack window every scenario here uses: opens at
/// +60 s — after every domain's first-wave resolution (admissions land
/// 7 s apart, so the first message of each of the four domains is
/// processed well before +60 s) has warmed the cache — and closes at
/// +660 s, inside the retry ladder's +60/+300/+1260 s span so refused
/// messages recover on their final attempt.
const WINDOW: (i64, i64) = (60, 600);

fn enforced_cfg(threads: usize) -> QueueConfig {
    QueueConfig {
        threads,
        wave_size: 8,
        enforcement: Some(EnforcementConfig::default()),
        ..QueueConfig::default()
    }
}

fn drain(s: &Scenario, cfg: QueueConfig) -> QueueOutcome {
    DeliveryQueue::new(cfg).run(&FastTransport::new(&s.world), &s.messages)
}

#[test]
fn enforce_contains_starttls_strip() {
    let s = build(
        ScenarioSpec::small(
            7,
            Degradation::StartTlsStrip {
                delay_secs: WINDOW.0,
                duration_secs: WINDOW.1,
            },
        )
        .with_sts(Mode::Enforce),
    );
    let out = drain(&s, enforced_cfg(1));
    let n = s.messages.len() as u64;
    assert_eq!(out.stats.delivered, n, "refusals must recover post-window");
    assert_eq!(
        out.stats.intercepted, 0,
        "enforce leaked plaintext to the attacker"
    );
    assert_eq!(
        out.stats.bounced_policy, 0,
        "window is shorter than the retry span"
    );
    assert_eq!(
        out.stats.soft_fails, 0,
        "enforce refuses, it does not soft-fail"
    );
    // Everything that landed was PKIX-validated under the policy.
    assert_eq!(out.stats.delivered_validated, n, "{:?}", out.stats);
    // The stripped attempts are visible as refusals that requeued.
    assert!(
        out.stats.requeues > 0,
        "no attempt ever hit the strip window"
    );
    assert!(out.records.iter().any(|r| r.attempts > 1));
    for rec in &out.records {
        assert!(rec.sts.covered(), "{}: enforcement did not apply", rec.id);
    }
}

#[test]
fn unprotected_modes_leak_during_strip_window() {
    // Mode `none` published: policy resolves but requires nothing.
    let strip = Degradation::StartTlsStrip {
        delay_secs: WINDOW.0,
        duration_secs: WINDOW.1,
    };
    let s = build(ScenarioSpec::small(7, strip).with_sts(Mode::None));
    let out = drain(&s, enforced_cfg(1));
    assert_eq!(out.stats.delivered, s.messages.len() as u64);
    assert!(
        out.stats.intercepted > 0,
        "mode=none must leave the strip window effective: {:?}",
        out.stats
    );

    // No STS deployment at all: same leak, resolution NotApplicable.
    let s = build(ScenarioSpec::small(7, strip));
    let out = drain(&s, enforced_cfg(1));
    assert_eq!(out.stats.delivered, s.messages.len() as u64);
    assert!(out.stats.intercepted > 0);
    assert!(out.records.iter().all(|r| r.sts == StsApplication::None));
}

#[test]
fn testing_mode_delivers_and_accounts_soft_failures() {
    let s = build(
        ScenarioSpec::small(
            7,
            Degradation::StartTlsStrip {
                delay_secs: WINDOW.0,
                duration_secs: WINDOW.1,
            },
        )
        .with_sts(Mode::Testing),
    );
    let out = drain(&s, enforced_cfg(1));
    let n = s.messages.len() as u64;
    assert_eq!(out.stats.delivered, n, "testing must never block mail");
    assert_eq!(out.stats.bounced_policy, 0);
    assert!(out.stats.soft_fails > 0, "{:?}", out.stats);
    assert!(
        out.stats.intercepted > 0,
        "the downgrade happened and is graded"
    );

    // The downgrades surface in the built RFC 8460 report.
    let report = out.tlsrpt.build(
        "enforce-suite",
        "tlsrpt@sender.test",
        netbase::SimDate::ymd(2024, 6, 1),
    );
    let failures: u64 = report.policies.iter().map(|p| p.total_failure).sum();
    let successes: u64 = report.policies.iter().map(|p| p.total_successful).sum();
    assert_eq!(
        out.stats.soft_fails, failures,
        "every soft-fail is reported"
    );
    assert_eq!(successes + failures, n, "every delivery is reported");
    assert!(report
        .policies
        .iter()
        .any(|p| p.failure_details.iter().any(|d| d.failed_session_count > 0)));
}

#[test]
fn fully_filtered_ladder_bounces_as_typed_policy_refusal() {
    // The redirect window covers the whole retry span, so the forged
    // pref-0 attacker relay is the *only* rung every attempt sees and
    // the `mx`-pattern filter empties the ladder each time.
    let s = build(
        ScenarioSpec::small(
            7,
            Degradation::MxRedirect {
                delay_secs: 0,
                duration_secs: 1_000_000,
            },
        )
        .with_sts(Mode::Enforce),
    );
    let out = drain(&s, enforced_cfg(1));
    let n = s.messages.len() as u64;
    assert_eq!(
        out.stats.delivered, 0,
        "nothing may reach the attacker relay"
    );
    assert_eq!(out.stats.intercepted, 0);
    assert_eq!(out.stats.bounced_policy, n, "{:?}", out.stats);
    assert_eq!(
        out.stats.bounced_unroutable, 0,
        "typed bounce, not Unroutable"
    );
    assert!(out.stats.policy_ladder_skips > 0);
    for rec in &out.records {
        match &rec.status {
            MessageStatus::Bounced {
                reason: BounceReason::PolicyRefused { failure },
            } => {
                assert_eq!(failure.label(), "mx-not-listed", "{failure:?}");
            }
            other => panic!("{}: expected PolicyRefused, got {other:?}", rec.id),
        }
        assert!(rec.policy_skips > 0, "{}: filtered rungs uncounted", rec.id);
    }
}

#[test]
fn enforce_recovers_from_bounded_mx_redirect() {
    let s = build(
        ScenarioSpec::small(
            7,
            Degradation::MxRedirect {
                delay_secs: WINDOW.0,
                duration_secs: WINDOW.1,
            },
        )
        .with_sts(Mode::Enforce),
    );
    let out = drain(&s, enforced_cfg(1));
    assert_eq!(out.stats.delivered, s.messages.len() as u64);
    assert_eq!(out.stats.intercepted, 0);
    assert_eq!(out.stats.bounced_policy, 0);
}

#[test]
fn stripped_txt_record_does_not_disable_a_warm_cache() {
    // DnsTxtStrip empties the `_mta-sts` answer. With the policy cached
    // from the pre-window waves, `UseCachedDespiteDns` keeps enforcing —
    // pair it with a STARTTLS strip and nothing may leak.
    let s = build(
        ScenarioSpec::small(
            7,
            Degradation::StartTlsStrip {
                delay_secs: WINDOW.0,
                duration_secs: WINDOW.1,
            },
        )
        .with_sts(Mode::Enforce),
    );
    use simnet::{AttackKind, AttackSchedule};
    let start = s.spec.epoch + netbase::Duration::seconds(WINDOW.0);
    let end = start + netbase::Duration::seconds(WINDOW.1);
    s.world.set_attacker(
        AttackSchedule::new()
            .with_window(AttackKind::StartTlsStrip, None, start, end)
            .with_window(AttackKind::DnsTxtStrip, None, start, end),
    );
    let out = drain(&s, enforced_cfg(1));
    assert_eq!(out.stats.delivered, s.messages.len() as u64);
    assert_eq!(
        out.stats.intercepted, 0,
        "TXT strip downgraded a cached policy"
    );
    assert_eq!(out.stats.bounced_policy, 0);
}

/// Rewires the built enforce scenario so every domain's policy lists
/// only `mxb`/`mxc`, while `mxa` gets a DNSSEC-signed TLSA record
/// matching its chain: unlisted but DANE-covered.
fn dane_covered_scenario() -> Scenario {
    let s = build(ScenarioSpec::small(7, Degradation::None).with_sts(Mode::Enforce));
    for (i, topo) in s.topologies.iter().enumerate() {
        let policy_host: DomainName = format!("mta-sts.d{i}.test").parse().unwrap();
        let web_ip = s
            .world
            .resolve(&policy_host, dns::RecordType::A, s.spec.epoch)
            .unwrap()
            .a_addrs()[0];
        s.world.with_web(web_ip, |ep| {
            ep.install_policy(
                policy_host.clone(),
                &format!(
                    "version: STSv1\r\nmode: enforce\r\nmx: mxb.d{i}.test\r\nmx: mxc.d{i}.test\r\nmax_age: 604800\r\n"
                ),
            );
        });
        let mxa: DomainName = format!("mxa.d{i}.test").parse().unwrap();
        let mxa_ip = s
            .world
            .resolve(&mxa, dns::RecordType::A, s.spec.epoch)
            .unwrap()
            .a_addrs()[0];
        let chain = s.world.mx_endpoint(mxa_ip).unwrap().chain;
        s.world.set_dnssec(&topo.domain, true);
        let tlsa = danelite::tlsa_for_cert(&chain[0]);
        s.world.with_zone(&topo.domain, |z| {
            z.add_rr(&danelite::tlsa_name(&mxa), 300, RecordData::Tlsa(tlsa));
        });
    }
    s
}

#[test]
fn dane_covered_rung_survives_the_policy_filter() {
    let s = dane_covered_scenario();
    let out = drain(&s, enforced_cfg(1));
    let n = s.messages.len() as u64;
    assert_eq!(out.stats.delivered, n);
    assert_eq!(out.stats.bounced_policy, 0);
    // Some domain's seeded ladder leads with mxa: those deliveries are
    // DANE-validated despite mxa being absent from the policy.
    assert!(out.stats.delivered_dane > 0, "{:?}", out.stats);
    for rec in &out.records {
        if let MessageStatus::Delivered {
            mx_host, validated, ..
        } = &rec.status
        {
            if mx_host.starts_with("mxa.") {
                assert_eq!(rec.sts, StsApplication::Dane, "{}: {:?}", rec.id, rec.sts);
                assert!(*validated, "{}: DANE delivery must validate", rec.id);
            }
        }
    }
}

#[test]
fn disabling_dane_precedence_filters_the_unlisted_rung() {
    let s = dane_covered_scenario();
    let out = drain(
        &s,
        QueueConfig {
            enforcement: Some(EnforcementConfig {
                dane_precedence: false,
            }),
            ..enforced_cfg(1)
        },
    );
    assert_eq!(out.stats.delivered, s.messages.len() as u64);
    assert_eq!(out.stats.delivered_dane, 0, "{:?}", out.stats);
    assert!(out.stats.policy_ladder_skips > 0, "mxa was never filtered");
    for rec in &out.records {
        if let MessageStatus::Delivered { mx_host, .. } = &rec.status {
            assert!(
                !mx_host.starts_with("mxa."),
                "{}: unlisted rung used",
                rec.id
            );
        }
    }
}

/// A larger strip scenario whose admission timeline spans the attack
/// window, for the kill/resume cases.
fn resume_scenario() -> Scenario {
    build(
        ScenarioSpec {
            messages_per_domain: 40,
            ..ScenarioSpec::small(
                11,
                Degradation::StartTlsStrip {
                    delay_secs: WINDOW.0,
                    duration_secs: WINDOW.1,
                },
            )
        }
        .with_sts(Mode::Enforce),
    )
}

#[test]
fn enforcement_digest_is_thread_count_invariant() {
    let s = resume_scenario();
    let digests: Vec<String> = [1usize, 8]
        .iter()
        .map(|&t| ledger_digest(&drain(&s, enforced_cfg(t)).records))
        .collect();
    assert_eq!(digests[0], digests[1], "enforcement diverges at 8 threads");
}

#[test]
fn kill_resume_mid_attack_window_is_byte_identical() {
    let s = resume_scenario();
    let transport = FastTransport::new(&s.world);
    let reference = DeliveryQueue::new(enforced_cfg(2)).run(&transport, &s.messages);
    assert!(!reference.suspended);
    assert!(reference.stats.intercepted == 0);

    let dir = std::env::temp_dir().join(format!("mtasts-dlvq-{}-enforce", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("queue.ckpt");
    let _ = std::fs::remove_file(&path);

    // Suspend half-way: the boundary wave's admissions sit at ~560 s,
    // inside the [300, 900) attack window, so the resumed run restarts
    // with the adversary live and the cache snapshot governing.
    let killed = DeliveryQueue::new(QueueConfig {
        checkpoint_path: Some(path.clone()),
        message_budget: Some(s.messages.len() / 2),
        ..enforced_cfg(2)
    })
    .run(&transport, &s.messages);
    assert!(killed.suspended);

    let resumed = DeliveryQueue::new(QueueConfig {
        checkpoint_path: Some(path.clone()),
        ..enforced_cfg(2)
    })
    .run(&transport, &s.messages);
    assert!(!resumed.suspended);

    assert_eq!(
        ledger_digest(&reference.records),
        ledger_digest(&resumed.records),
        "kill/resume with enforcement must be byte-identical"
    );
    assert_eq!(reference.stats, resumed.stats);
    // The rebuilt TLSRPT ledger is identical too.
    let day = netbase::SimDate::ymd(2024, 6, 1);
    assert_eq!(
        serde_json::to_string(&reference.tlsrpt.build("e", "c", day)).unwrap(),
        serde_json::to_string(&resumed.tlsrpt.build("e", "c", day)).unwrap(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// FNV-1a 64 — mirrors the checkpoint header hash so the test can forge
/// a checkpoint whose *envelope* is valid but whose cache section is
/// garbage.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn corrupt_cache_section_degrades_to_clean_refetch() {
    let s = resume_scenario();
    let transport = FastTransport::new(&s.world);
    let reference = DeliveryQueue::new(enforced_cfg(2)).run(&transport, &s.messages);

    let dir = std::env::temp_dir().join(format!("mtasts-dlvq-{}-corrupt", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("queue.ckpt");
    let _ = std::fs::remove_file(&path);
    let killed = DeliveryQueue::new(QueueConfig {
        checkpoint_path: Some(path.clone()),
        message_budget: Some(s.messages.len() / 2),
        ..enforced_cfg(2)
    })
    .run(&transport, &s.messages);
    assert!(killed.suspended);

    // Corrupt ONLY the sts_cache section, then re-seal the envelope so
    // the header check passes and the damage reaches the JSON layer: the
    // key now maps to a number (type mismatch) and the real snapshot is
    // shunted under an ignored key, keeping the document valid JSON.
    let text = std::fs::read_to_string(&path).unwrap();
    let (_, payload) = text.split_once('\n').unwrap();
    assert!(
        payload.contains("\"sts_cache\""),
        "checkpoint lost its cache section"
    );
    let forged = payload.replacen("\"sts_cache\":", "\"sts_cache\":1234,\"zz_junk\":", 1);
    std::fs::write(
        &path,
        format!(
            "MTASTS-DLVQ1 {} {:016x}\n{forged}",
            forged.len(),
            fnv64(forged.as_bytes())
        ),
    )
    .unwrap();

    // The resume must not panic: the unparseable checkpoint is dropped,
    // the queue restarts from scratch, refetches every policy, and the
    // full ledger matches an uninterrupted run exactly.
    let resumed = DeliveryQueue::new(QueueConfig {
        checkpoint_path: Some(path.clone()),
        ..enforced_cfg(2)
    })
    .run(&transport, &s.messages);
    assert!(!resumed.suspended);
    assert_eq!(resumed.records.len(), s.messages.len());
    assert_eq!(
        ledger_digest(&reference.records),
        ledger_digest(&resumed.records),
        "fresh restart must equal the uninterrupted run"
    );

    // A checkpoint *missing* the section (pre-enforcement format) still
    // parses — serde default — and resumes from the ledger prefix with
    // an empty cache: availability preserved, policies refetched. `path`
    // now holds the fresh *final* checkpoint, so rebuild a suspended
    // prefix first by re-running the killed leg.
    let _ = std::fs::remove_file(&path);
    let killed = DeliveryQueue::new(QueueConfig {
        checkpoint_path: Some(path.clone()),
        message_budget: Some(s.messages.len() / 2),
        ..enforced_cfg(2)
    })
    .run(&transport, &s.messages);
    assert!(killed.suspended);
    let text = std::fs::read_to_string(&path).unwrap();
    let (_, payload) = text.split_once('\n').unwrap();
    // Renaming the key drops the section: the real snapshot hides under
    // an unknown key (ignored by the deserializer) and `sts_cache` falls
    // back to its serde default, the empty cache.
    let forged = payload.replacen("\"sts_cache\":", "\"zz_dropped\":", 1);
    assert_ne!(forged, payload, "checkpoint lost its cache section");
    std::fs::write(
        &path,
        format!(
            "MTASTS-DLVQ1 {} {:016x}\n{forged}",
            forged.len(),
            fnv64(forged.as_bytes())
        ),
    )
    .unwrap();
    let resumed = DeliveryQueue::new(QueueConfig {
        checkpoint_path: Some(path.clone()),
        ..enforced_cfg(2)
    })
    .run(&transport, &s.messages);
    assert!(!resumed.suspended, "missing section must not block resume");
    assert_eq!(resumed.records.len(), s.messages.len());
    assert_eq!(resumed.stats.delivered, s.messages.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
