//! The per-message delivery engine: RFC 8461 degraded-mode semantics end
//! to end, driven against a (possibly hostile) [`simnet::World`].
//!
//! [`crate::platform`] asks "what does this sender's validation behaviour
//! look like from the outside?"; this module asks the complementary
//! question the paper's security argument (§2.4, §6) rests on: *what does
//! MTA-STS actually buy a sender under active attack?* Each message walks
//! an explicit state machine — MX lookup, `_mta-sts` record lookup, cache
//! consultation, policy fetch (with stale-cache fallback within
//! `max_age`), MX probe, TLS validation, decision — and every degraded
//! mode is accounted: `testing` vs `enforce` divergence, soft-fails, and
//! RFC 8460 TLSRPT failure-type emission through
//! [`mtasts::ReportBuilder`].

use mtasts::{
    DeliveryObservation, Mode, ReportBuilder, ResultType, SenderAction, SenderEngine, StsFailure,
    StsOutcome, TlsReport,
};
use netbase::{DomainName, SimDate, SimInstant};
use pkix::validate_chain;
use serde::Serialize;
use simnet::World;
use std::cell::Cell;
use std::rc::Rc;

/// The states a message traverses (recorded in order for observability;
/// conditional states appear only when entered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DeliveryPhase {
    /// Resolve the recipient domain's MX set.
    MxLookup,
    /// Look up the `_mta-sts` TXT record.
    StsRecordLookup,
    /// The ablation dropped the cached policy before deciding.
    CacheEvicted,
    /// The engine went to the network for the policy document.
    PolicyFetch,
    /// The fetch failed but a still-fresh cached policy took over
    /// (RFC 8461 §3.3 degraded mode).
    StaleCacheFallback,
    /// Probe the selected MX (EHLO, STARTTLS, certificate).
    MxProbe,
    /// Terminal: delivered with validated TLS.
    Delivered,
    /// Terminal: delivered without MTA-STS protection.
    DeliveredUnvalidated,
    /// Terminal: refused (failure under `enforce`).
    Refused,
}

/// Delivery-engine configuration.
#[derive(Debug, Clone)]
pub struct DeliveryConfig {
    /// TOFU caching on (`false` = the always-refetch ablation: every
    /// message re-reads record and policy from the network).
    pub use_cache: bool,
    /// TLSRPT reporting organization.
    pub organization: String,
    /// TLSRPT contact address.
    pub contact: String,
}

impl Default for DeliveryConfig {
    fn default() -> DeliveryConfig {
        DeliveryConfig {
            use_cache: true,
            organization: "MTA-STS Lab Sender".to_string(),
            contact: "mailto:tlsrpt@sender.example".to_string(),
        }
    }
}

impl DeliveryConfig {
    /// The always-refetch ablation (a sender without a TOFU cache).
    pub fn without_cache() -> DeliveryConfig {
        DeliveryConfig {
            use_cache: false,
            ..DeliveryConfig::default()
        }
    }
}

/// Running totals over every delivery attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DeliveryStats {
    /// Messages attempted.
    pub attempted: u64,
    /// Delivered with validated TLS.
    pub delivered_validated: u64,
    /// Delivered without MTA-STS protection.
    pub delivered_unvalidated: u64,
    /// Refused under `enforce`.
    pub refused: u64,
    /// Validation failures delivered anyway under `testing` (the
    /// soft-fail account RFC 8461 §5.2 trades for TLSRPT visibility).
    pub soft_fails: u64,
    /// Failed refreshes that fell back to a still-fresh cached policy.
    pub stale_fallbacks: u64,
    /// Deliveries the active attacker could read or redirect: delivered
    /// without validated TLS while an attack window covered the domain or
    /// its MX. This is the attacker's win count.
    pub intercepted: u64,
}

impl DeliveryStats {
    /// Every message delivered, protected or not.
    pub fn delivered(&self) -> u64 {
        self.delivered_validated + self.delivered_unvalidated
    }
}

/// One message's full delivery record.
#[derive(Debug, Clone)]
pub struct DeliveryRecord {
    /// Recipient domain.
    pub domain: DomainName,
    /// The MX the delivery targeted.
    pub mx: DomainName,
    /// Protocol outcome.
    pub outcome: StsOutcome,
    /// Final action.
    pub action: SenderAction,
    /// The TLSRPT result type this attempt contributes (`None` = success
    /// or MTA-STS not applicable).
    pub result_type: Option<ResultType>,
    /// Whether the attacker won this message (see
    /// [`DeliveryStats::intercepted`]).
    pub intercepted: bool,
    /// The states traversed, in order.
    pub trace: Vec<DeliveryPhase>,
}

/// A stateful sending MTA: one TOFU cache, one TLSRPT ledger, many
/// messages.
#[derive(Debug, Default)]
pub struct DeliveryEngine {
    cfg: DeliveryConfig,
    engine: SenderEngine,
    report: ReportBuilder,
    stats: DeliveryStats,
}

impl DeliveryEngine {
    /// A fresh engine.
    pub fn new(cfg: DeliveryConfig) -> DeliveryEngine {
        DeliveryEngine {
            cfg,
            engine: SenderEngine::new(),
            report: ReportBuilder::new(),
            stats: DeliveryStats::default(),
        }
    }

    /// Running totals.
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }

    /// The underlying decision engine (cache instrumentation).
    pub fn engine(&self) -> &SenderEngine {
        &self.engine
    }

    /// Builds the TLSRPT report over everything recorded so far.
    pub fn tls_report(&self, day: SimDate) -> TlsReport {
        self.report
            .build(&self.cfg.organization, &self.cfg.contact, day)
    }

    /// Delivers one message to `domain` at `now`, walking the full state
    /// machine against `world`.
    pub fn deliver(
        &mut self,
        world: &World,
        domain: &DomainName,
        now: SimInstant,
    ) -> DeliveryRecord {
        let mut trace = vec![DeliveryPhase::MxLookup];

        // MX selection: best-preference published MX, or the apex when the
        // domain publishes none (RFC 5321 implicit MX).
        let mx = world
            .mx_records(domain, now)
            .ok()
            .and_then(|hosts| hosts.first().cloned())
            .unwrap_or_else(|| domain.clone());

        trace.push(DeliveryPhase::StsRecordLookup);
        let record_txts = world.mta_sts_txts(domain, now).ok();

        if !self.cfg.use_cache && self.engine.evict(domain) {
            trace.push(DeliveryPhase::CacheEvicted);
        }

        trace.push(DeliveryPhase::MxProbe);
        let probe = world.probe_mx(&mx, now);
        let starttls = probe.starttls_offered;
        let chain = probe.chain.clone().unwrap_or_default();

        let fetch_attempted = Rc::new(Cell::new(false));
        let fallbacks_before = self.engine.fetch_fallbacks();
        let fetch_world = world.clone();
        let fetch_domain = domain.clone();
        let fetch_flag = Rc::clone(&fetch_attempted);
        let mx_for_tls = mx.clone();
        let trust = world.pki.trust_store().clone();
        let (outcome, action) = self.engine.evaluate(DeliveryObservation {
            domain,
            record_txts: record_txts.as_deref(),
            fetch_policy: move || {
                fetch_flag.set(true);
                fetch_world
                    .fetch_policy(&fetch_domain, now)
                    .result
                    .map(|(_, raw)| raw)
                    .map_err(|e| e.to_string())
            },
            mx_host: &mx,
            check_mx_tls: move || {
                if !starttls {
                    return Err(StsFailure::StartTlsUnavailable);
                }
                validate_chain(&chain, &mx_for_tls, now, &trust).map_err(StsFailure::CertInvalid)
            },
            now,
        });

        if fetch_attempted.get() {
            trace.push(DeliveryPhase::PolicyFetch);
        }
        let fell_back = self.engine.fetch_fallbacks() > fallbacks_before;
        if fell_back {
            trace.push(DeliveryPhase::StaleCacheFallback);
        }

        // Accounting.
        self.stats.attempted += 1;
        if fell_back {
            self.stats.stale_fallbacks += 1;
        }
        let validated = action == SenderAction::Deliver;
        match action {
            SenderAction::Deliver => {
                self.stats.delivered_validated += 1;
                trace.push(DeliveryPhase::Delivered);
            }
            SenderAction::DeliverUnvalidated => {
                self.stats.delivered_unvalidated += 1;
                trace.push(DeliveryPhase::DeliveredUnvalidated);
            }
            SenderAction::Refuse => {
                self.stats.refused += 1;
                trace.push(DeliveryPhase::Refused);
            }
        }
        if matches!(
            outcome,
            StsOutcome::Failed {
                mode: Mode::Testing,
                ..
            }
        ) && action == SenderAction::DeliverUnvalidated
        {
            self.stats.soft_fails += 1;
        }

        // The attacker wins a message delivered without validated TLS
        // while any attack window covers the domain or its MX (omniscient
        // labelling — the sim knows what a real sender cannot).
        let attack_touched = !world.attacks_active(domain, now).is_empty()
            || !world.attacks_active(&mx, now).is_empty();
        let delivered = action != SenderAction::Refuse;
        let intercepted = delivered && attack_touched && !validated;
        if intercepted {
            self.stats.intercepted += 1;
        }

        self.report.record(domain, &mx, &outcome);
        let result_type = ResultType::from_outcome(&outcome);

        DeliveryRecord {
            domain: domain.clone(),
            mx,
            outcome,
            action,
            result_type,
            intercepted,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dns::{RecordData, RecordType};
    use netbase::{Duration, SimDate};
    use simnet::{AttackKind, AttackSchedule, MxEndpoint, WebEndpoint};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn t0() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    /// A healthy enforce/testing-mode receiver, `good_world` style.
    fn victim_world(mode: &str) -> World {
        let w = World::new();
        let domain = n("example.com");
        w.ensure_zone(&domain);
        let policy_host = n("mta-sts.example.com");
        let mut web = WebEndpoint::up();
        web.install_chain(
            policy_host.clone(),
            w.pki.issue_valid(std::slice::from_ref(&policy_host), t0()),
        );
        web.install_policy(
            policy_host.clone(),
            &format!("version: STSv1\r\nmode: {mode}\r\nmx: mx.example.com\r\nmax_age: 604800\r\n"),
        );
        let web_ip = w.add_web_endpoint(web);
        let mx_chain = w.pki.issue_valid(&[n("mx.example.com")], t0());
        let mx_ip = w.add_mx_endpoint(MxEndpoint::healthy(n("mx.example.com"), mx_chain));
        w.with_zone(&domain, |z| {
            z.add_rr(&policy_host, 300, RecordData::A(web_ip));
            z.add_rr(&n("mx.example.com"), 300, RecordData::A(mx_ip));
            z.add_rr(
                &domain,
                300,
                RecordData::Mx {
                    preference: 10,
                    exchange: n("mx.example.com"),
                },
            );
            z.add_rr(
                &n("_mta-sts.example.com"),
                300,
                RecordData::Txt(vec!["v=STSv1; id=20240601;".into()]),
            );
        });
        w
    }

    fn downgrade_attack(start: SimInstant, end: SimInstant) -> AttackSchedule {
        AttackSchedule::new()
            .with_window(AttackKind::DnsTxtStrip, Some(n("example.com")), start, end)
            .with_window(AttackKind::MxRedirect, Some(n("example.com")), start, end)
    }

    #[test]
    fn healthy_delivery_validates_and_traces() {
        let w = victim_world("enforce");
        let mut eng = DeliveryEngine::new(DeliveryConfig::default());
        let rec = eng.deliver(&w, &n("example.com"), t0());
        assert_eq!(rec.action, SenderAction::Deliver);
        assert_eq!(rec.mx, n("mx.example.com"));
        assert!(!rec.intercepted);
        assert_eq!(
            rec.trace,
            vec![
                DeliveryPhase::MxLookup,
                DeliveryPhase::StsRecordLookup,
                DeliveryPhase::MxProbe,
                DeliveryPhase::PolicyFetch,
                DeliveryPhase::Delivered,
            ]
        );
        // Second delivery rides the cache: no fetch phase.
        let rec2 = eng.deliver(&w, &n("example.com"), t0() + Duration::hours(1));
        assert!(!rec2.trace.contains(&DeliveryPhase::PolicyFetch));
        assert_eq!(eng.stats().delivered_validated, 2);
        assert_eq!(eng.stats().intercepted, 0);
    }

    #[test]
    fn warm_cache_enforce_sender_refuses_during_downgrade() {
        let w = victim_world("enforce");
        let mut eng = DeliveryEngine::new(DeliveryConfig::default());
        // Prime the TOFU cache before the attack begins.
        assert_eq!(
            eng.deliver(&w, &n("example.com"), t0()).action,
            SenderAction::Deliver
        );

        let start = t0() + Duration::hours(1);
        let end = start + Duration::hours(6);
        w.set_attacker(downgrade_attack(start, end));
        w.flush_dns_cache();

        let rec = eng.deliver(&w, &n("example.com"), start + Duration::hours(1));
        // The cached policy survives the stripped record; the redirected
        // MX fails pattern matching; enforce refuses.
        assert_eq!(rec.action, SenderAction::Refuse);
        assert_eq!(rec.mx, n("mx.attacker.example"));
        assert!(matches!(
            rec.outcome,
            StsOutcome::Failed {
                mode: Mode::Enforce,
                failure: StsFailure::MxNotListed,
                from_cache: true,
            }
        ));
        assert!(!rec.intercepted, "a refusal is never an interception");
        assert_eq!(eng.stats().refused, 1);
        assert_eq!(eng.stats().intercepted, 0);
    }

    #[test]
    fn cacheless_sender_loses_messages_during_downgrade() {
        let w = victim_world("enforce");
        let mut eng = DeliveryEngine::new(DeliveryConfig::without_cache());
        assert_eq!(
            eng.deliver(&w, &n("example.com"), t0()).action,
            SenderAction::Deliver
        );

        let start = t0() + Duration::hours(1);
        let end = start + Duration::hours(6);
        w.set_attacker(downgrade_attack(start, end));
        w.flush_dns_cache();

        let rec = eng.deliver(&w, &n("example.com"), start + Duration::hours(1));
        // No cache, no record: MTA-STS silently does not apply and the
        // message goes to the attacker's relay in the clear.
        assert_eq!(rec.outcome, StsOutcome::NotApplicable);
        assert_eq!(rec.action, SenderAction::DeliverUnvalidated);
        assert_eq!(rec.mx, n("mx.attacker.example"));
        assert!(rec.intercepted);
        assert_eq!(eng.stats().intercepted, 1);
    }

    #[test]
    fn testing_mode_soft_fails_and_reports() {
        let w = victim_world("testing");
        let mut eng = DeliveryEngine::new(DeliveryConfig::default());
        let start = t0();
        let end = start + Duration::hours(6);
        w.set_attacker(AttackSchedule::new().with_window(
            AttackKind::MxRedirect,
            Some(n("example.com")),
            start,
            end,
        ));

        let rec = eng.deliver(&w, &n("example.com"), start + Duration::hours(1));
        // testing mode: the failure is observed but the message still goes
        // out — the attacker wins exactly the message enforce would hold.
        assert!(matches!(
            rec.outcome,
            StsOutcome::Failed {
                mode: Mode::Testing,
                failure: StsFailure::MxNotListed,
                ..
            }
        ));
        assert_eq!(rec.action, SenderAction::DeliverUnvalidated);
        assert_eq!(rec.result_type, Some(ResultType::ValidationFailure));
        assert!(rec.intercepted);
        assert_eq!(eng.stats().soft_fails, 1);
        assert_eq!(eng.stats().intercepted, 1);

        // And the TLSRPT report carries the failure against the attacker MX.
        let report = eng.tls_report(SimDate::ymd(2024, 6, 1));
        let policy = &report.policies[0];
        assert_eq!(policy.total_failure, 1);
        assert_eq!(
            policy.failure_details[0].result_type,
            ResultType::ValidationFailure
        );
        assert_eq!(
            policy.failure_details[0].receiving_mx_hostname,
            "mx.attacker.example"
        );
    }

    #[test]
    fn https_mitm_during_refresh_falls_back_to_stale_policy() {
        let w = victim_world("enforce");
        let mut eng = DeliveryEngine::new(DeliveryConfig::default());
        assert_eq!(
            eng.deliver(&w, &n("example.com"), t0()).action,
            SenderAction::Deliver
        );

        // The operator rotates the record id (forcing a refresh)…
        w.with_zone(&n("example.com"), |z| {
            z.remove(&n("_mta-sts.example.com"), RecordType::Txt);
            z.add_rr(
                &n("_mta-sts.example.com"),
                300,
                RecordData::Txt(vec!["v=STSv1; id=20240701;".into()]),
            );
        });
        w.flush_dns_cache();
        // …while an attacker MITMs the policy host with a bogus cert.
        let start = t0() + Duration::hours(1);
        let end = start + Duration::hours(6);
        w.set_attacker(AttackSchedule::new().with_window(
            AttackKind::HttpsMitm,
            Some(n("example.com")),
            start,
            end,
        ));

        let rec = eng.deliver(&w, &n("example.com"), start + Duration::hours(1));
        // RFC 8461 §3.3: the failed refresh falls back to the still-fresh
        // cached policy, and the legitimate MX validates under it.
        assert!(rec.trace.contains(&DeliveryPhase::PolicyFetch));
        assert!(rec.trace.contains(&DeliveryPhase::StaleCacheFallback));
        assert_eq!(rec.action, SenderAction::Deliver);
        assert!(matches!(
            rec.outcome,
            StsOutcome::Validated {
                from_cache: true,
                ..
            }
        ));
        assert_eq!(eng.stats().stale_fallbacks, 1);
        assert_eq!(eng.stats().intercepted, 0);
    }

    #[test]
    fn cacheless_https_mitm_emits_sts_webpki_invalid() {
        let w = victim_world("enforce");
        let mut eng = DeliveryEngine::new(DeliveryConfig::without_cache());
        let start = t0();
        let end = start + Duration::hours(6);
        w.set_attacker(AttackSchedule::new().with_window(
            AttackKind::HttpsMitm,
            Some(n("example.com")),
            start,
            end,
        ));

        let rec = eng.deliver(&w, &n("example.com"), start + Duration::hours(1));
        // Record present, fetch MITMed, no cache: the policy is simply
        // unavailable and delivery proceeds unprotected.
        assert!(matches!(rec.outcome, StsOutcome::PolicyUnavailable { .. }));
        assert_eq!(rec.action, SenderAction::DeliverUnvalidated);
        assert_eq!(rec.result_type, Some(ResultType::StsWebpkiInvalid));
        assert!(rec.intercepted);

        let report = eng.tls_report(SimDate::ymd(2024, 6, 1));
        assert_eq!(
            report.policies[0].failure_details[0].result_type,
            ResultType::StsWebpkiInvalid
        );
    }
}
