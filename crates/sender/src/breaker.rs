//! Per-MX-host circuit breaker.
//!
//! A dead MX must degrade throughput, not stall the queue: after `N`
//! consecutive *hard* failures (connection-level — refused, timeout,
//! reset; never 4xx/5xx protocol replies, which prove the host is up),
//! the host opens for a cooldown window and the dispatch ladder skips
//! it. Once the window elapses the breaker goes half-open: exactly one
//! message is admitted as a probe; success closes the breaker, another
//! hard failure re-opens it for a fresh window.
//!
//! Determinism contract: breaker state is only mutated *between* waves,
//! by folding the per-message [`HostEvent`]s in canonical message order
//! (see `pipeline`). During a wave every message consults the same
//! immutable snapshot, so outcomes are independent of thread count.

use netbase::SimInstant;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive hard failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker skips the host, in sim seconds.
    pub cooldown_secs: i64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_secs: 300,
        }
    }
}

/// Breaker state for one MX host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation; counts consecutive hard failures.
    Closed {
        /// Hard failures since the last success.
        consecutive_failures: u32,
    },
    /// Tripped: skip the host until the cooldown elapses, then admit a
    /// single half-open probe.
    Open {
        /// Unix seconds at which the host may be probed again.
        until_unix_secs: i64,
    },
}

/// What the dispatch ladder should do with a host right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: attempt normally.
    Allowed,
    /// Breaker open and cooling down: skip this rung.
    Skip,
    /// Cooldown elapsed: attempt as a half-open probe.
    Probe,
}

/// A connection-level observation about one host, emitted by message
/// processing and folded into the board between waves.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostEvent {
    /// The host answered at the SMTP layer (any reply counts — even a
    /// 5xx proves the machine is alive).
    Reachable {
        /// MX host name.
        host: String,
    },
    /// Connection-level failure: refused, timeout, reset mid-dialogue.
    HardFailure {
        /// MX host name.
        host: String,
        /// When the failure was observed (sets the cooldown start).
        at_unix_secs: i64,
    },
}

/// Breaker state across all MX hosts, keyed by host name.
///
/// `BTreeMap` keeps iteration (and serde output) in canonical order, so
/// checkpoint bytes and digests are stable.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerBoard {
    hosts: BTreeMap<String, BreakerState>,
}

impl BreakerBoard {
    /// An all-closed board.
    pub fn new() -> BreakerBoard {
        BreakerBoard::default()
    }

    /// What the ladder should do with `host` at `now`, per the *snapshot*
    /// this board represents.
    pub fn admission(&self, host: &str, now: SimInstant) -> Admission {
        match self.hosts.get(host) {
            None | Some(BreakerState::Closed { .. }) => Admission::Allowed,
            Some(BreakerState::Open { until_unix_secs }) => {
                if now.unix_secs() >= *until_unix_secs {
                    Admission::Probe
                } else {
                    Admission::Skip
                }
            }
        }
    }

    /// Folds one observation into the board. Called between waves only,
    /// in canonical message order.
    pub fn apply(&mut self, cfg: &BreakerConfig, event: &HostEvent) {
        match event {
            HostEvent::Reachable { host } => {
                // Success (at the connection level) fully resets: a
                // half-open probe that lands closes the breaker.
                self.hosts.insert(
                    host.clone(),
                    BreakerState::Closed {
                        consecutive_failures: 0,
                    },
                );
            }
            HostEvent::HardFailure { host, at_unix_secs } => {
                let state = self
                    .hosts
                    .entry(host.clone())
                    .or_insert(BreakerState::Closed {
                        consecutive_failures: 0,
                    });
                match state {
                    BreakerState::Closed {
                        consecutive_failures,
                    } => {
                        *consecutive_failures += 1;
                        if *consecutive_failures >= cfg.failure_threshold {
                            *state = BreakerState::Open {
                                until_unix_secs: at_unix_secs.saturating_add(cfg.cooldown_secs),
                            };
                            obsv::counter!("delivery.breaker_open_total");
                        }
                    }
                    BreakerState::Open { until_unix_secs } => {
                        // A failed half-open probe (or a failure recorded
                        // while already open) restarts the cooldown.
                        if *at_unix_secs >= *until_unix_secs {
                            *until_unix_secs = at_unix_secs.saturating_add(cfg.cooldown_secs);
                            obsv::counter!("delivery.breaker_reopen_total");
                        }
                    }
                }
            }
        }
    }

    /// Number of hosts currently in the open state.
    pub fn open_count(&self) -> usize {
        self.hosts
            .values()
            .filter(|s| matches!(s, BreakerState::Open { .. }))
            .count()
    }

    /// Iterates `(host, state)` in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &BreakerState)> {
        self.hosts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> SimInstant {
        SimInstant::from_unix_secs(secs)
    }

    fn hard(host: &str, at: i64) -> HostEvent {
        HostEvent::HardFailure {
            host: host.to_string(),
            at_unix_secs: at,
        }
    }

    #[test]
    fn opens_after_threshold_and_skips_until_cooldown() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown_secs: 300,
        };
        let mut board = BreakerBoard::new();
        board.apply(&cfg, &hard("mx.a", 10));
        board.apply(&cfg, &hard("mx.a", 20));
        assert_eq!(board.admission("mx.a", t(25)), Admission::Allowed);
        board.apply(&cfg, &hard("mx.a", 30));
        assert_eq!(board.open_count(), 1);
        assert_eq!(board.admission("mx.a", t(100)), Admission::Skip);
        assert_eq!(board.admission("mx.a", t(330)), Admission::Probe);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let cfg = BreakerConfig {
            failure_threshold: 3,
            cooldown_secs: 300,
        };
        let mut board = BreakerBoard::new();
        board.apply(&cfg, &hard("mx.a", 10));
        board.apply(&cfg, &hard("mx.a", 20));
        board.apply(
            &cfg,
            &HostEvent::Reachable {
                host: "mx.a".to_string(),
            },
        );
        board.apply(&cfg, &hard("mx.a", 30));
        board.apply(&cfg, &hard("mx.a", 40));
        // Streak restarted after the success: still closed at 2 failures.
        assert_eq!(board.open_count(), 0);
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown_secs: 100,
        };
        let mut board = BreakerBoard::new();
        board.apply(&cfg, &hard("mx.a", 0));
        assert_eq!(board.admission("mx.a", t(100)), Admission::Probe);
        // Probe at t=100 hard-fails: cooldown restarts from 100.
        board.apply(&cfg, &hard("mx.a", 100));
        assert_eq!(board.admission("mx.a", t(150)), Admission::Skip);
        assert_eq!(board.admission("mx.a", t(200)), Admission::Probe);
        // Probe lands: breaker closes.
        board.apply(
            &cfg,
            &HostEvent::Reachable {
                host: "mx.a".to_string(),
            },
        );
        assert_eq!(board.admission("mx.a", t(201)), Admission::Allowed);
    }

    #[test]
    fn stale_failure_does_not_extend_open_window() {
        let cfg = BreakerConfig {
            failure_threshold: 1,
            cooldown_secs: 100,
        };
        let mut board = BreakerBoard::new();
        board.apply(&cfg, &hard("mx.a", 50));
        // A failure observed *inside* the open window (e.g. from a message
        // processed in the same wave that tripped it) must not push the
        // window out indefinitely.
        board.apply(&cfg, &hard("mx.a", 60));
        assert_eq!(board.admission("mx.a", t(150)), Admission::Probe);
    }
}
