//! `sender` — sender-side MTA-STS/DANE validation (§6).
//!
//! The paper complements its recipient-side scans with a deliverability
//! platform (email-security-scans.org): participants send mail to test
//! domains whose MTA-STS/DANE configurations are deliberately varied, and
//! the platform infers each sender's validation behaviour from what gets
//! delivered. This crate rebuilds that apparatus:
//!
//! - [`profile`]: sender behaviour profiles calibrated to §6.2 (TLS
//!   support, opportunistic vs PKIX-always, MTA-STS and/or DANE
//!   validation, and the Postfix-milter bug preferring MTA-STS over DANE
//!   against RFC 8461's advice);
//! - [`platform`]: the test receiver domains (valid MTA-STS, broken-cert
//!   MTA-STS, DANE-only, MTA-STS/DANE conflict, plaintext) and the test
//!   harness that runs each sender against them, recording EHLO
//!   interactions with operator attribution;
//! - [`analysis`]: the §6.2 statistics over the most recent test per
//!   sender domain.
//!
//! The operational counterpart is the outbound delivery pipeline:
//!
//! - [`mx_select`]: RFC 5321 MX selection — priority tiers plus a
//!   seeded, thread-independent weight shuffle within equal-preference
//!   sets;
//! - [`breaker`]: the per-MX-host circuit breaker (open after N
//!   consecutive connection-level failures, cooldown, half-open probe);
//! - [`pipeline`]: the deterministic wave-based message queue with
//!   per-recipient envelope status, multi-MX fail-over, typed
//!   4xx-requeue / 5xx-bounce classification, and checkpoint/resume;
//! - [`enforce`]: MTA-STS enforcement *inside* the queue — per-(domain,
//!   wave) policy resolution through the TOFU cache with RFC 8461 §3.3
//!   stale fallback, typed per-attempt TLS requirements, and DANE
//!   precedence (RFC 7672);
//! - [`resolver`]: the shared-concurrency policy-resolution service —
//!   sharded TOFU cache with lock-free reads, single-flight refresh,
//!   token-bucket fetch admission, and a Prometheus `/metrics` surface;
//! - [`scenario`]: the degraded-MX chaos worlds (hard-down, flapping,
//!   tier outage, greylisting) shared by tests, bench, and example.

pub mod analysis;
pub mod breaker;
pub mod delivery;
pub mod enforce;
pub mod mx_select;
pub mod pipeline;
pub mod platform;
pub mod profile;
pub mod resolver;
pub mod scenario;

pub use analysis::{analyze, SenderStats};
pub use breaker::{Admission, BreakerBoard, BreakerConfig, BreakerState, HostEvent};
pub use delivery::{DeliveryConfig, DeliveryEngine, DeliveryPhase, DeliveryRecord, DeliveryStats};
pub use enforce::{
    resolve_domain, EnforcementConfig, ResolvedPolicy, StsApplication, TlsEvidence, TlsRequirement,
    WavePolicies,
};
pub use mx_select::{filter_ladder_for_policy, implicit_mx, mx_ladder, MxCandidate};
pub use pipeline::{
    ledger_digest, AttemptDisposition, BounceReason, DeliveryQueue, FastTransport, MessageRecord,
    MessageStatus, MxTransport, QueueConfig, QueueOutcome, QueueStats, QueuedMessage,
};
pub use platform::{Platform, TestCase, TestRecord};
pub use profile::{SenderPopulation, SenderProfile, TlsSupport};
pub use resolver::{
    resolution_digest, resolve_shared, AdmissionConfig, DaemonConfig, Disposition, MetricsSnapshot,
    PolicyResolver, PolicySource, Resolution, ResolverConfig, ResolverDaemon, ShardedPolicyCache,
    TransportSource,
};
pub use scenario::{Degradation, Scenario, ScenarioSpec, StsDeployment};
