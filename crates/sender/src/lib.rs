//! `sender` — sender-side MTA-STS/DANE validation (§6).
//!
//! The paper complements its recipient-side scans with a deliverability
//! platform (email-security-scans.org): participants send mail to test
//! domains whose MTA-STS/DANE configurations are deliberately varied, and
//! the platform infers each sender's validation behaviour from what gets
//! delivered. This crate rebuilds that apparatus:
//!
//! - [`profile`]: sender behaviour profiles calibrated to §6.2 (TLS
//!   support, opportunistic vs PKIX-always, MTA-STS and/or DANE
//!   validation, and the Postfix-milter bug preferring MTA-STS over DANE
//!   against RFC 8461's advice);
//! - [`platform`]: the test receiver domains (valid MTA-STS, broken-cert
//!   MTA-STS, DANE-only, MTA-STS/DANE conflict, plaintext) and the test
//!   harness that runs each sender against them, recording EHLO
//!   interactions with operator attribution;
//! - [`analysis`]: the §6.2 statistics over the most recent test per
//!   sender domain.

pub mod analysis;
pub mod delivery;
pub mod platform;
pub mod profile;

pub use analysis::{analyze, SenderStats};
pub use delivery::{DeliveryConfig, DeliveryEngine, DeliveryPhase, DeliveryRecord, DeliveryStats};
pub use platform::{Platform, TestCase, TestRecord};
pub use profile::{SenderPopulation, SenderProfile, TlsSupport};
