//! The deliverability-test platform (email-security-scans.org analogue).
//!
//! The platform operates receiver domains with deliberately varied
//! MTA-STS/DANE configurations inside a [`simnet::World`]. Each sender
//! "sends an email" to every test domain; the platform infers the
//! sender's validation behaviour from which messages arrive and whether
//! TLS was used — exactly how the paper's dataset was produced (§6.1).

use crate::profile::{SenderProfile, TlsSupport};
use danelite::{tlsa_for_cert, validate_dane};
use dns::{RecordData, RecordType, TlsaRecord};
use mtasts::{DeliveryObservation, SenderAction, SenderEngine, StsFailure};
use netbase::{DomainName, SimDate, SimInstant};
use pkix::validate_chain;
use serde::Serialize;
use simnet::{CertKind, MxEndpoint, WebEndpoint, World};

/// The receiver configurations the platform operates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum TestCase {
    /// Correct MTA-STS (enforce) with valid PKIX everywhere.
    MtaStsValid,
    /// MTA-STS (enforce) whose MX presents a self-signed certificate:
    /// validators must refuse, opportunistic senders deliver.
    MtaStsBrokenCert,
    /// DANE only: signed zone, TLSA matching a self-signed certificate.
    /// DANE validators deliver; PKIX-always senders refuse.
    DaneOnly,
    /// Both protocols, arranged to disagree: PKIX-valid certificate (so
    /// MTA-STS passes) but TLSA records that do NOT match (so DANE
    /// fails). RFC-compliant both-validators refuse; the milter bug
    /// delivers (§6.2 footnote 10).
    Conflict,
    /// No TLS at all on the MX.
    Plaintext,
}

impl TestCase {
    /// All cases.
    pub const ALL: [TestCase; 5] = [
        TestCase::MtaStsValid,
        TestCase::MtaStsBrokenCert,
        TestCase::DaneOnly,
        TestCase::Conflict,
        TestCase::Plaintext,
    ];

    /// The receiver domain operated for this case.
    pub fn domain(self) -> DomainName {
        let label = match self {
            TestCase::MtaStsValid => "recv-sts-valid",
            TestCase::MtaStsBrokenCert => "recv-sts-badcert",
            TestCase::DaneOnly => "recv-dane",
            TestCase::Conflict => "recv-conflict",
            TestCase::Plaintext => "recv-plain",
        };
        format!("{label}.test").parse().expect("static names")
    }
}

/// One recorded delivery attempt.
#[derive(Debug, Clone, Serialize)]
pub struct TestRecord {
    /// The sending domain.
    pub sender: DomainName,
    /// The sender's operator (EHLO attribution).
    pub operator: &'static str,
    /// The receiver case.
    pub case: TestCase,
    /// Whether the message was delivered.
    pub delivered: bool,
    /// Whether the session used TLS.
    pub tls_used: bool,
    /// Whether a certificate was PKIX/DANE validated before delivery.
    pub validated: bool,
}

/// The platform: a world with the receiver domains installed.
pub struct Platform {
    /// The simulated Internet.
    pub world: World,
    /// Test date.
    pub date: SimDate,
}

impl Platform {
    /// Stands the platform up at `date`.
    pub fn new(date: SimDate) -> Platform {
        let world = World::new();
        let now = date.at_midnight();
        for case in TestCase::ALL {
            install_case(&world, case, now);
        }
        Platform { world, date }
    }

    /// Runs one sender against one case, recording the outcome.
    pub fn run_test(&self, profile: &SenderProfile, case: TestCase) -> TestRecord {
        let now = self.date.at_midnight();
        let domain = case.domain();
        let world = &self.world;

        // Resolve the receiver's MX and probe it like a real sender.
        let mx_hosts = world.mx_records(&domain, now).unwrap_or_default();
        let mx = mx_hosts.first().cloned().unwrap_or_else(|| domain.clone());
        let probe = world.probe_mx(&mx, now);
        let starttls = probe.starttls_offered;
        let chain = probe.chain.clone().unwrap_or_default();

        // DANE evidence.
        let tlsa_name = danelite::tlsa_name(&mx);
        let tlsa_records: Vec<TlsaRecord> = world
            .resolve(&tlsa_name, RecordType::Tlsa, now)
            .map(|l| {
                l.records
                    .iter()
                    .filter_map(|r| match &r.data {
                        RecordData::Tlsa(t) => Some(t.clone()),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let zone_signed = world.is_signed(&mx);
        let dane_applies = zone_signed && !tlsa_records.is_empty();
        let dane_verdict = dane_applies.then(|| {
            validate_dane(
                &tlsa_records,
                &chain,
                zone_signed,
                &mx,
                now,
                world.pki.trust_store(),
            )
        });

        // MTA-STS evidence through the real sender engine.
        let record_txts = world.mta_sts_txts(&domain, now).ok();
        let sts_applies = record_txts
            .as_ref()
            .is_some_and(|t| t.iter().any(|s| s.starts_with("v=STSv1")));
        let sts_action = if profile.validates_mtasts {
            let mut engine = SenderEngine::new();
            let fetch_world = world.clone();
            let fetch_domain = domain.clone();
            let mx_for_check = mx.clone();
            let chain_for_check = chain.clone();
            let trust = world.pki.trust_store().clone();
            let (_, action) = engine.evaluate(DeliveryObservation {
                domain: &domain,
                record_txts: record_txts.as_deref(),
                fetch_policy: move || {
                    let outcome = fetch_world.fetch_policy(&fetch_domain, now);
                    outcome
                        .result
                        .map(|(_, raw)| raw)
                        .map_err(|e| e.to_string())
                },
                mx_host: &mx,
                check_mx_tls: move || {
                    if !starttls {
                        return Err(StsFailure::StartTlsUnavailable);
                    }
                    validate_chain(&chain_for_check, &mx_for_check, now, &trust)
                        .map_err(StsFailure::CertInvalid)
                },
                now,
            });
            Some(action)
        } else {
            None
        };

        // Combine per the profile (RFC 8461: DANE should take precedence
        // when both apply; the milter bug inverts that).
        let mut delivered = true;
        let mut tls_used = starttls && profile.tls != TlsSupport::None;
        let mut validated = false;

        let dane_decision =
            |verdict: &Result<danelite::CertUsage, danelite::DaneError>| verdict.is_ok();

        match profile.tls {
            TlsSupport::None => {
                // Plaintext always; MTA-STS/DANE validation requires TLS,
                // so nothing validates.
                delivered = true;
                tls_used = false;
            }
            TlsSupport::PkixAlways => {
                let pkix_ok = starttls
                    && validate_chain(&chain, &mx, now, self.world.pki.trust_store()).is_ok();
                delivered = pkix_ok;
                validated = pkix_ok;
                tls_used = pkix_ok;
            }
            TlsSupport::Opportunistic => {
                let dane_active = profile.validates_dane && dane_verdict.is_some();
                let sts_active = profile.validates_mtasts && sts_applies;
                if dane_active && sts_active {
                    if profile.prefers_mtasts_over_dane {
                        // The bug: MTA-STS verdict wins.
                        delivered = sts_action != Some(SenderAction::Refuse);
                        validated = sts_action == Some(SenderAction::Deliver);
                    } else {
                        // RFC-compliant: DANE takes precedence.
                        let ok = dane_decision(dane_verdict.as_ref().expect("dane active"));
                        delivered = ok;
                        validated = ok;
                    }
                } else if dane_active {
                    let ok = dane_decision(dane_verdict.as_ref().expect("dane active"));
                    delivered = ok;
                    validated = ok;
                } else if sts_active {
                    delivered = sts_action != Some(SenderAction::Refuse);
                    validated = sts_action == Some(SenderAction::Deliver);
                }
                // Pure opportunistic: deliver regardless, TLS when offered.
            }
        }

        TestRecord {
            sender: profile.domain.clone(),
            operator: profile.operator,
            case,
            delivered,
            tls_used,
            validated,
        }
    }

    /// Runs every sender in `profiles` against every test case.
    pub fn run_all(&self, profiles: &[SenderProfile]) -> Vec<TestRecord> {
        let mut out = Vec::with_capacity(profiles.len() * TestCase::ALL.len());
        for profile in profiles {
            for case in TestCase::ALL {
                out.push(self.run_test(profile, case));
            }
        }
        out
    }
}

/// Installs one receiver configuration into the world.
fn install_case(world: &World, case: TestCase, now: SimInstant) {
    let domain = case.domain();
    let mx_host = domain.prefixed("mx").expect("static label");
    world.ensure_zone(&domain);

    // MX record.
    world.with_zone(&domain, |z| {
        z.add_rr(
            &domain,
            300,
            RecordData::Mx {
                preference: 10,
                exchange: mx_host.clone(),
            },
        );
    });

    // The MX endpoint + certificate per case.
    let chain = match case {
        TestCase::MtaStsValid | TestCase::Conflict => {
            world
                .pki
                .issue(&CertKind::Valid, std::slice::from_ref(&mx_host), now)
        }
        TestCase::MtaStsBrokenCert | TestCase::DaneOnly => {
            world
                .pki
                .issue(&CertKind::SelfSigned, std::slice::from_ref(&mx_host), now)
        }
        TestCase::Plaintext => Vec::new(),
    };
    let endpoint = if case == TestCase::Plaintext {
        MxEndpoint::plaintext(mx_host.clone())
    } else {
        MxEndpoint::healthy(mx_host.clone(), chain.clone())
    };
    let mx_ip = world.add_mx_endpoint(endpoint);
    world.with_zone(&domain, |z| {
        z.add_rr(&mx_host, 300, RecordData::A(mx_ip));
    });

    // MTA-STS side.
    if matches!(
        case,
        TestCase::MtaStsValid | TestCase::MtaStsBrokenCert | TestCase::Conflict
    ) {
        world.with_zone(&domain, |z| {
            z.add_rr(
                &domain.prefixed("_mta-sts").expect("static"),
                300,
                RecordData::Txt(vec!["v=STSv1; id=test1;".into()]),
            );
        });
        let policy_host = domain.prefixed("mta-sts").expect("static");
        let mut web = WebEndpoint::up();
        web.install_chain(
            policy_host.clone(),
            world
                .pki
                .issue(&CertKind::Valid, std::slice::from_ref(&policy_host), now),
        );
        web.install_policy(
            policy_host.clone(),
            &format!("version: STSv1\r\nmode: enforce\r\nmx: {mx_host}\r\nmax_age: 86400\r\n"),
        );
        let web_ip = world.add_web_endpoint(web);
        world.with_zone(&domain, |z| {
            z.add_rr(&policy_host, 300, RecordData::A(web_ip));
        });
    }

    // DANE side.
    match case {
        TestCase::DaneOnly => {
            world.set_dnssec(&domain, true);
            let tlsa = tlsa_for_cert(&chain[0]);
            world.with_zone(&domain, |z| {
                z.add_rr(&danelite::tlsa_name(&mx_host), 300, RecordData::Tlsa(tlsa));
            });
        }
        TestCase::Conflict => {
            // TLSA that matches *nothing* the server presents.
            world.set_dnssec(&domain, true);
            let decoy = world
                .pki
                .issue(&CertKind::SelfSigned, std::slice::from_ref(&mx_host), now);
            let tlsa = tlsa_for_cert(&decoy[0]);
            world.with_zone(&domain, |z| {
                z.add_rr(&danelite::tlsa_name(&mx_host), 300, RecordData::Tlsa(tlsa));
            });
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{SenderPopulation, SenderProfile};

    fn platform() -> Platform {
        Platform::new(SimDate::ymd(2024, 6, 1))
    }

    fn profile(tls: TlsSupport, mtasts: bool, dane: bool, prefer: bool) -> SenderProfile {
        SenderProfile {
            domain: "sender.example".parse().unwrap(),
            tls,
            validates_mtasts: mtasts,
            validates_dane: dane,
            prefers_mtasts_over_dane: prefer,
            operator: "long-tail",
        }
    }

    #[test]
    fn opportunistic_sender_delivers_everywhere() {
        let p = platform();
        let sender = profile(TlsSupport::Opportunistic, false, false, false);
        for case in TestCase::ALL {
            let rec = p.run_test(&sender, case);
            assert!(rec.delivered, "{case:?}");
            assert_eq!(rec.tls_used, case != TestCase::Plaintext, "{case:?}");
            assert!(!rec.validated);
        }
    }

    #[test]
    fn mtasts_validator_refuses_broken_cert_only() {
        let p = platform();
        let sender = profile(TlsSupport::Opportunistic, true, false, false);
        assert!(p.run_test(&sender, TestCase::MtaStsValid).delivered);
        assert!(p.run_test(&sender, TestCase::MtaStsValid).validated);
        let broken = p.run_test(&sender, TestCase::MtaStsBrokenCert);
        assert!(!broken.delivered, "enforce + self-signed must refuse");
        // DANE-only receiver: no MTA-STS record, delivered opportunistically.
        assert!(p.run_test(&sender, TestCase::DaneOnly).delivered);
        // Conflict: MTA-STS side is valid, delivered + validated.
        let conflict = p.run_test(&sender, TestCase::Conflict);
        assert!(conflict.delivered && conflict.validated);
    }

    #[test]
    fn dane_validator_semantics() {
        let p = platform();
        let sender = profile(TlsSupport::Opportunistic, false, true, false);
        // DANE-only: self-signed cert matching TLSA → delivered, validated.
        let dane = p.run_test(&sender, TestCase::DaneOnly);
        assert!(dane.delivered && dane.validated);
        // Conflict: TLSA mismatch → refused despite the PKIX-valid cert.
        let conflict = p.run_test(&sender, TestCase::Conflict);
        assert!(!conflict.delivered, "RFC-compliant DANE must refuse");
        // No TLSA anywhere else: opportunistic delivery.
        assert!(p.run_test(&sender, TestCase::MtaStsBrokenCert).delivered);
    }

    #[test]
    fn both_validators_and_the_milter_bug() {
        let p = platform();
        let compliant = profile(TlsSupport::Opportunistic, true, true, false);
        let buggy = profile(TlsSupport::Opportunistic, true, true, true);
        // Conflict case separates them: DANE-precedence refuses, the bug
        // delivers because MTA-STS validated.
        assert!(!p.run_test(&compliant, TestCase::Conflict).delivered);
        assert!(p.run_test(&buggy, TestCase::Conflict).delivered);
        // Both refuse the broken-cert MTA-STS receiver.
        assert!(!p.run_test(&compliant, TestCase::MtaStsBrokenCert).delivered);
        assert!(!p.run_test(&buggy, TestCase::MtaStsBrokenCert).delivered);
    }

    #[test]
    fn pkix_always_sender() {
        let p = platform();
        let sender = profile(TlsSupport::PkixAlways, false, false, false);
        assert!(p.run_test(&sender, TestCase::MtaStsValid).delivered);
        // Self-signed MX: refused regardless of MTA-STS/DANE.
        assert!(!p.run_test(&sender, TestCase::MtaStsBrokenCert).delivered);
        assert!(!p.run_test(&sender, TestCase::DaneOnly).delivered);
        // Plaintext: refused (no TLS at all).
        assert!(!p.run_test(&sender, TestCase::Plaintext).delivered);
    }

    #[test]
    fn plaintext_sender_never_uses_tls() {
        let p = platform();
        let sender = profile(TlsSupport::None, false, false, false);
        for case in TestCase::ALL {
            let rec = p.run_test(&sender, case);
            assert!(rec.delivered && !rec.tls_used && !rec.validated, "{case:?}");
        }
    }

    #[test]
    fn run_all_covers_population_times_cases() {
        let p = platform();
        let pop = SenderPopulation::generate(1, 50);
        let records = p.run_all(&pop.profiles);
        assert_eq!(records.len(), 50 * TestCase::ALL.len());
    }
}
