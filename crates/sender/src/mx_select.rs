//! RFC 5321 §5.1 MX selection: priority tiers, deterministic weight
//! shuffle within equal-preference sets.
//!
//! A sending MTA must try the lowest-preference MX hosts first and, when
//! several share a preference value, pick among them "randomly" to
//! spread load. This repository's determinism contract forbids actual
//! randomness, so the shuffle is *seeded*: each host's position within
//! its tier is a pure function of `(seed, recipient domain, host name)`.
//! The result is a proper permutation of the published MX set, stable
//! across runs and thread counts, yet different per domain and seed —
//! exactly the load-spreading a weight shuffle buys, reproducibly.

use netbase::{DetRng, DomainName};
use rand::Rng;

/// One rung of the fail-over ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MxCandidate {
    /// RFC 5321 preference (lower tries first).
    pub preference: u16,
    /// The exchange host.
    pub host: DomainName,
}

/// Orders `records` into the fail-over ladder: ascending preference
/// tiers, seeded shuffle within each tier.
///
/// Determinism contract: the output is a permutation of the input
/// (nothing added, nothing dropped) whose order depends only on
/// `(rng seed, domain, preference, host)` — never on the input order or
/// on which thread runs the sort. Equal-`(preference, key)` collisions
/// fall back to host-name order, so the ladder is fully canonical.
pub fn mx_ladder(
    rng: &DetRng,
    domain: &DomainName,
    records: &[(u16, DomainName)],
) -> Vec<MxCandidate> {
    let scope = rng.fork("mx-select").fork(&domain.to_string());
    let mut keyed: Vec<(u16, u64, MxCandidate)> = records
        .iter()
        .map(|(preference, host)| {
            let key: u64 = scope.stream_for(&format!("host/{host}")).gen();
            (
                *preference,
                key,
                MxCandidate {
                    preference: *preference,
                    host: host.clone(),
                },
            )
        })
        .collect();
    keyed.sort_by_key(|a| (a.0, a.1, a.2.host.to_string()));
    keyed.into_iter().map(|(_, _, c)| c).collect()
}

/// Filters an `enforce`-mode ladder through the policy's `mx` patterns
/// *before* fail-over (RFC 8461 §5.1): rungs matching no pattern are
/// removed so they are never even attempted — except rungs for which
/// `dane_covered` returns true, because usable TLSA records take
/// precedence over MTA-STS (RFC 7672 semantics; the kumomta egress
/// rule). Returns how many rungs were filtered out.
pub fn filter_ladder_for_policy(
    ladder: &mut Vec<MxCandidate>,
    policy: &mtasts::Policy,
    mut dane_covered: impl FnMut(&DomainName) -> bool,
) -> u32 {
    let before = ladder.len();
    ladder.retain(|c| mtasts::mx_matches_policy(&c.host, policy) || dane_covered(&c.host));
    (before - ladder.len()) as u32
}

/// The ladder when a domain publishes no MX records at all: RFC 5321
/// §5.1's implicit MX — the domain itself at preference 0.
pub fn implicit_mx(domain: &DomainName) -> Vec<MxCandidate> {
    vec![MxCandidate {
        preference: 0,
        host: domain.clone(),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn records() -> Vec<(u16, DomainName)> {
        vec![
            (10, n("mx1.example.com")),
            (10, n("mx2.example.com")),
            (10, n("mx3.example.com")),
            (20, n("backup.example.com")),
        ]
    }

    #[test]
    fn tiers_stay_ordered_and_complete() {
        let ladder = mx_ladder(&DetRng::new(7), &n("example.com"), &records());
        assert_eq!(ladder.len(), 4);
        assert_eq!(ladder[3].host, n("backup.example.com"));
        for pair in ladder.windows(2) {
            assert!(pair[0].preference <= pair[1].preference);
        }
    }

    #[test]
    fn shuffle_is_stable_per_seed_and_domain() {
        let a = mx_ladder(&DetRng::new(7), &n("example.com"), &records());
        let b = mx_ladder(&DetRng::new(7), &n("example.com"), &records());
        assert_eq!(a, b);
        // Input order is irrelevant: a reversed record set lands on the
        // same ladder.
        let mut reversed = records();
        reversed.reverse();
        let c = mx_ladder(&DetRng::new(7), &n("example.com"), &reversed);
        assert_eq!(a, c);
    }

    #[test]
    fn different_domains_shuffle_differently() {
        // Across many domains the first-tier winner must vary — that is
        // the load-spreading the shuffle exists for.
        let rng = DetRng::new(7);
        let firsts: std::collections::HashSet<String> = (0..32)
            .map(|i| {
                let d = n(&format!("d{i}.example.org"));
                mx_ladder(&rng, &d, &records())[0].host.to_string()
            })
            .collect();
        assert!(firsts.len() > 1, "shuffle never varied: {firsts:?}");
    }

    #[test]
    fn ladder_filter_keeps_listed_and_dane_covered_rungs() {
        let policy = mtasts::parse_policy(
            "version: STSv1\r\nmode: enforce\r\nmx: *.example.com\r\nmax_age: 604800\r\n",
        )
        .unwrap();
        let mut ladder = mx_ladder(
            &DetRng::new(7),
            &n("example.com"),
            &[
                (10, n("mx1.example.com")),
                (10, n("deep.mx.example.com")), // multi-label: wildcard must NOT match
                (20, n("relay.evil.example")),  // unlisted
                (30, n("dane.evil.example")),   // unlisted but DANE-covered
            ],
        );
        let filtered =
            filter_ladder_for_policy(&mut ladder, &policy, |h| *h == n("dane.evil.example"));
        assert_eq!(filtered, 2);
        let hosts: Vec<String> = ladder.iter().map(|c| c.host.to_string()).collect();
        assert_eq!(hosts, vec!["mx1.example.com", "dane.evil.example"]);
    }

    #[test]
    fn implicit_mx_is_the_domain_itself() {
        let ladder = implicit_mx(&n("nodns.example.net"));
        assert_eq!(ladder.len(), 1);
        assert_eq!(ladder[0].preference, 0);
        assert_eq!(ladder[0].host, n("nodns.example.net"));
    }
}
