//! The outbound delivery pipeline: a deterministic message queue with
//! per-recipient envelope status, multi-MX fail-over, a typed
//! retry-vs-bounce taxonomy, and per-host circuit breaking.
//!
//! The paper's sender-side story (§2.4, §6) is about what a *sending*
//! MTA does when the recipient's infrastructure misbehaves. The
//! per-message engine in [`crate::delivery`] answers the policy
//! question (what does MTA-STS buy?); this module answers the
//! operational one: **when an MX is down, degraded, flapping, or
//! greylisting, does the mail still flow — and at what retry cost?**
//!
//! Shape of the machine:
//!
//! - every submitted recipient becomes one [`QueuedMessage`] with its
//!   own ledger row — per-recipient envelope status, never a
//!   whole-message blur;
//! - each delivery attempt walks the RFC 5321 fail-over ladder from
//!   [`crate::mx_select::mx_ladder`]: priority tiers in order, a seeded
//!   weight shuffle within equal-preference sets, connection-level
//!   failures falling through to the next rung;
//! - SMTP replies are classified *by type*: 4xx requeues with the
//!   [`RetryPolicy`]'s backoff, 5xx bounces immediately, and
//!   connection-level failures count against the per-host
//!   [`BreakerBoard`] so a dead MX is skipped for a cooldown window
//!   instead of eating a timeout per message;
//! - the queue runs in **waves** of a fixed size: within a wave every
//!   message sees the same immutable breaker snapshot and is processed
//!   by [`netbase::map_sharded`] (pure in `(seq, message)`), and
//!   between waves the per-host events fold into the board in
//!   canonical message order. Output is therefore byte-identical for
//!   any `SCAN_THREADS`, and a killed run resumes from its checkpoint
//!   to the same ledger.

use crate::breaker::{Admission, BreakerBoard, BreakerConfig, HostEvent};
use crate::enforce::{
    EnforcementConfig, ResolvedPolicy, StsApplication, TlsEvidence, TlsRequirement, WavePolicies,
};
use crate::mx_select::{filter_ladder_for_policy, implicit_mx, mx_ladder, MxCandidate};
use crate::resolver::{resolve_shared, ResolverConfig, ShardedPolicyCache, TransportSource};
use mtasts::{CachedPolicy, Mode, ReportBuilder, StsFailure, StsOutcome};
use netbase::AttemptEvent;
use netbase::{map_sharded, DetRng, DomainName, Duration, RetryPolicy, RetryVerdict, SimInstant};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One per-recipient envelope in the queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedMessage {
    /// Queue-unique message id (caller-assigned; appears in the ledger).
    pub id: String,
    /// Envelope sender (MAIL FROM).
    pub mail_from: String,
    /// The single envelope recipient this queue entry tracks (RCPT TO).
    /// Multi-recipient submissions fan out into one entry per recipient
    /// so every recipient gets its own status row.
    pub rcpt_to: String,
    /// Message body.
    pub body: String,
}

impl QueuedMessage {
    /// A one-recipient message.
    pub fn new(id: &str, from: &str, to: &str, body: &str) -> QueuedMessage {
        QueuedMessage {
            id: id.to_string(),
            mail_from: from.to_string(),
            rcpt_to: to.to_string(),
            body: body.to_string(),
        }
    }

    /// The recipient's domain (routing key). `None` for a malformed
    /// address, which bounces without touching the network.
    pub fn recipient_domain(&self) -> Option<DomainName> {
        self.rcpt_to
            .rsplit_once('@')
            .and_then(|(_, d)| d.parse().ok())
    }
}

/// What one connection attempt to one MX host produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptDisposition {
    /// The message was accepted.
    Delivered {
        /// The TLS evidence the session produced.
        tls: TlsEvidence,
    },
    /// Connection-level failure: refused, timeout, reset mid-dialogue.
    /// Counts against the host's circuit breaker; the ladder falls
    /// through to the next rung.
    HostUnreachable,
    /// The server answered with a non-positive SMTP reply. The host is
    /// *alive* (no breaker damage); the code's class decides requeue
    /// (4xx) versus bounce (5xx).
    Reply {
        /// The reply code.
        code: u16,
        /// First reply line text.
        text: String,
    },
    /// The *sender* aborted the session because the attempt's
    /// [`TlsRequirement`] was unmet (no STARTTLS, bad certificate under
    /// `RequirePkix`/`RequireDane`). The host is alive — no breaker
    /// damage — but the rung is unusable under the governing policy;
    /// the ladder falls through.
    TlsRefused {
        /// What the requirement check rejected.
        failure: StsFailure,
    },
}

/// How the queue reaches recipient infrastructure. The fast path walks
/// the in-process [`simnet::World`]; the wire path (assembled in the
/// root-package tests) speaks real SMTP over localhost TCP. Both
/// implementations must be pure functions of `(domain/host, message,
/// now)` for the determinism contract to hold.
pub trait MxTransport: Sync {
    /// The recipient domain's MX RRset as `(preference, host)` pairs.
    /// `Err` is treated as a transient routing failure (requeue);
    /// `Ok(vec![])` falls back to the implicit MX.
    fn route(&self, domain: &DomainName, now: SimInstant)
        -> Result<Vec<(u16, DomainName)>, String>;

    /// One delivery attempt to one MX host under `tls`.
    fn attempt(
        &self,
        mx_host: &DomainName,
        message: &QueuedMessage,
        now: SimInstant,
        tls: &TlsRequirement,
    ) -> AttemptDisposition;

    /// The `_mta-sts.<domain>` TXT strings; `None` when the lookup
    /// failed (SERVFAIL-class), `Some(vec![])` when the name does not
    /// exist. The default — no MTA-STS anywhere — keeps policy-blind
    /// transports (and the pre-enforcement behaviour) working unchanged.
    fn sts_record(&self, _domain: &DomainName, _now: SimInstant) -> Option<Vec<String>> {
        Some(Vec::new())
    }

    /// Fetches the raw policy document over strict-TLS HTTPS
    /// (RFC 8461 §3.3). Only called when a valid record demands it.
    fn fetch_sts_policy(&self, _domain: &DomainName, _now: SimInstant) -> Result<String, String> {
        Err("transport has no policy source".to_string())
    }

    /// Usable TLSA records at `_25._tcp.<mx>` when the hosting zone is
    /// DNSSEC-signed; `None` when DANE does not apply to the host.
    fn tlsa_records(
        &self,
        _mx_host: &DomainName,
        _now: SimInstant,
    ) -> Option<Vec<dns::TlsaRecord>> {
        None
    }

    /// Whether an active attack window touches `name` at `now` — the
    /// simulation's omniscient interception accounting (a real MTA
    /// cannot know this; the chaos matrix uses it to *grade* modes).
    fn attack_touched(&self, _name: &DomainName, _now: SimInstant) -> bool {
        false
    }
}

/// Why a message bounced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BounceReason {
    /// A 5xx reply: the recipient infrastructure permanently refused.
    Permanent {
        /// The 5xx code.
        code: u16,
        /// Reply text.
        text: String,
    },
    /// Transient failures (4xx, unreachable hosts, routing errors)
    /// persisted past the retry policy's attempt cap or deadline.
    RetriesExhausted {
        /// The final attempt's failure, rendered.
        last_error: String,
    },
    /// The recipient address had no parseable domain; never attempted.
    Unroutable,
    /// An `enforce`-mode MTA-STS policy (or DANE) refused every usable
    /// rung for the whole retry schedule: the ladder was fully filtered
    /// by the policy's `mx` patterns, or every surviving rung failed
    /// the TLS requirement. Distinct from [`BounceReason::Unroutable`]
    /// — the MX set existed, the *policy* forbade it.
    PolicyRefused {
        /// The last policy-level failure observed.
        failure: StsFailure,
    },
}

/// Terminal per-recipient envelope status.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageStatus {
    /// Accepted by an MX.
    Delivered {
        /// The host that accepted.
        mx_host: String,
        /// Whether STARTTLS protected the session.
        tls_used: bool,
        /// Whether the session was *validated* under the governing
        /// requirement (PKIX under `enforce`/`testing` audit, DANE under
        /// TLSA precedence). Always `false` without enforcement.
        validated: bool,
    },
    /// Returned to sender.
    Bounced {
        /// The typed reason.
        reason: BounceReason,
    },
}

/// One ledger row: everything the queue observed for one recipient.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageRecord {
    /// Global submission index (stable across kill/resume).
    pub seq: u64,
    /// Caller-assigned message id.
    pub id: String,
    /// The recipient.
    pub rcpt_to: String,
    /// Terminal status.
    pub status: MessageStatus,
    /// Delivery attempts made (1..=retry cap).
    pub attempts: u32,
    /// Ladder rungs fallen through after connection-level failures.
    pub failovers: u32,
    /// Rungs skipped because the host's breaker was open.
    pub breaker_skips: u32,
    /// Rungs never used because of the governing policy: filtered out
    /// by `enforce`-mode `mx` patterns before fail-over, or attempted
    /// and TLS-refused.
    pub policy_skips: u32,
    /// What governed the terminal attempt (policy mode / DANE / none).
    pub sts: StsApplication,
    /// The RFC 8460 outcome this message contributes to TLSRPT; `None`
    /// when enforcement was off, or for non-policy bounces (no TLS
    /// session concluded, nothing to report).
    pub sts_outcome: Option<StsOutcome>,
    /// Simulation-omniscient grading: the message was delivered
    /// *unvalidated* while an attack window touched its domain or the
    /// accepting MX — mail an on-path attacker could read or take.
    pub intercepted: bool,
    /// When the first attempt started (sim clock, unix seconds).
    pub admitted_unix_secs: i64,
    /// When the terminal status was reached (sim clock, unix seconds).
    pub finished_unix_secs: i64,
}

impl MessageRecord {
    /// Whether the message reached an MX.
    pub fn delivered(&self) -> bool {
        matches!(self.status, MessageStatus::Delivered { .. })
    }
}

/// Queue-wide accounting, deterministic across thread counts and
/// kill/resume cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Messages processed to a terminal status.
    pub processed: u64,
    /// Delivered.
    pub delivered: u64,
    /// Bounced on a 5xx.
    pub bounced_permanent: u64,
    /// Bounced after exhausting retries.
    pub bounced_exhausted: u64,
    /// Bounced unroutable.
    pub bounced_unroutable: u64,
    /// Bounced because the policy refused every usable rung.
    pub bounced_policy: u64,
    /// Total delivery attempts.
    pub attempts: u64,
    /// Requeues (attempts beyond each message's first).
    pub requeues: u64,
    /// Connection-level fail-overs to a lower rung.
    pub failovers: u64,
    /// Ladder rungs skipped by open breakers.
    pub breaker_skips: u64,
    /// Deliveries whose session validated under the governing
    /// requirement (PKIX or DANE).
    pub delivered_validated: u64,
    /// Deliveries carried by DANE precedence over MTA-STS.
    pub delivered_dane: u64,
    /// `testing`-mode deliveries that would have failed under `enforce`
    /// (RFC 8461 §5: report, don't refuse).
    pub soft_fails: u64,
    /// Ladder rungs filtered by policy patterns or TLS-refused.
    pub policy_ladder_skips: u64,
    /// Wave resolutions that served a fresh-enough cached policy after
    /// a failed or garbage refresh (RFC 8461 §3.3 stale fallback).
    pub stale_fallbacks: u64,
    /// Deliveries graded as intercepted (unvalidated under an active
    /// attack window).
    pub intercepted: u64,
}

impl QueueStats {
    fn absorb(&mut self, rec: &MessageRecord) {
        self.processed += 1;
        match &rec.status {
            MessageStatus::Delivered { validated, .. } => {
                self.delivered += 1;
                if *validated {
                    self.delivered_validated += 1;
                }
                if matches!(rec.sts, StsApplication::Dane) {
                    self.delivered_dane += 1;
                }
                if matches!(rec.sts_outcome, Some(StsOutcome::Failed { .. })) {
                    self.soft_fails += 1;
                }
            }
            MessageStatus::Bounced { reason } => match reason {
                BounceReason::Permanent { .. } => self.bounced_permanent += 1,
                BounceReason::RetriesExhausted { .. } => self.bounced_exhausted += 1,
                BounceReason::Unroutable => self.bounced_unroutable += 1,
                BounceReason::PolicyRefused { .. } => self.bounced_policy += 1,
            },
        }
        if rec.intercepted {
            self.intercepted += 1;
        }
        self.attempts += u64::from(rec.attempts);
        self.requeues += u64::from(rec.attempts.saturating_sub(1));
        self.failovers += u64::from(rec.failovers);
        self.breaker_skips += u64::from(rec.breaker_skips);
        self.policy_ladder_skips += u64::from(rec.policy_skips);
    }
}

/// Queue configuration.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Root seed for the MX shuffle and retry jitter.
    pub seed: u64,
    /// Worker threads (0 = read `SCAN_THREADS`, default 1). The ledger
    /// is byte-identical for every value.
    pub threads: usize,
    /// Messages per wave. Wave boundaries sit at fixed multiples of
    /// this, so checkpoint/resume composes with determinism. Must be
    /// at least 1.
    pub wave_size: usize,
    /// The sim instant message 0 is admitted at.
    pub epoch: SimInstant,
    /// Seconds between consecutive admissions: message `seq` starts at
    /// `epoch + seq * admission_spacing_secs`. Decorrelates per-message
    /// fault draws (faults are keyed on `(scope, instant)`).
    pub admission_spacing_secs: i64,
    /// The retry/backoff discipline (4xx and unreachable-ladder
    /// failures requeue under it).
    pub retry: RetryPolicy,
    /// Per-host circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Where to persist the queue checkpoint; `None` disables.
    pub checkpoint_path: Option<PathBuf>,
    /// Stop (with a checkpoint) at the first wave boundary after this
    /// many messages processed in this invocation — the kill hook the
    /// resume tests use.
    pub message_budget: Option<usize>,
    /// MTA-STS enforcement. `None` keeps the pre-enforcement queue:
    /// every attempt opportunistic, no policy resolution, no TLSRPT.
    pub enforcement: Option<EnforcementConfig>,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            seed: 42,
            threads: 0,
            wave_size: 32,
            epoch: SimInstant::from_unix_secs(1_717_200_000),
            admission_spacing_secs: 7,
            retry: RetryPolicy {
                max_attempts: 4,
                initial_backoff: Duration::seconds(60),
                multiplier: 4,
                max_backoff: Duration::seconds(3600),
                jitter: 0.25,
                attempt_timeout: Duration::seconds(30),
                total_deadline: Duration::seconds(48 * 3600),
            },
            breaker: BreakerConfig::default(),
            checkpoint_path: None,
            message_budget: None,
            enforcement: None,
        }
    }
}

impl QueueConfig {
    /// The effective worker-thread count (mirrors the scan engine's
    /// `SCAN_THREADS` contract without a scanner dependency).
    fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        std::env::var("SCAN_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1)
    }
}

/// The outcome of one queue invocation.
#[derive(Debug, Clone)]
pub struct QueueOutcome {
    /// Per-recipient ledger, in submission order (complete prefix).
    pub records: Vec<MessageRecord>,
    /// Aggregate accounting over `records`.
    pub stats: QueueStats,
    /// Final breaker state.
    pub board: BreakerBoard,
    /// RFC 8460 TLSRPT aggregation over the ledger (deliveries and
    /// policy bounces). Rebuilt from `records` on every return, so it
    /// is identical across kill/resume splits. Empty when enforcement
    /// is off.
    pub tlsrpt: ReportBuilder,
    /// `true` when the message budget suspended the run mid-queue; the
    /// checkpoint holds the state to resume from.
    pub suspended: bool,
}

/// FNV-1a 64-bit over the serialized ledger — the byte-identity witness
/// the determinism tests and the bench compare.
pub fn ledger_digest(records: &[MessageRecord]) -> String {
    let payload = serde_json::to_string(records).expect("ledger serializes");
    format!("{:016x}", fnv64(payload.as_bytes()))
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Magic tag of the queue checkpoint header line.
const QUEUE_CKPT_MAGIC: &str = "MTASTS-DLVQ1";

/// The on-disk queue checkpoint: the completed ledger prefix plus the
/// folded breaker board at the wave boundary it was taken on. Same
/// integrity discipline as the scan supervisor's checkpoint: a
/// `MTASTS-DLVQ1 <len> <fnv64>` header, and any corruption starts the
/// run fresh instead of resuming wrong.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct QueueCheckpoint {
    records: Vec<MessageRecord>,
    board: BreakerBoard,
    next_index: usize,
    stats: QueueStats,
    /// The MTA-STS policy-cache snapshot at the wave boundary, sorted
    /// by domain. Resuming restores it, so the resumed run replays the
    /// same cache decisions (and §3.3 fallbacks) the uninterrupted run
    /// makes — the determinism contract with enforcement on. `default`
    /// so pre-enforcement checkpoints still parse.
    #[serde(default)]
    sts_cache: Vec<(DomainName, CachedPolicy)>,
}

impl QueueCheckpoint {
    fn load(path: &PathBuf) -> QueueCheckpoint {
        let Ok(text) = std::fs::read_to_string(path) else {
            return QueueCheckpoint::default();
        };
        QueueCheckpoint::parse(&text).unwrap_or_default()
    }

    fn parse(text: &str) -> Option<QueueCheckpoint> {
        let (header, payload) = text.split_once('\n')?;
        let mut fields = header.split(' ');
        if fields.next() != Some(QUEUE_CKPT_MAGIC) {
            return None;
        }
        let len: usize = fields.next()?.parse().ok()?;
        let hash: u64 = u64::from_str_radix(fields.next()?, 16).ok()?;
        if fields.next().is_some() || payload.len() != len || fnv64(payload.as_bytes()) != hash {
            return None;
        }
        serde_json::from_str(payload).ok()
    }

    /// Atomic store: unique temp sibling, then rename (see the scan
    /// supervisor for the rationale). I/O failure is returned, not
    /// panicked, so the queue can keep draining checkpoint-free.
    fn store(&self, path: &PathBuf) -> std::io::Result<()> {
        static WRITER_SEQ: AtomicU64 = AtomicU64::new(0);
        let payload = serde_json::to_string(self).expect("checkpoint serializes");
        let text = format!(
            "{QUEUE_CKPT_MAGIC} {} {:016x}\n{payload}",
            payload.len(),
            fnv64(payload.as_bytes())
        );
        let seq = WRITER_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
        std::fs::write(&tmp, &text)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(())
    }
}

/// A dispatch-layer failure, classified for the retry policy.
#[derive(Debug, Clone)]
struct DispatchError {
    transient: bool,
    rendered: String,
    /// Set when the failure was a concrete 5xx reply.
    permanent_reply: Option<(u16, String)>,
    /// Set when the governing policy (not the network) blocked the
    /// ladder: fully filtered by `mx` patterns, or every surviving rung
    /// TLS-refused. Transient — a later retry may land outside an
    /// attack window or after a breaker re-admission — but exhaustion
    /// becomes [`BounceReason::PolicyRefused`] instead of the generic
    /// retries-exhausted bounce.
    policy_refusal: Option<StsFailure>,
}

impl DispatchError {
    fn transient(rendered: String) -> DispatchError {
        DispatchError {
            transient: true,
            rendered,
            permanent_reply: None,
            policy_refusal: None,
        }
    }
}

/// The deterministic outbound queue.
#[derive(Debug, Clone, Default)]
pub struct DeliveryQueue {
    /// Queue tuning.
    pub cfg: QueueConfig,
}

impl DeliveryQueue {
    /// A queue with the given configuration.
    pub fn new(cfg: QueueConfig) -> DeliveryQueue {
        DeliveryQueue { cfg }
    }

    /// Drains `messages` (or resumes draining them from the checkpoint)
    /// through `transport`.
    ///
    /// Determinism contract: for a fixed `(cfg.seed, messages,
    /// transport behaviour)` the returned ledger is byte-identical for
    /// every thread count and across any kill/resume split — waves sit
    /// at fixed multiples of `wave_size`, every message in a wave sees
    /// the same breaker snapshot, and per-host events fold between
    /// waves in submission order.
    pub fn run<T: MxTransport>(&self, transport: &T, messages: &[QueuedMessage]) -> QueueOutcome {
        assert!(self.cfg.wave_size >= 1, "wave_size must be at least 1");
        let threads = self.cfg.effective_threads();
        let rng = DetRng::new(self.cfg.seed);
        let mut checkpoint_path = self.cfg.checkpoint_path.clone();
        let mut ckpt = match &checkpoint_path {
            Some(path) => QueueCheckpoint::load(path),
            None => QueueCheckpoint::default(),
        };
        // A checkpoint from a different (longer) queue run would resume
        // nonsense; treat it as absent.
        if ckpt.next_index > messages.len() {
            ckpt = QueueCheckpoint::default();
        }
        // The TOFU policy cache rides the checkpoint so a resumed run
        // replays the same cache decisions the uninterrupted run makes.
        // Since PR 8 it is the resolver's sharded cache, so the queue
        // and a co-resident daemon share one implementation; the
        // snapshot format (sorted entries) is unchanged.
        let sts_cache = ShardedPolicyCache::from_snapshot(
            ckpt.sts_cache.clone(),
            ResolverConfig::default().shards,
        );
        let mut index = ckpt.next_index;
        let mut processed_here = 0usize;

        while index < messages.len() {
            if let Some(budget) = self.cfg.message_budget {
                if processed_here >= budget {
                    ckpt.next_index = index;
                    let _ = store_checkpoint(&ckpt, &mut checkpoint_path);
                    obsv::event!("delivery.queue_suspend");
                    let tlsrpt = fold_tlsrpt(&ckpt.records);
                    return QueueOutcome {
                        records: ckpt.records,
                        stats: ckpt.stats,
                        board: ckpt.board,
                        tlsrpt,
                        suspended: true,
                    };
                }
            }

            // Wave boundaries sit at absolute multiples of wave_size so
            // a killed-and-resumed run re-forms exactly the waves an
            // uninterrupted one had (the breaker fold points — and with
            // them the ladder decisions — depend on wave composition).
            let wave_end =
                (((index / self.cfg.wave_size) + 1) * self.cfg.wave_size).min(messages.len());
            let batch = &messages[index..wave_end];
            let snapshot = ckpt.board.clone();
            // Single-threaded, submission-ordered policy resolution:
            // one resolution per (domain, wave), at the admission
            // instant of the wave's first message for that domain, so
            // cache state never depends on worker interleaving.
            let wave_policies = if self.cfg.enforcement.is_some() {
                resolve_wave(
                    &self.cfg,
                    &sts_cache,
                    transport,
                    batch,
                    index as u64,
                    &mut ckpt.stats,
                )
            } else {
                WavePolicies::new()
            };
            let mut wave_span = obsv::span!("delivery.wave");
            let results = map_sharded(threads, batch, |j, msg| {
                process_message(
                    &self.cfg,
                    &rng,
                    &snapshot,
                    &wave_policies,
                    transport,
                    (index + j) as u64,
                    msg,
                )
            });
            wave_span.set_sim_secs(0);
            for (record, events) in results {
                for event in &events {
                    ckpt.board.apply(&self.cfg.breaker, event);
                }
                ckpt.stats.absorb(&record);
                ckpt.records.push(record);
            }
            processed_here += batch.len();
            // Close the wave's flight-recorder window (keyed by the
            // absolute wave ordinal — the queue's "sim date") and emit a
            // messages/sec progress tick. Driver thread only, after the
            // workers were absorbed; free when recording is off.
            obsv::timeseries::roll((index / self.cfg.wave_size) as i64);
            obsv::health::progress("delivery.messages", wave_end as u64, messages.len() as u64);
            index = wave_end;
            ckpt.next_index = index;
            if self.cfg.enforcement.is_some() {
                ckpt.sts_cache = sts_cache.snapshot();
            }
            if index < messages.len() {
                let _ = store_checkpoint(&ckpt, &mut checkpoint_path);
            }
        }

        let _ = store_checkpoint(&ckpt, &mut checkpoint_path);
        let tlsrpt = fold_tlsrpt(&ckpt.records);
        QueueOutcome {
            records: ckpt.records,
            stats: ckpt.stats,
            board: ckpt.board,
            tlsrpt,
            suspended: false,
        }
    }
}

/// Resolves each distinct recipient domain of a wave once, in
/// submission order, at the admission instant of its first message.
fn resolve_wave<T: MxTransport>(
    cfg: &QueueConfig,
    cache: &ShardedPolicyCache,
    transport: &T,
    batch: &[QueuedMessage],
    base_seq: u64,
    stats: &mut QueueStats,
) -> WavePolicies {
    let source = TransportSource(transport);
    let mut policies = WavePolicies::new();
    for (j, msg) in batch.iter().enumerate() {
        let Some(domain) = msg.recipient_domain() else {
            continue;
        };
        if policies.contains_key(&domain) {
            continue;
        }
        let now = admission_instant(cfg, base_seq + j as u64);
        let (resolved, _) = resolve_shared(cache, &source, &domain, now);
        if matches!(resolved, ResolvedPolicy::Active { stale: true, .. }) {
            stats.stale_fallbacks += 1;
            obsv::counter!("delivery.sts_stale_fallback");
        }
        policies.insert(domain, resolved);
    }
    policies
}

/// Rebuilds the RFC 8460 aggregation from the ledger: one entry per
/// delivered message (success or typed soft failure) and per policy
/// bounce (hard failure). Non-policy bounces concluded no TLS session
/// and are not reported.
fn fold_tlsrpt(records: &[MessageRecord]) -> ReportBuilder {
    let mut builder = ReportBuilder::new();
    for rec in records {
        let Some(outcome) = &rec.sts_outcome else {
            continue;
        };
        let Some(domain) = rec
            .rcpt_to
            .rsplit_once('@')
            .and_then(|(_, d)| d.parse::<DomainName>().ok())
        else {
            continue;
        };
        let mx: DomainName = match &rec.status {
            MessageStatus::Delivered { mx_host, .. } => {
                mx_host.parse().unwrap_or_else(|_| domain.clone())
            }
            // Policy bounces report against the recipient domain — no
            // single MX concluded the failure (the whole ladder did).
            MessageStatus::Bounced { .. } => domain.clone(),
        };
        builder.record(&domain, &mx, outcome);
    }
    builder
}

/// When message `seq` is admitted (pure in `(cfg, seq)`).
fn admission_instant(cfg: &QueueConfig, seq: u64) -> SimInstant {
    SimInstant::from_unix_secs(
        cfg.epoch
            .unix_secs()
            .saturating_add(cfg.admission_spacing_secs.saturating_mul(seq as i64)),
    )
}

/// Stores the checkpoint when a path is set; the first I/O failure
/// disables checkpointing for the rest of the invocation (the queue
/// keeps draining — same degradation discipline as the supervisor).
fn store_checkpoint(ckpt: &QueueCheckpoint, path_slot: &mut Option<PathBuf>) -> bool {
    let Some(path) = path_slot else { return true };
    if ckpt.store(path).is_err() {
        obsv::event!("delivery.checkpoint_failure");
        *path_slot = None;
        false
    } else {
        obsv::event!("delivery.checkpoint_write");
        true
    }
}

/// Processes one message to its terminal status against an immutable
/// breaker snapshot. Pure in `(cfg, seed, snapshot, transport, seq,
/// message)` — the determinism obligation `map_sharded` needs.
fn process_message<T: MxTransport>(
    cfg: &QueueConfig,
    rng: &DetRng,
    snapshot: &BreakerBoard,
    policies: &WavePolicies,
    transport: &T,
    seq: u64,
    message: &QueuedMessage,
) -> (MessageRecord, Vec<HostEvent>) {
    obsv::counter!("delivery.enqueued");
    let admitted = admission_instant(cfg, seq);

    let Some(domain) = message.recipient_domain() else {
        obsv::counter!("delivery.bounced");
        let record = MessageRecord {
            seq,
            id: message.id.clone(),
            rcpt_to: message.rcpt_to.clone(),
            status: MessageStatus::Bounced {
                reason: BounceReason::Unroutable,
            },
            attempts: 0,
            failovers: 0,
            breaker_skips: 0,
            policy_skips: 0,
            sts: StsApplication::None,
            sts_outcome: None,
            intercepted: false,
            admitted_unix_secs: admitted.unix_secs(),
            finished_unix_secs: admitted.unix_secs(),
        };
        return (record, Vec::new());
    };

    let enforcement = cfg.enforcement.as_ref();
    let resolution = enforcement.and_then(|_| policies.get(&domain));

    let mut events: Vec<HostEvent> = Vec::new();
    let mut failovers = 0u32;
    let mut breaker_skips = 0u32;
    let mut policy_skips = 0u32;

    let label = format!("delivery/{seq}/{domain}");
    let outcome = cfg.retry.run_observed(
        rng,
        &label,
        admitted,
        |e: &DispatchError| e.transient,
        |now, _attempt| {
            attempt_ladder(
                rng,
                snapshot,
                transport,
                &domain,
                message,
                now,
                resolution,
                enforcement,
                &mut events,
                &mut failovers,
                &mut breaker_skips,
                &mut policy_skips,
            )
        },
        |event| {
            if let AttemptEvent::Failure {
                transient: true,
                backoff: Some(_),
                ..
            } = event
            {
                obsv::counter!("delivery.requeue_total");
            }
        },
    );
    let finished = outcome.finished_at;

    let (status, sts, sts_outcome) = match outcome.result {
        Ok(success) => {
            obsv::counter!("delivery.delivered");
            let validated = matches!(success.evidence, TlsEvidence::Validated)
                && success.soft_failure.is_none();
            let sts_outcome = enforcement
                .map(|_| crate::enforce::report_outcome(resolution, success.soft_failure.as_ref()));
            (
                MessageStatus::Delivered {
                    mx_host: success.host,
                    tls_used: success.evidence.tls_used(),
                    validated,
                },
                success.applied,
                sts_outcome,
            )
        }
        Err(err) => {
            obsv::counter!("delivery.bounced");
            let sts = match resolution {
                Some(ResolvedPolicy::Active {
                    policy,
                    from_cache,
                    stale,
                }) => StsApplication::Sts {
                    mode: policy.mode,
                    from_cache: *from_cache,
                    stale: *stale,
                },
                _ => StsApplication::None,
            };
            let (reason, sts_outcome) = match (outcome.verdict, err.permanent_reply) {
                (RetryVerdict::Persistent, Some((code, text))) => {
                    (BounceReason::Permanent { code, text }, None)
                }
                _ => match err.policy_refusal {
                    Some(failure) => {
                        let outcome = enforcement
                            .map(|_| crate::enforce::report_outcome(resolution, Some(&failure)));
                        (BounceReason::PolicyRefused { failure }, outcome)
                    }
                    None => (
                        BounceReason::RetriesExhausted {
                            last_error: err.rendered,
                        },
                        None,
                    ),
                },
            };
            (MessageStatus::Bounced { reason }, sts, sts_outcome)
        }
    };
    obsv::histogram!("delivery.attempts", u64::from(outcome.attempts));

    // Omniscient interception grading: delivered unvalidated while an
    // attack window touched the domain or the accepting host.
    let intercepted = match &status {
        MessageStatus::Delivered {
            mx_host, validated, ..
        } => {
            !validated
                && (transport.attack_touched(&domain, finished)
                    || mx_host
                        .parse::<DomainName>()
                        .is_ok_and(|h| transport.attack_touched(&h, finished)))
        }
        MessageStatus::Bounced { .. } => false,
    };

    let record = MessageRecord {
        seq,
        id: message.id.clone(),
        rcpt_to: message.rcpt_to.clone(),
        status,
        attempts: outcome.attempts,
        failovers,
        breaker_skips,
        policy_skips,
        sts,
        sts_outcome,
        intercepted,
        admitted_unix_secs: admitted.unix_secs(),
        finished_unix_secs: finished.unix_secs(),
    };
    (record, events)
}

/// What a successful ladder walk concluded.
struct LadderSuccess {
    /// The accepting host.
    host: String,
    /// TLS evidence from the accepting session.
    evidence: TlsEvidence,
    /// What governed the attempt (policy mode / DANE / none).
    applied: StsApplication,
    /// `testing`-mode accounting: the failure that `enforce` would have
    /// refused on (MX not listed, plaintext, bad certificate).
    soft_failure: Option<StsFailure>,
}

/// Picks the TLS requirement for one rung: DANE precedence first
/// (RFC 7672), then the policy mode (RFC 8461 §5), opportunistic
/// otherwise.
fn attempt_plan<T: MxTransport + ?Sized>(
    enforcement: Option<&EnforcementConfig>,
    transport: &T,
    resolution: Option<&ResolvedPolicy>,
    host: &DomainName,
    now: SimInstant,
) -> (TlsRequirement, StsApplication) {
    let Some(enf) = enforcement else {
        return (TlsRequirement::Opportunistic, StsApplication::None);
    };
    if enf.dane_precedence {
        if let Some(tlsa) = transport.tlsa_records(host, now) {
            return (TlsRequirement::RequireDane(tlsa), StsApplication::Dane);
        }
    }
    match resolution {
        Some(ResolvedPolicy::Active {
            policy,
            from_cache,
            stale,
        }) => {
            let applied = StsApplication::Sts {
                mode: policy.mode,
                from_cache: *from_cache,
                stale: *stale,
            };
            let requirement = match policy.mode {
                Mode::Enforce => TlsRequirement::RequirePkix,
                Mode::Testing => TlsRequirement::OpportunisticAudit,
                Mode::None => TlsRequirement::Opportunistic,
            };
            (requirement, applied)
        }
        _ => (TlsRequirement::Opportunistic, StsApplication::None),
    }
}

/// `testing`-mode soft-failure typing, in engine order: MX listing
/// first, then STARTTLS, then the certificate (RFC 8461 §5).
fn soft_failure_for(
    applied: &StsApplication,
    resolution: Option<&ResolvedPolicy>,
    host: &DomainName,
    evidence: &TlsEvidence,
) -> Option<StsFailure> {
    if !matches!(
        applied,
        StsApplication::Sts {
            mode: Mode::Testing,
            ..
        }
    ) {
        return None;
    }
    let policy = resolution.and_then(|r| r.policy())?;
    if !mtasts::mx_matches_policy(host, policy) {
        return Some(StsFailure::MxNotListed);
    }
    match evidence {
        TlsEvidence::Plaintext => Some(StsFailure::StartTlsUnavailable),
        TlsEvidence::CertFailed(e) => Some(StsFailure::CertInvalid(e.clone())),
        TlsEvidence::Encrypted | TlsEvidence::Validated => None,
    }
}

/// One walk down the fail-over ladder (= one retry-policy attempt).
#[allow(clippy::too_many_arguments)]
fn attempt_ladder<T: MxTransport>(
    rng: &DetRng,
    snapshot: &BreakerBoard,
    transport: &T,
    domain: &DomainName,
    message: &QueuedMessage,
    now: SimInstant,
    resolution: Option<&ResolvedPolicy>,
    enforcement: Option<&EnforcementConfig>,
    events: &mut Vec<HostEvent>,
    failovers: &mut u32,
    breaker_skips: &mut u32,
    policy_skips: &mut u32,
) -> Result<LadderSuccess, DispatchError> {
    let records = transport
        .route(domain, now)
        .map_err(|e| DispatchError::transient(format!("MX lookup failed: {e}")))?;
    let mut ladder: Vec<MxCandidate> = if records.is_empty() {
        implicit_mx(domain)
    } else {
        mx_ladder(rng, domain, &records)
    };

    // RFC 8461 §5.1: under `enforce`, rungs matching no `mx` pattern
    // are filtered out *before* fail-over — never attempted — unless
    // DANE covers them (RFC 7672 precedence).
    if let (Some(enf), Some(ResolvedPolicy::Active { policy, .. })) = (enforcement, resolution) {
        if policy.mode == Mode::Enforce {
            let filtered = filter_ladder_for_policy(&mut ladder, policy, |h| {
                enf.dane_precedence && transport.tlsa_records(h, now).is_some()
            });
            *policy_skips += filtered;
            if filtered > 0 {
                obsv::counter!("delivery.policy_filtered_rungs");
            }
            if ladder.is_empty() {
                // The typed policy bounce, not Unroutable: the MX set
                // existed, the policy forbade all of it. Transient —
                // a forged MX answer (MxRedirect) heals when the
                // window closes.
                return Err(DispatchError {
                    transient: true,
                    rendered: format!(
                        "policy filtered all {filtered} MX rungs for {domain} under enforce"
                    ),
                    permanent_reply: None,
                    policy_refusal: Some(StsFailure::MxNotListed),
                });
            }
        }
    }

    let mut hard_failures = 0u32;
    let mut skipped = 0u32;
    let mut refusal: Option<StsFailure> = None;
    for (rung, candidate) in ladder.iter().enumerate() {
        let host = candidate.host.to_string();
        match snapshot.admission(&host, now) {
            Admission::Skip => {
                skipped += 1;
                *breaker_skips += 1;
                obsv::counter!("delivery.breaker_skip_total");
                continue;
            }
            Admission::Allowed | Admission::Probe => {}
        }
        let (requirement, applied) =
            attempt_plan(enforcement, transport, resolution, &candidate.host, now);
        match transport.attempt(&candidate.host, message, now, &requirement) {
            AttemptDisposition::Delivered { tls } => {
                events.push(HostEvent::Reachable { host: host.clone() });
                if rung > 0 {
                    obsv::counter!("delivery.failover_delivered");
                }
                let soft_failure = soft_failure_for(&applied, resolution, &candidate.host, &tls);
                return Ok(LadderSuccess {
                    host,
                    evidence: tls,
                    applied,
                    soft_failure,
                });
            }
            AttemptDisposition::HostUnreachable => {
                events.push(HostEvent::HardFailure {
                    host,
                    at_unix_secs: now.unix_secs(),
                });
                hard_failures += 1;
                *failovers += 1;
                obsv::counter!("delivery.failover_total");
                continue;
            }
            AttemptDisposition::Reply { code, text } => {
                // Any SMTP reply proves the host is up.
                events.push(HostEvent::Reachable { host });
                if (400..500).contains(&code) {
                    // Typed 4xx: requeue with backoff. Greylisting asked
                    // *this client* to come back later; hammering the
                    // rest of the ladder would multiply load, so the
                    // attempt ends here.
                    return Err(DispatchError::transient(format!(
                        "tempfail {code} from {}: {text}",
                        candidate.host
                    )));
                }
                // Typed 5xx: bounce, no retry.
                return Err(DispatchError {
                    transient: false,
                    rendered: format!("rejected {code} from {}: {text}", candidate.host),
                    permanent_reply: Some((code, text)),
                    policy_refusal: None,
                });
            }
            AttemptDisposition::TlsRefused { failure } => {
                // The host answered SMTP — alive, no breaker damage —
                // but the session could not meet the TLS requirement.
                // The rung is unusable under the policy; fall through.
                events.push(HostEvent::Reachable { host });
                *policy_skips += 1;
                obsv::counter!("delivery.tls_refused_total");
                if refusal.is_none() {
                    refusal = Some(failure);
                }
                continue;
            }
        }
    }
    if let Some(failure) = refusal {
        // At least one rung was alive but policy-refused: exhaustion of
        // this schedule is a policy bounce, not a network one.
        return Err(DispatchError {
            transient: true,
            rendered: format!(
                "TLS requirement unmet on every usable rung ({})",
                failure.label()
            ),
            permanent_reply: None,
            policy_refusal: Some(failure),
        });
    }
    // Every rung unreachable or skipped: transient — the breaker may
    // re-admit a recovered host on a later attempt.
    Err(DispatchError::transient(format!(
        "all {} MX hosts failed ({hard_failures} unreachable, {skipped} breaker-skipped)",
        ladder.len()
    )))
}

/// The fast-path transport: routes and attempts against the in-process
/// [`simnet::World`], mirroring `World::probe_mx`'s fault/attack
/// semantics plus RCPT-level rejection — so the wire deployment (real
/// SMTP over localhost, assembled in the root-package tests) produces
/// the same ledger for fault-free scenarios.
pub struct FastTransport<'a> {
    world: &'a simnet::World,
}

impl<'a> FastTransport<'a> {
    /// A transport over `world`.
    pub fn new(world: &'a simnet::World) -> FastTransport<'a> {
        FastTransport { world }
    }
}

impl MxTransport for FastTransport<'_> {
    fn route(
        &self,
        domain: &DomainName,
        now: SimInstant,
    ) -> Result<Vec<(u16, DomainName)>, String> {
        self.world
            .mx_records_with_pref(domain, now)
            .map_err(|e| format!("{e:?}"))
    }

    fn attempt(
        &self,
        mx_host: &DomainName,
        message: &QueuedMessage,
        now: SimInstant,
        tls: &TlsRequirement,
    ) -> AttemptDisposition {
        use simnet::{FaultStage, Reachability};
        let Ok(lookup) = self.world.resolve(mx_host, dns::RecordType::A, now) else {
            return AttemptDisposition::HostUnreachable;
        };
        let Some(ip) = lookup.a_addrs().first().copied() else {
            return AttemptDisposition::HostUnreachable;
        };
        let Some(endpoint) = self.world.mx_endpoint(ip) else {
            return AttemptDisposition::HostUnreachable;
        };
        if endpoint.reachability != Reachability::Up {
            return AttemptDisposition::HostUnreachable;
        }
        let fault_scope = format!("mx/{ip}");
        if endpoint
            .faults
            .sample(FaultStage::Tcp, &fault_scope, now)
            .is_some()
        {
            return AttemptDisposition::HostUnreachable;
        }
        if endpoint
            .faults
            .sample(FaultStage::Smtp, &fault_scope, now)
            .is_some()
        {
            return AttemptDisposition::Reply {
                code: 450,
                text: "4.7.0 greylisted, try again later".to_string(),
            };
        }
        if let Some(rcpt_domain) = message.recipient_domain() {
            if endpoint.reject_rcpt_domains.contains(&rcpt_domain) {
                return AttemptDisposition::Reply {
                    code: 550,
                    text: format!("5.7.1 relaying denied for {rcpt_domain}"),
                };
            }
        }
        // STARTTLS availability and the presented chain mirror
        // `World::probe_mx`: a strip attacker removes the capability, a
        // cert-substituting MITM terminates TLS with its own chain.
        let stripped = self
            .world
            .attack_active(simnet::AttackKind::StartTlsStrip, mx_host, now);
        let starttls = endpoint.starttls
            && !endpoint.hide_starttls
            && !endpoint.helo_only
            && !stripped
            && !endpoint.chain.is_empty();
        let chain = if starttls
            && self
                .world
                .attack_active(simnet::AttackKind::MxCertSubstitute, mx_host, now)
        {
            self.world.pki.issue(
                &simnet::CertKind::UntrustedCa,
                std::slice::from_ref(mx_host),
                now,
            )
        } else {
            endpoint.chain.clone()
        };
        let roots = self.world.pki.trust_store();
        let evidence = match tls {
            TlsRequirement::Opportunistic => {
                if starttls {
                    TlsEvidence::Encrypted
                } else {
                    TlsEvidence::Plaintext
                }
            }
            TlsRequirement::OpportunisticAudit => {
                if !starttls {
                    TlsEvidence::Plaintext
                } else {
                    match pkix::validate_chain(&chain, mx_host, now, roots) {
                        Ok(()) => TlsEvidence::Validated,
                        Err(e) => TlsEvidence::CertFailed(e),
                    }
                }
            }
            TlsRequirement::RequirePkix => {
                if !starttls {
                    return AttemptDisposition::TlsRefused {
                        failure: StsFailure::StartTlsUnavailable,
                    };
                }
                match pkix::validate_chain(&chain, mx_host, now, roots) {
                    Ok(()) => TlsEvidence::Validated,
                    Err(e) => {
                        return AttemptDisposition::TlsRefused {
                            failure: StsFailure::CertInvalid(e),
                        }
                    }
                }
            }
            TlsRequirement::RequireDane(tlsa) => {
                if !starttls {
                    return AttemptDisposition::TlsRefused {
                        failure: StsFailure::StartTlsUnavailable,
                    };
                }
                // The transport only hands out TLSA records from signed
                // zones, so the DNSSEC gate passed upstream.
                match danelite::validate_dane(tlsa, &chain, true, mx_host, now, roots) {
                    Ok(_) => TlsEvidence::Validated,
                    Err(e) => {
                        return AttemptDisposition::TlsRefused {
                            failure: StsFailure::DaneInvalid {
                                reason: e.to_string(),
                            },
                        }
                    }
                }
            }
        };
        AttemptDisposition::Delivered { tls: evidence }
    }

    fn sts_record(&self, domain: &DomainName, now: SimInstant) -> Option<Vec<String>> {
        self.world.mta_sts_txts(domain, now).ok()
    }

    fn fetch_sts_policy(&self, domain: &DomainName, now: SimInstant) -> Result<String, String> {
        self.world
            .fetch_policy(domain, now)
            .result
            .map(|(_, raw)| raw)
            .map_err(|e| e.to_string())
    }

    fn tlsa_records(&self, mx_host: &DomainName, now: SimInstant) -> Option<Vec<dns::TlsaRecord>> {
        let name = danelite::tlsa_name(mx_host);
        if !self.world.is_signed(&name) {
            return None;
        }
        let lookup = self.world.resolve(&name, dns::RecordType::Tlsa, now).ok()?;
        let records: Vec<dns::TlsaRecord> = lookup
            .records
            .iter()
            .filter_map(|r| match &r.data {
                dns::RecordData::Tlsa(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        if records.is_empty() {
            None
        } else {
            Some(records)
        }
    }

    fn attack_touched(&self, name: &DomainName, now: SimInstant) -> bool {
        !self.world.attacks_active(name, now).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_recipient_bounces_unroutable() {
        struct NoTransport;
        impl MxTransport for NoTransport {
            fn route(
                &self,
                _domain: &DomainName,
                _now: SimInstant,
            ) -> Result<Vec<(u16, DomainName)>, String> {
                panic!("unroutable mail must never route")
            }
            fn attempt(
                &self,
                _mx: &DomainName,
                _m: &QueuedMessage,
                _now: SimInstant,
                _tls: &TlsRequirement,
            ) -> AttemptDisposition {
                panic!("unroutable mail must never attempt")
            }
        }
        let queue = DeliveryQueue::default();
        let out = queue.run(
            &NoTransport,
            &[QueuedMessage::new("m0", "a@s.test", "not-an-address", "hi")],
        );
        assert_eq!(out.stats.bounced_unroutable, 1);
        assert_eq!(out.records[0].attempts, 0);
        assert!(!out.suspended);
    }

    #[test]
    fn checkpoint_corruption_starts_fresh() {
        let good = QueueCheckpoint {
            next_index: 5,
            ..QueueCheckpoint::default()
        };
        let dir = std::env::temp_dir().join(format!("mtasts-dlvq-{}-corrupt", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("queue.ckpt");
        good.store(&path).unwrap();
        assert_eq!(QueueCheckpoint::load(&path).next_index, 5);
        let stored = std::fs::read_to_string(&path).unwrap();
        for cut in 0..stored.len() {
            std::fs::write(&path, &stored[..cut]).unwrap();
            assert_eq!(QueueCheckpoint::load(&path).next_index, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
