//! The outbound delivery pipeline: a deterministic message queue with
//! per-recipient envelope status, multi-MX fail-over, a typed
//! retry-vs-bounce taxonomy, and per-host circuit breaking.
//!
//! The paper's sender-side story (§2.4, §6) is about what a *sending*
//! MTA does when the recipient's infrastructure misbehaves. The
//! per-message engine in [`crate::delivery`] answers the policy
//! question (what does MTA-STS buy?); this module answers the
//! operational one: **when an MX is down, degraded, flapping, or
//! greylisting, does the mail still flow — and at what retry cost?**
//!
//! Shape of the machine:
//!
//! - every submitted recipient becomes one [`QueuedMessage`] with its
//!   own ledger row — per-recipient envelope status, never a
//!   whole-message blur;
//! - each delivery attempt walks the RFC 5321 fail-over ladder from
//!   [`crate::mx_select::mx_ladder`]: priority tiers in order, a seeded
//!   weight shuffle within equal-preference sets, connection-level
//!   failures falling through to the next rung;
//! - SMTP replies are classified *by type*: 4xx requeues with the
//!   [`RetryPolicy`]'s backoff, 5xx bounces immediately, and
//!   connection-level failures count against the per-host
//!   [`BreakerBoard`] so a dead MX is skipped for a cooldown window
//!   instead of eating a timeout per message;
//! - the queue runs in **waves** of a fixed size: within a wave every
//!   message sees the same immutable breaker snapshot and is processed
//!   by [`netbase::map_sharded`] (pure in `(seq, message)`), and
//!   between waves the per-host events fold into the board in
//!   canonical message order. Output is therefore byte-identical for
//!   any `SCAN_THREADS`, and a killed run resumes from its checkpoint
//!   to the same ledger.

use crate::breaker::{Admission, BreakerBoard, BreakerConfig, HostEvent};
use crate::mx_select::{implicit_mx, mx_ladder, MxCandidate};
use netbase::AttemptEvent;
use netbase::{map_sharded, DetRng, DomainName, Duration, RetryPolicy, RetryVerdict, SimInstant};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// One per-recipient envelope in the queue.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedMessage {
    /// Queue-unique message id (caller-assigned; appears in the ledger).
    pub id: String,
    /// Envelope sender (MAIL FROM).
    pub mail_from: String,
    /// The single envelope recipient this queue entry tracks (RCPT TO).
    /// Multi-recipient submissions fan out into one entry per recipient
    /// so every recipient gets its own status row.
    pub rcpt_to: String,
    /// Message body.
    pub body: String,
}

impl QueuedMessage {
    /// A one-recipient message.
    pub fn new(id: &str, from: &str, to: &str, body: &str) -> QueuedMessage {
        QueuedMessage {
            id: id.to_string(),
            mail_from: from.to_string(),
            rcpt_to: to.to_string(),
            body: body.to_string(),
        }
    }

    /// The recipient's domain (routing key). `None` for a malformed
    /// address, which bounces without touching the network.
    pub fn recipient_domain(&self) -> Option<DomainName> {
        self.rcpt_to
            .rsplit_once('@')
            .and_then(|(_, d)| d.parse().ok())
    }
}

/// What one connection attempt to one MX host produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptDisposition {
    /// The message was accepted.
    Delivered {
        /// Whether the session was upgraded with STARTTLS.
        tls_used: bool,
    },
    /// Connection-level failure: refused, timeout, reset mid-dialogue.
    /// Counts against the host's circuit breaker; the ladder falls
    /// through to the next rung.
    HostUnreachable,
    /// The server answered with a non-positive SMTP reply. The host is
    /// *alive* (no breaker damage); the code's class decides requeue
    /// (4xx) versus bounce (5xx).
    Reply {
        /// The reply code.
        code: u16,
        /// First reply line text.
        text: String,
    },
}

/// How the queue reaches recipient infrastructure. The fast path walks
/// the in-process [`simnet::World`]; the wire path (assembled in the
/// root-package tests) speaks real SMTP over localhost TCP. Both
/// implementations must be pure functions of `(domain/host, message,
/// now)` for the determinism contract to hold.
pub trait MxTransport: Sync {
    /// The recipient domain's MX RRset as `(preference, host)` pairs.
    /// `Err` is treated as a transient routing failure (requeue);
    /// `Ok(vec![])` falls back to the implicit MX.
    fn route(&self, domain: &DomainName, now: SimInstant)
        -> Result<Vec<(u16, DomainName)>, String>;

    /// One delivery attempt to one MX host.
    fn attempt(
        &self,
        mx_host: &DomainName,
        message: &QueuedMessage,
        now: SimInstant,
    ) -> AttemptDisposition;
}

/// Why a message bounced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BounceReason {
    /// A 5xx reply: the recipient infrastructure permanently refused.
    Permanent {
        /// The 5xx code.
        code: u16,
        /// Reply text.
        text: String,
    },
    /// Transient failures (4xx, unreachable hosts, routing errors)
    /// persisted past the retry policy's attempt cap or deadline.
    RetriesExhausted {
        /// The final attempt's failure, rendered.
        last_error: String,
    },
    /// The recipient address had no parseable domain; never attempted.
    Unroutable,
}

/// Terminal per-recipient envelope status.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageStatus {
    /// Accepted by an MX.
    Delivered {
        /// The host that accepted.
        mx_host: String,
        /// Whether STARTTLS protected the session.
        tls_used: bool,
    },
    /// Returned to sender.
    Bounced {
        /// The typed reason.
        reason: BounceReason,
    },
}

/// One ledger row: everything the queue observed for one recipient.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageRecord {
    /// Global submission index (stable across kill/resume).
    pub seq: u64,
    /// Caller-assigned message id.
    pub id: String,
    /// The recipient.
    pub rcpt_to: String,
    /// Terminal status.
    pub status: MessageStatus,
    /// Delivery attempts made (1..=retry cap).
    pub attempts: u32,
    /// Ladder rungs fallen through after connection-level failures.
    pub failovers: u32,
    /// Rungs skipped because the host's breaker was open.
    pub breaker_skips: u32,
    /// When the first attempt started (sim clock, unix seconds).
    pub admitted_unix_secs: i64,
    /// When the terminal status was reached (sim clock, unix seconds).
    pub finished_unix_secs: i64,
}

impl MessageRecord {
    /// Whether the message reached an MX.
    pub fn delivered(&self) -> bool {
        matches!(self.status, MessageStatus::Delivered { .. })
    }
}

/// Queue-wide accounting, deterministic across thread counts and
/// kill/resume cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Messages processed to a terminal status.
    pub processed: u64,
    /// Delivered.
    pub delivered: u64,
    /// Bounced on a 5xx.
    pub bounced_permanent: u64,
    /// Bounced after exhausting retries.
    pub bounced_exhausted: u64,
    /// Bounced unroutable.
    pub bounced_unroutable: u64,
    /// Total delivery attempts.
    pub attempts: u64,
    /// Requeues (attempts beyond each message's first).
    pub requeues: u64,
    /// Connection-level fail-overs to a lower rung.
    pub failovers: u64,
    /// Ladder rungs skipped by open breakers.
    pub breaker_skips: u64,
}

impl QueueStats {
    fn absorb(&mut self, rec: &MessageRecord) {
        self.processed += 1;
        match &rec.status {
            MessageStatus::Delivered { .. } => self.delivered += 1,
            MessageStatus::Bounced { reason } => match reason {
                BounceReason::Permanent { .. } => self.bounced_permanent += 1,
                BounceReason::RetriesExhausted { .. } => self.bounced_exhausted += 1,
                BounceReason::Unroutable => self.bounced_unroutable += 1,
            },
        }
        self.attempts += u64::from(rec.attempts);
        self.requeues += u64::from(rec.attempts.saturating_sub(1));
        self.failovers += u64::from(rec.failovers);
        self.breaker_skips += u64::from(rec.breaker_skips);
    }
}

/// Queue configuration.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Root seed for the MX shuffle and retry jitter.
    pub seed: u64,
    /// Worker threads (0 = read `SCAN_THREADS`, default 1). The ledger
    /// is byte-identical for every value.
    pub threads: usize,
    /// Messages per wave. Wave boundaries sit at fixed multiples of
    /// this, so checkpoint/resume composes with determinism. Must be
    /// at least 1.
    pub wave_size: usize,
    /// The sim instant message 0 is admitted at.
    pub epoch: SimInstant,
    /// Seconds between consecutive admissions: message `seq` starts at
    /// `epoch + seq * admission_spacing_secs`. Decorrelates per-message
    /// fault draws (faults are keyed on `(scope, instant)`).
    pub admission_spacing_secs: i64,
    /// The retry/backoff discipline (4xx and unreachable-ladder
    /// failures requeue under it).
    pub retry: RetryPolicy,
    /// Per-host circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Where to persist the queue checkpoint; `None` disables.
    pub checkpoint_path: Option<PathBuf>,
    /// Stop (with a checkpoint) at the first wave boundary after this
    /// many messages processed in this invocation — the kill hook the
    /// resume tests use.
    pub message_budget: Option<usize>,
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig {
            seed: 42,
            threads: 0,
            wave_size: 32,
            epoch: SimInstant::from_unix_secs(1_717_200_000),
            admission_spacing_secs: 7,
            retry: RetryPolicy {
                max_attempts: 4,
                initial_backoff: Duration::seconds(60),
                multiplier: 4,
                max_backoff: Duration::seconds(3600),
                jitter: 0.25,
                attempt_timeout: Duration::seconds(30),
                total_deadline: Duration::seconds(48 * 3600),
            },
            breaker: BreakerConfig::default(),
            checkpoint_path: None,
            message_budget: None,
        }
    }
}

impl QueueConfig {
    /// The effective worker-thread count (mirrors the scan engine's
    /// `SCAN_THREADS` contract without a scanner dependency).
    fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        std::env::var("SCAN_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1)
    }
}

/// The outcome of one queue invocation.
#[derive(Debug, Clone)]
pub struct QueueOutcome {
    /// Per-recipient ledger, in submission order (complete prefix).
    pub records: Vec<MessageRecord>,
    /// Aggregate accounting over `records`.
    pub stats: QueueStats,
    /// Final breaker state.
    pub board: BreakerBoard,
    /// `true` when the message budget suspended the run mid-queue; the
    /// checkpoint holds the state to resume from.
    pub suspended: bool,
}

/// FNV-1a 64-bit over the serialized ledger — the byte-identity witness
/// the determinism tests and the bench compare.
pub fn ledger_digest(records: &[MessageRecord]) -> String {
    let payload = serde_json::to_string(records).expect("ledger serializes");
    format!("{:016x}", fnv64(payload.as_bytes()))
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Magic tag of the queue checkpoint header line.
const QUEUE_CKPT_MAGIC: &str = "MTASTS-DLVQ1";

/// The on-disk queue checkpoint: the completed ledger prefix plus the
/// folded breaker board at the wave boundary it was taken on. Same
/// integrity discipline as the scan supervisor's checkpoint: a
/// `MTASTS-DLVQ1 <len> <fnv64>` header, and any corruption starts the
/// run fresh instead of resuming wrong.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct QueueCheckpoint {
    records: Vec<MessageRecord>,
    board: BreakerBoard,
    next_index: usize,
    stats: QueueStats,
}

impl QueueCheckpoint {
    fn load(path: &PathBuf) -> QueueCheckpoint {
        let Ok(text) = std::fs::read_to_string(path) else {
            return QueueCheckpoint::default();
        };
        QueueCheckpoint::parse(&text).unwrap_or_default()
    }

    fn parse(text: &str) -> Option<QueueCheckpoint> {
        let (header, payload) = text.split_once('\n')?;
        let mut fields = header.split(' ');
        if fields.next() != Some(QUEUE_CKPT_MAGIC) {
            return None;
        }
        let len: usize = fields.next()?.parse().ok()?;
        let hash: u64 = u64::from_str_radix(fields.next()?, 16).ok()?;
        if fields.next().is_some() || payload.len() != len || fnv64(payload.as_bytes()) != hash {
            return None;
        }
        serde_json::from_str(payload).ok()
    }

    /// Atomic store: unique temp sibling, then rename (see the scan
    /// supervisor for the rationale). I/O failure is returned, not
    /// panicked, so the queue can keep draining checkpoint-free.
    fn store(&self, path: &PathBuf) -> std::io::Result<()> {
        static WRITER_SEQ: AtomicU64 = AtomicU64::new(0);
        let payload = serde_json::to_string(self).expect("checkpoint serializes");
        let text = format!(
            "{QUEUE_CKPT_MAGIC} {} {:016x}\n{payload}",
            payload.len(),
            fnv64(payload.as_bytes())
        );
        let seq = WRITER_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
        std::fs::write(&tmp, &text)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(())
    }
}

/// A dispatch-layer failure, classified for the retry policy.
#[derive(Debug, Clone)]
struct DispatchError {
    transient: bool,
    rendered: String,
    /// Set when the failure was a concrete 5xx reply.
    permanent_reply: Option<(u16, String)>,
}

impl DispatchError {
    fn transient(rendered: String) -> DispatchError {
        DispatchError {
            transient: true,
            rendered,
            permanent_reply: None,
        }
    }
}

/// The deterministic outbound queue.
#[derive(Debug, Clone, Default)]
pub struct DeliveryQueue {
    /// Queue tuning.
    pub cfg: QueueConfig,
}

impl DeliveryQueue {
    /// A queue with the given configuration.
    pub fn new(cfg: QueueConfig) -> DeliveryQueue {
        DeliveryQueue { cfg }
    }

    /// Drains `messages` (or resumes draining them from the checkpoint)
    /// through `transport`.
    ///
    /// Determinism contract: for a fixed `(cfg.seed, messages,
    /// transport behaviour)` the returned ledger is byte-identical for
    /// every thread count and across any kill/resume split — waves sit
    /// at fixed multiples of `wave_size`, every message in a wave sees
    /// the same breaker snapshot, and per-host events fold between
    /// waves in submission order.
    pub fn run<T: MxTransport>(&self, transport: &T, messages: &[QueuedMessage]) -> QueueOutcome {
        assert!(self.cfg.wave_size >= 1, "wave_size must be at least 1");
        let threads = self.cfg.effective_threads();
        let rng = DetRng::new(self.cfg.seed);
        let mut checkpoint_path = self.cfg.checkpoint_path.clone();
        let mut ckpt = match &checkpoint_path {
            Some(path) => QueueCheckpoint::load(path),
            None => QueueCheckpoint::default(),
        };
        // A checkpoint from a different (longer) queue run would resume
        // nonsense; treat it as absent.
        if ckpt.next_index > messages.len() {
            ckpt = QueueCheckpoint::default();
        }
        let mut index = ckpt.next_index;
        let mut processed_here = 0usize;

        while index < messages.len() {
            if let Some(budget) = self.cfg.message_budget {
                if processed_here >= budget {
                    ckpt.next_index = index;
                    let _ = store_checkpoint(&ckpt, &mut checkpoint_path);
                    obsv::event!("delivery.queue_suspend");
                    return QueueOutcome {
                        records: ckpt.records,
                        stats: ckpt.stats,
                        board: ckpt.board,
                        suspended: true,
                    };
                }
            }

            // Wave boundaries sit at absolute multiples of wave_size so
            // a killed-and-resumed run re-forms exactly the waves an
            // uninterrupted one had (the breaker fold points — and with
            // them the ladder decisions — depend on wave composition).
            let wave_end =
                (((index / self.cfg.wave_size) + 1) * self.cfg.wave_size).min(messages.len());
            let batch = &messages[index..wave_end];
            let snapshot = ckpt.board.clone();
            let mut wave_span = obsv::span!("delivery.wave");
            let results = map_sharded(threads, batch, |j, msg| {
                process_message(
                    &self.cfg,
                    &rng,
                    &snapshot,
                    transport,
                    (index + j) as u64,
                    msg,
                )
            });
            wave_span.set_sim_secs(0);
            for (record, events) in results {
                for event in &events {
                    ckpt.board.apply(&self.cfg.breaker, event);
                }
                ckpt.stats.absorb(&record);
                ckpt.records.push(record);
            }
            processed_here += batch.len();
            index = wave_end;
            ckpt.next_index = index;
            if index < messages.len() {
                let _ = store_checkpoint(&ckpt, &mut checkpoint_path);
            }
        }

        let _ = store_checkpoint(&ckpt, &mut checkpoint_path);
        QueueOutcome {
            records: ckpt.records,
            stats: ckpt.stats,
            board: ckpt.board,
            suspended: false,
        }
    }
}

/// Stores the checkpoint when a path is set; the first I/O failure
/// disables checkpointing for the rest of the invocation (the queue
/// keeps draining — same degradation discipline as the supervisor).
fn store_checkpoint(ckpt: &QueueCheckpoint, path_slot: &mut Option<PathBuf>) -> bool {
    let Some(path) = path_slot else { return true };
    if ckpt.store(path).is_err() {
        obsv::event!("delivery.checkpoint_failure");
        *path_slot = None;
        false
    } else {
        obsv::event!("delivery.checkpoint_write");
        true
    }
}

/// Processes one message to its terminal status against an immutable
/// breaker snapshot. Pure in `(cfg, seed, snapshot, transport, seq,
/// message)` — the determinism obligation `map_sharded` needs.
fn process_message<T: MxTransport>(
    cfg: &QueueConfig,
    rng: &DetRng,
    snapshot: &BreakerBoard,
    transport: &T,
    seq: u64,
    message: &QueuedMessage,
) -> (MessageRecord, Vec<HostEvent>) {
    obsv::counter!("delivery.enqueued");
    let admitted = SimInstant::from_unix_secs(
        cfg.epoch
            .unix_secs()
            .saturating_add(cfg.admission_spacing_secs.saturating_mul(seq as i64)),
    );

    let Some(domain) = message.recipient_domain() else {
        obsv::counter!("delivery.bounced");
        let record = MessageRecord {
            seq,
            id: message.id.clone(),
            rcpt_to: message.rcpt_to.clone(),
            status: MessageStatus::Bounced {
                reason: BounceReason::Unroutable,
            },
            attempts: 0,
            failovers: 0,
            breaker_skips: 0,
            admitted_unix_secs: admitted.unix_secs(),
            finished_unix_secs: admitted.unix_secs(),
        };
        return (record, Vec::new());
    };

    let mut events: Vec<HostEvent> = Vec::new();
    let mut failovers = 0u32;
    let mut breaker_skips = 0u32;

    let label = format!("delivery/{seq}/{domain}");
    let outcome = cfg.retry.run_observed(
        rng,
        &label,
        admitted,
        |e: &DispatchError| e.transient,
        |now, _attempt| {
            attempt_ladder(
                rng,
                snapshot,
                transport,
                &domain,
                message,
                now,
                &mut events,
                &mut failovers,
                &mut breaker_skips,
            )
        },
        |event| {
            if let AttemptEvent::Failure {
                transient: true,
                backoff: Some(_),
                ..
            } = event
            {
                obsv::counter!("delivery.requeue_total");
            }
        },
    );

    let status = match outcome.result {
        Ok((host, tls_used)) => {
            obsv::counter!("delivery.delivered");
            MessageStatus::Delivered {
                mx_host: host,
                tls_used,
            }
        }
        Err(err) => {
            obsv::counter!("delivery.bounced");
            let reason = match (outcome.verdict, err.permanent_reply) {
                (RetryVerdict::Persistent, Some((code, text))) => {
                    BounceReason::Permanent { code, text }
                }
                _ => BounceReason::RetriesExhausted {
                    last_error: err.rendered,
                },
            };
            MessageStatus::Bounced { reason }
        }
    };
    obsv::histogram!("delivery.attempts", u64::from(outcome.attempts));

    let record = MessageRecord {
        seq,
        id: message.id.clone(),
        rcpt_to: message.rcpt_to.clone(),
        status,
        attempts: outcome.attempts,
        failovers,
        breaker_skips,
        admitted_unix_secs: admitted.unix_secs(),
        finished_unix_secs: outcome.finished_at.unix_secs(),
    };
    (record, events)
}

/// One walk down the fail-over ladder (= one retry-policy attempt).
#[allow(clippy::too_many_arguments)]
fn attempt_ladder<T: MxTransport>(
    rng: &DetRng,
    snapshot: &BreakerBoard,
    transport: &T,
    domain: &DomainName,
    message: &QueuedMessage,
    now: SimInstant,
    events: &mut Vec<HostEvent>,
    failovers: &mut u32,
    breaker_skips: &mut u32,
) -> Result<(String, bool), DispatchError> {
    let records = transport
        .route(domain, now)
        .map_err(|e| DispatchError::transient(format!("MX lookup failed: {e}")))?;
    let ladder: Vec<MxCandidate> = if records.is_empty() {
        implicit_mx(domain)
    } else {
        mx_ladder(rng, domain, &records)
    };

    let mut hard_failures = 0u32;
    let mut skipped = 0u32;
    for (rung, candidate) in ladder.iter().enumerate() {
        let host = candidate.host.to_string();
        match snapshot.admission(&host, now) {
            Admission::Skip => {
                skipped += 1;
                *breaker_skips += 1;
                obsv::counter!("delivery.breaker_skip_total");
                continue;
            }
            Admission::Allowed | Admission::Probe => {}
        }
        match transport.attempt(&candidate.host, message, now) {
            AttemptDisposition::Delivered { tls_used } => {
                events.push(HostEvent::Reachable { host: host.clone() });
                if rung > 0 {
                    obsv::counter!("delivery.failover_delivered");
                }
                return Ok((host, tls_used));
            }
            AttemptDisposition::HostUnreachable => {
                events.push(HostEvent::HardFailure {
                    host,
                    at_unix_secs: now.unix_secs(),
                });
                hard_failures += 1;
                *failovers += 1;
                obsv::counter!("delivery.failover_total");
                continue;
            }
            AttemptDisposition::Reply { code, text } => {
                // Any SMTP reply proves the host is up.
                events.push(HostEvent::Reachable { host });
                if (400..500).contains(&code) {
                    // Typed 4xx: requeue with backoff. Greylisting asked
                    // *this client* to come back later; hammering the
                    // rest of the ladder would multiply load, so the
                    // attempt ends here.
                    return Err(DispatchError::transient(format!(
                        "tempfail {code} from {}: {text}",
                        candidate.host
                    )));
                }
                // Typed 5xx: bounce, no retry.
                return Err(DispatchError {
                    transient: false,
                    rendered: format!("rejected {code} from {}: {text}", candidate.host),
                    permanent_reply: Some((code, text)),
                });
            }
        }
    }
    // Every rung unreachable or skipped: transient — the breaker may
    // re-admit a recovered host on a later attempt.
    Err(DispatchError::transient(format!(
        "all {} MX hosts failed ({hard_failures} unreachable, {skipped} breaker-skipped)",
        ladder.len()
    )))
}

/// The fast-path transport: routes and attempts against the in-process
/// [`simnet::World`], mirroring `World::probe_mx`'s fault/attack
/// semantics plus RCPT-level rejection — so the wire deployment (real
/// SMTP over localhost, assembled in the root-package tests) produces
/// the same ledger for fault-free scenarios.
pub struct FastTransport<'a> {
    world: &'a simnet::World,
}

impl<'a> FastTransport<'a> {
    /// A transport over `world`.
    pub fn new(world: &'a simnet::World) -> FastTransport<'a> {
        FastTransport { world }
    }
}

impl MxTransport for FastTransport<'_> {
    fn route(
        &self,
        domain: &DomainName,
        now: SimInstant,
    ) -> Result<Vec<(u16, DomainName)>, String> {
        self.world
            .mx_records_with_pref(domain, now)
            .map_err(|e| format!("{e:?}"))
    }

    fn attempt(
        &self,
        mx_host: &DomainName,
        message: &QueuedMessage,
        now: SimInstant,
    ) -> AttemptDisposition {
        use simnet::{FaultStage, Reachability};
        let Ok(lookup) = self.world.resolve(mx_host, dns::RecordType::A, now) else {
            return AttemptDisposition::HostUnreachable;
        };
        let Some(ip) = lookup.a_addrs().first().copied() else {
            return AttemptDisposition::HostUnreachable;
        };
        let Some(endpoint) = self.world.mx_endpoint(ip) else {
            return AttemptDisposition::HostUnreachable;
        };
        if endpoint.reachability != Reachability::Up {
            return AttemptDisposition::HostUnreachable;
        }
        let fault_scope = format!("mx/{ip}");
        if endpoint
            .faults
            .sample(FaultStage::Tcp, &fault_scope, now)
            .is_some()
        {
            return AttemptDisposition::HostUnreachable;
        }
        if endpoint
            .faults
            .sample(FaultStage::Smtp, &fault_scope, now)
            .is_some()
        {
            return AttemptDisposition::Reply {
                code: 450,
                text: "4.7.0 greylisted, try again later".to_string(),
            };
        }
        if let Some(rcpt_domain) = message.recipient_domain() {
            if endpoint.reject_rcpt_domains.contains(&rcpt_domain) {
                return AttemptDisposition::Reply {
                    code: 550,
                    text: format!("5.7.1 relaying denied for {rcpt_domain}"),
                };
            }
        }
        let stripped = self
            .world
            .attack_active(simnet::AttackKind::StartTlsStrip, mx_host, now);
        let tls_used = endpoint.starttls
            && !endpoint.hide_starttls
            && !endpoint.helo_only
            && !stripped
            && !endpoint.chain.is_empty();
        AttemptDisposition::Delivered { tls_used }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malformed_recipient_bounces_unroutable() {
        struct NoTransport;
        impl MxTransport for NoTransport {
            fn route(
                &self,
                _domain: &DomainName,
                _now: SimInstant,
            ) -> Result<Vec<(u16, DomainName)>, String> {
                panic!("unroutable mail must never route")
            }
            fn attempt(
                &self,
                _mx: &DomainName,
                _m: &QueuedMessage,
                _now: SimInstant,
            ) -> AttemptDisposition {
                panic!("unroutable mail must never attempt")
            }
        }
        let queue = DeliveryQueue::default();
        let out = queue.run(
            &NoTransport,
            &[QueuedMessage::new("m0", "a@s.test", "not-an-address", "hi")],
        );
        assert_eq!(out.stats.bounced_unroutable, 1);
        assert_eq!(out.records[0].attempts, 0);
        assert!(!out.suspended);
    }

    #[test]
    fn checkpoint_corruption_starts_fresh() {
        let good = QueueCheckpoint {
            next_index: 5,
            ..QueueCheckpoint::default()
        };
        let dir = std::env::temp_dir().join(format!("mtasts-dlvq-{}-corrupt", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("queue.ckpt");
        good.store(&path).unwrap();
        assert_eq!(QueueCheckpoint::load(&path).next_index, 5);
        let stored = std::fs::read_to_string(&path).unwrap();
        for cut in 0..stored.len() {
            std::fs::write(&path, &stored[..cut]).unwrap();
            assert_eq!(QueueCheckpoint::load(&path).next_index, 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
