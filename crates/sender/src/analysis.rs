//! §6.2's statistics over the platform's records.

use crate::platform::{TestCase, TestRecord};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// The sender-side statistics the paper reports.
#[derive(Debug, Clone, Serialize)]
pub struct SenderStats {
    /// Unique sender domains observed.
    pub senders: u64,
    /// Senders using TLS on at least one delivery.
    pub tls_senders: u64,
    /// Senders performing opportunistic TLS: TLS-capable without the
    /// blanket PKIX requirement (the paper's 2,232 = 93.2%; validators
    /// are still opportunistic toward domains without policies).
    pub opportunistic: u64,
    /// Senders that never deliver without a PKIX-valid certificate.
    pub pkix_always: u64,
    /// Senders observed validating MTA-STS (refused the broken-cert
    /// MTA-STS receiver while TLS-capable).
    pub mtasts_validators: u64,
    /// Senders observed validating DANE (refused the conflict receiver or
    /// validated the DANE-only one).
    pub dane_validators: u64,
    /// Senders validating both.
    pub both_validators: u64,
    /// Both-validators that delivered to the conflict receiver — the
    /// MTA-STS-over-DANE preference bug.
    pub prefer_mtasts: u64,
    /// EHLO interactions per operator.
    pub operator_interactions: BTreeMap<String, u64>,
}

impl SenderStats {
    /// Share of senders validating MTA-STS (paper: 19.6%).
    pub fn mtasts_share(&self) -> f64 {
        self.mtasts_validators as f64 / self.senders.max(1) as f64
    }

    /// Share validating DANE (paper: 29.8%).
    pub fn dane_share(&self) -> f64 {
        self.dane_validators as f64 / self.senders.max(1) as f64
    }

    /// Top-10-operator share of interactions (paper: 60.7%). With the
    /// synthetic operator buckets, this is outlook + google + top10-other.
    pub fn top10_share(&self) -> f64 {
        let total: u64 = self.operator_interactions.values().sum();
        let top: u64 = ["outlook.com", "google.com", "top10-other"]
            .iter()
            .filter_map(|k| self.operator_interactions.get(*k).copied())
            .sum();
        top as f64 / total.max(1) as f64
    }
}

/// Infers per-sender behaviour from its recorded tests (the paper's
/// "most recent test per sender" — here each sender has exactly one run
/// per case).
pub fn analyze(records: &[TestRecord]) -> SenderStats {
    #[derive(Default)]
    struct PerSender {
        tls_any: bool,
        delivered_badcert: bool,
        tls_on_badcert: bool,
        refused_badcert: bool,
        validated_dane_only: bool,
        refused_conflict: bool,
        delivered_conflict: bool,
        refused_plain: bool,
        refused_dane_only: bool,
    }
    let mut per: HashMap<String, PerSender> = HashMap::new();
    let mut operator_interactions: BTreeMap<String, u64> = BTreeMap::new();
    for r in records {
        let entry = per.entry(r.sender.to_string()).or_default();
        entry.tls_any |= r.tls_used;
        match r.case {
            TestCase::MtaStsBrokenCert => {
                entry.delivered_badcert |= r.delivered;
                entry.tls_on_badcert |= r.delivered && r.tls_used;
                entry.refused_badcert |= !r.delivered;
            }
            TestCase::DaneOnly => {
                entry.validated_dane_only |= r.delivered && r.validated;
                entry.refused_dane_only |= !r.delivered;
            }
            TestCase::Conflict => {
                entry.refused_conflict |= !r.delivered;
                entry.delivered_conflict |= r.delivered;
            }
            TestCase::Plaintext => {
                entry.refused_plain |= !r.delivered;
            }
            TestCase::MtaStsValid => {}
        }
        *operator_interactions
            .entry(r.operator.to_string())
            .or_default() += 1;
    }

    let mut stats = SenderStats {
        senders: per.len() as u64,
        tls_senders: 0,
        opportunistic: 0,
        pkix_always: 0,
        mtasts_validators: 0,
        dane_validators: 0,
        both_validators: 0,
        prefer_mtasts: 0,
        operator_interactions,
    };
    for s in per.values() {
        if s.tls_any {
            stats.tls_senders += 1;
        }
        // PKIX-always: refuses any invalid certificate even without a
        // policy (bad-cert receiver AND dane-only receiver AND plaintext).
        let pkix_always = s.refused_badcert && s.refused_dane_only && s.refused_plain;
        if pkix_always {
            stats.pkix_always += 1;
        }
        // Opportunistic TLS: any TLS use without the blanket PKIX
        // requirement (validators remain opportunistic toward unprotected
        // domains).
        if s.tls_any && !pkix_always {
            stats.opportunistic += 1;
        }
        // MTA-STS validation: refused the enforce-mode broken-cert
        // receiver, but not because of blanket PKIX (those still count in
        // the paper's 31, so exclude them here).
        let mtasts = s.refused_badcert && !pkix_always;
        // DANE validation: validated the matching self-signed TLSA
        // receiver, or refused the conflicting one.
        let dane = (s.validated_dane_only || s.refused_conflict) && !pkix_always;
        if mtasts {
            stats.mtasts_validators += 1;
        }
        if dane {
            stats.dane_validators += 1;
        }
        if mtasts && dane {
            stats.both_validators += 1;
            if s.delivered_conflict {
                stats.prefer_mtasts += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::profile::{calib, SenderPopulation};
    use netbase::SimDate;

    #[test]
    fn full_population_reproduces_section6() {
        let platform = Platform::new(SimDate::ymd(2024, 6, 1));
        let pop = SenderPopulation::generate(9, calib::SENDER_DOMAINS);
        let records = platform.run_all(&pop.profiles);
        let stats = analyze(&records);

        assert_eq!(stats.senders, calib::SENDER_DOMAINS);
        // 94.6% TLS.
        let tls_share = stats.tls_senders as f64 / stats.senders as f64;
        assert!((0.90..0.98).contains(&tls_share), "{tls_share}");
        // 19.6% MTA-STS validators.
        let sts = stats.mtasts_share();
        assert!((0.17..0.23).contains(&sts), "{sts}");
        // 29.8% DANE validators.
        let dane = stats.dane_share();
        assert!((0.26..0.33).contains(&dane), "{dane}");
        // 8.5% both.
        let both = stats.both_validators as f64 / stats.senders as f64;
        assert!((0.07..0.10).contains(&both), "{both}");
        // 2.6% prefer MTA-STS (the bug).
        let prefer = stats.prefer_mtasts as f64 / stats.senders as f64;
        assert!((0.02..0.035).contains(&prefer), "{prefer}");
        // PKIX-always ≈ 31 senders (1.3%).
        assert!(
            (25..=40).contains(&(stats.pkix_always as i64)),
            "{}",
            stats.pkix_always
        );
        // Top-10 operator concentration ≈ 60.7%.
        let top10 = stats.top10_share();
        assert!((0.55..0.66).contains(&top10), "{top10}");
        // Opportunistic majority (93.2%).
        let opp = stats.opportunistic as f64 / stats.senders as f64;
        assert!((0.88..0.96).contains(&opp), "{opp}");
    }
}
