//! MTA-STS enforcement inside the delivery queue (RFC 8461 §5).
//!
//! The PR 2 [`crate::delivery::DeliveryEngine`] evaluates the full
//! sender state machine one message at a time; this module is the piece
//! of it the *queue* needs, refactored around the queue's determinism
//! contract:
//!
//! - **Per-(domain, wave) resolution.** The policy for a recipient
//!   domain is resolved once per wave — at the admission instant of the
//!   wave's first message for that domain — through the TOFU
//!   [`PolicyCache`] with RFC 8461 §3.3 stale fallback. Workers then
//!   see an immutable [`WavePolicies`] snapshot, so resolution order
//!   (and therefore cache state) is independent of thread count.
//! - **Typed TLS requirements.** Policy mode maps to a per-attempt
//!   [`TlsRequirement`]: `enforce` ⇒ PKIX-required, `testing` ⇒
//!   opportunistic-with-accounting, `none`/no policy ⇒ plain
//!   opportunistic. Usable TLSA records override MTA-STS entirely
//!   (RFC 7672 precedence, the kumomta `enable_mta_sts` egress rule).
//! - **Evidence, not booleans.** Each delivered attempt reports
//!   [`TlsEvidence`] so `testing` mode can account soft failures for
//!   RFC 8460 TLSRPT without refusing anything.
//!
//! The cache itself rides the `MTASTS-DLVQ1` checkpoint (see
//! `pipeline.rs`), so kill/resume replays the same resolution sequence
//! a straight-through run performs.

use mtasts::{
    evaluate_record_set, parse_policy, CacheDecision, Mode, Policy, PolicyCache, RecordError,
    StsFailure,
};
use netbase::{DomainName, SimInstant};
use pkix::CertError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Queue-level enforcement knobs.
#[derive(Debug, Clone)]
pub struct EnforcementConfig {
    /// Honour DANE precedence: when usable TLSA records exist for an MX
    /// host, DANE governs that attempt and the MTA-STS policy is
    /// ignored for it (RFC 7672; kumomta's egress semantics). Disabling
    /// this makes MTA-STS authoritative even on DNSSEC-signed hosts.
    pub dane_precedence: bool,
}

impl Default for EnforcementConfig {
    fn default() -> EnforcementConfig {
        EnforcementConfig {
            dane_precedence: true,
        }
    }
}

/// What one wave's resolution concluded for a recipient domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolvedPolicy {
    /// No `_mta-sts` record and nothing cached: MTA-STS does not apply.
    NotApplicable,
    /// A record exists but is invalid — counts as not deployed
    /// (RFC 8461 §3.1); no protection applies.
    RecordInvalid(RecordError),
    /// The record was fine but no policy could be fetched and nothing
    /// fresh was cached; delivery proceeds unprotected.
    Unavailable {
        /// Human-readable fetch/parse failure.
        reason: String,
    },
    /// A policy governs the domain for this wave.
    Active {
        /// The governing policy.
        policy: Policy,
        /// Whether it came from cache rather than a fresh fetch.
        from_cache: bool,
        /// True when the fetch failed (or returned garbage) and a
        /// still-fresh cached policy took over — §3.3 stale fallback.
        stale: bool,
    },
}

impl ResolvedPolicy {
    /// The governing policy, when one applies.
    pub fn policy(&self) -> Option<&Policy> {
        match self {
            ResolvedPolicy::Active { policy, .. } => Some(policy),
            _ => None,
        }
    }
}

/// The immutable per-wave resolution snapshot workers read.
pub type WavePolicies = BTreeMap<DomainName, ResolvedPolicy>;

/// How strictly one delivery attempt must treat TLS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsRequirement {
    /// Upgrade when offered; no validation (the paper's 93.2% majority).
    Opportunistic,
    /// Upgrade when offered; validate the certificate and report the
    /// verdict, but never fail the attempt (`testing`-mode accounting).
    OpportunisticAudit,
    /// STARTTLS plus a PKIX-valid certificate, or the attempt is
    /// refused (`enforce`).
    RequirePkix,
    /// DANE governs: the presented chain must validate against these
    /// TLSA records (RFC 7672).
    RequireDane(Vec<dns::TlsaRecord>),
}

/// TLS evidence from a delivered attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TlsEvidence {
    /// The session stayed in plaintext.
    Plaintext,
    /// TLS was used; the certificate was not examined.
    Encrypted,
    /// TLS was used and the chain validated under the requirement.
    Validated,
    /// TLS was used but the chain failed audit validation
    /// (`OpportunisticAudit` only — a hard requirement refuses instead).
    CertFailed(CertError),
}

impl TlsEvidence {
    /// Whether the session was encrypted at all.
    pub fn tls_used(&self) -> bool {
        !matches!(self, TlsEvidence::Plaintext)
    }
}

/// What governed the terminal attempt of a message — rides the ledger.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StsApplication {
    /// No policy applied (no record, invalid record, fetch failure, or
    /// enforcement disabled).
    None,
    /// DANE took precedence (usable TLSA records on the attempted MX).
    Dane,
    /// An MTA-STS policy governed the attempt.
    Sts {
        /// The policy's mode.
        mode: Mode,
        /// Whether the policy came from cache.
        from_cache: bool,
        /// Whether §3.3 stale fallback supplied it.
        stale: bool,
    },
}

impl StsApplication {
    /// `Sts`/`Dane` with `Active` resolution, for ledger assertions.
    pub fn covered(&self) -> bool {
        !matches!(self, StsApplication::None)
    }
}

/// Resolves the policy for `domain` at `now` through `cache`, with the
/// §3.3 stale fallback. `record_txts` is the `_mta-sts` TXT lookup
/// (`None` = lookup failed); `fetch` performs the strict-TLS HTTPS
/// fetch and returns the raw policy body.
///
/// Mirrors the cache/fetch half of `SenderEngine::evaluate`, without
/// the MX/TLS half — the queue applies that per attempt instead.
pub fn resolve_domain(
    cache: &mut PolicyCache,
    domain: &DomainName,
    record_txts: Option<&[String]>,
    fetch: impl FnOnce() -> Result<String, String>,
    now: SimInstant,
) -> ResolvedPolicy {
    let record = record_txts.map(evaluate_record_set);
    let record_id = match &record {
        Some(Ok(r)) => Some(r.id.clone()),
        _ => None,
    };

    match cache.decide(domain, record_id.as_deref(), now) {
        CacheDecision::UseCached(entry) | CacheDecision::UseCachedDespiteDns(entry) => {
            ResolvedPolicy::Active {
                policy: entry.policy,
                from_cache: true,
                stale: false,
            }
        }
        CacheDecision::Fetch(_) => {
            let record = match record {
                // The record *lookup failed* (SERVFAIL-class). With a
                // fresh entry we never reach this arm (the cache answers
                // `UseCachedDespiteDns`); with a retained expired entry
                // the §3.3 stale fallback keeps governing — a sender
                // cannot tell attacker-blocked DNS from an outage, and
                // genuine removal (NXDOMAIN → `NoRecord` below) is the
                // path that releases the domain. Disposal of truly dead
                // entries belongs to `PolicyCache::evict_expired`.
                None => {
                    return match cache.peek(domain) {
                        Some(entry) => ResolvedPolicy::Active {
                            policy: entry.policy.clone(),
                            from_cache: true,
                            stale: true,
                        },
                        None => ResolvedPolicy::NotApplicable,
                    }
                }
                Some(Err(RecordError::NoRecord)) => return ResolvedPolicy::NotApplicable,
                Some(Err(e)) => return ResolvedPolicy::RecordInvalid(e),
                Some(Ok(r)) => r,
            };
            match fetch() {
                Ok(body) => match parse_policy(&body) {
                    Ok(policy) => {
                        cache.store(domain.clone(), policy.clone(), &record.id, now);
                        ResolvedPolicy::Active {
                            policy,
                            from_cache: false,
                            stale: false,
                        }
                    }
                    Err(e) => stale_or(cache, domain, now, format!("policy parse failure: {e:?}")),
                },
                Err(e) => stale_or(cache, domain, now, format!("policy fetch failure: {e}")),
            }
        }
    }
}

/// RFC 8461 §3.3: when a refresh fails, a **still-fresh** cached policy
/// continues to govern; an expired one never resurrects.
fn stale_or(
    cache: &PolicyCache,
    domain: &DomainName,
    now: SimInstant,
    reason: String,
) -> ResolvedPolicy {
    match cache.peek(domain).filter(|e| e.is_fresh(now)) {
        Some(entry) => ResolvedPolicy::Active {
            policy: entry.policy.clone(),
            from_cache: true,
            stale: true,
        },
        None => ResolvedPolicy::Unavailable { reason },
    }
}

/// Maps a resolution plus attempt evidence to the TLSRPT outcome for
/// one terminal delivery (soft failure typed in engine order) or
/// policy bounce.
pub fn report_outcome(
    resolution: Option<&ResolvedPolicy>,
    soft_failure: Option<&StsFailure>,
) -> mtasts::StsOutcome {
    use mtasts::StsOutcome;
    match resolution {
        None | Some(ResolvedPolicy::NotApplicable) => StsOutcome::NotApplicable,
        Some(ResolvedPolicy::RecordInvalid(e)) => StsOutcome::RecordInvalid(e.clone()),
        Some(ResolvedPolicy::Unavailable { reason }) => StsOutcome::PolicyUnavailable {
            reason: reason.clone(),
        },
        Some(ResolvedPolicy::Active {
            policy, from_cache, ..
        }) => match soft_failure {
            Some(failure) => StsOutcome::Failed {
                mode: policy.mode,
                failure: failure.clone(),
                from_cache: *from_cache,
            },
            None => StsOutcome::Validated {
                mode: policy.mode,
                from_cache: *from_cache,
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtasts::{Mode, MxPattern, Policy};
    use netbase::{Duration, SimDate};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn t0() -> SimInstant {
        SimDate::ymd(2024, 6, 1).at_midnight()
    }

    fn record(id: &str) -> Vec<String> {
        vec![format!("v=STSv1; id={id};")]
    }

    const GOOD_POLICY: &str =
        "version: STSv1\r\nmode: enforce\r\nmx: mx.example.com\r\nmax_age: 604800\r\n";

    #[test]
    fn first_contact_fetches_and_stores() {
        let mut cache = PolicyCache::new();
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&record("a1")),
            || Ok(GOOD_POLICY.to_string()),
            t0(),
        );
        assert!(
            matches!(&r, ResolvedPolicy::Active { from_cache: false, stale: false, policy } if policy.mode == Mode::Enforce)
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fresh_hit_never_calls_fetch() {
        let mut cache = PolicyCache::new();
        let _ = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&record("a1")),
            || Ok(GOOD_POLICY.to_string()),
            t0(),
        );
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&record("a1")),
            || panic!("fresh hit must not fetch"),
            t0() + Duration::days(1),
        );
        assert!(matches!(
            r,
            ResolvedPolicy::Active {
                from_cache: true,
                stale: false,
                ..
            }
        ));
    }

    #[test]
    fn dns_outage_with_fresh_cache_keeps_enforcing() {
        // Record lookup fails entirely; the TOFU cache still governs.
        let mut cache = PolicyCache::new();
        let _ = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&record("a1")),
            || Ok(GOOD_POLICY.to_string()),
            t0(),
        );
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            None,
            || panic!("no record id, fresh cache: no fetch"),
            t0() + Duration::days(2),
        );
        assert!(matches!(
            r,
            ResolvedPolicy::Active {
                from_cache: true,
                ..
            }
        ));
    }

    #[test]
    fn id_change_with_failed_fetch_falls_back_stale() {
        let mut cache = PolicyCache::new();
        let _ = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&record("a1")),
            || Ok(GOOD_POLICY.to_string()),
            t0(),
        );
        // The id rolled but the policy host is dark: §3.3 says keep the
        // fresh cached policy.
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&record("a2")),
            || Err("tcp reset".to_string()),
            t0() + Duration::hours(1),
        );
        assert!(matches!(
            r,
            ResolvedPolicy::Active {
                from_cache: true,
                stale: true,
                ..
            }
        ));
    }

    #[test]
    fn garbage_refresh_document_falls_back_stale() {
        let mut cache = PolicyCache::new();
        let _ = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&record("a1")),
            || Ok(GOOD_POLICY.to_string()),
            t0(),
        );
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&record("a2")),
            || Ok("<html>defaced</html>".to_string()),
            t0() + Duration::hours(1),
        );
        assert!(matches!(
            r,
            ResolvedPolicy::Active {
                from_cache: true,
                stale: true,
                ..
            }
        ));
    }

    #[test]
    fn expired_entry_never_resurrects() {
        let mut cache = PolicyCache::new();
        cache.store(
            n("example.com"),
            Policy::new(
                Mode::Enforce,
                3600,
                vec![MxPattern::parse("mx.example.com").unwrap()],
            ),
            "a1",
            t0(),
        );
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&record("a1")),
            || Err("tcp reset".to_string()),
            t0() + Duration::days(1),
        );
        assert!(matches!(r, ResolvedPolicy::Unavailable { .. }));
    }

    #[test]
    fn dns_outage_at_expiry_keeps_stale_policy() {
        // Regression for the stale-fallback erasure: DNS outage
        // coinciding with cache expiry used to evict the entry inside
        // `decide`, so enforcement silently dropped to opportunistic at
        // the exact moment an attacker blocking DNS would want it to.
        let mut cache = PolicyCache::new();
        cache.store(
            n("example.com"),
            Policy::new(
                Mode::Enforce,
                3600,
                vec![MxPattern::parse("mx.example.com").unwrap()],
            ),
            "a1",
            t0(),
        );
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            None, // lookup failed (SERVFAIL-class), not NXDOMAIN
            || panic!("no valid record: no fetch"),
            t0() + Duration::days(1), // well past max_age
        );
        assert!(
            matches!(
                &r,
                ResolvedPolicy::Active {
                    from_cache: true,
                    stale: true,
                    policy,
                } if policy.mode == Mode::Enforce
            ),
            "expired entry must keep governing through a DNS outage, got {r:?}"
        );
        // Genuine removal (NXDOMAIN → empty record set) still releases
        // the domain even with the entry retained.
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&[]),
            || panic!("no record: no fetch"),
            t0() + Duration::days(1),
        );
        assert_eq!(r, ResolvedPolicy::NotApplicable);
    }

    #[test]
    fn no_record_and_invalid_record_resolve_as_undeployed() {
        let mut cache = PolicyCache::new();
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&[]),
            || panic!("no record: no fetch"),
            t0(),
        );
        assert_eq!(r, ResolvedPolicy::NotApplicable);
        let r = resolve_domain(
            &mut cache,
            &n("example.com"),
            Some(&["v=STSv1".to_string()]),
            || panic!("invalid record: no fetch"),
            t0(),
        );
        assert!(matches!(r, ResolvedPolicy::RecordInvalid(_)));
    }

    #[test]
    fn report_outcome_types_soft_failures() {
        let active = ResolvedPolicy::Active {
            policy: Policy::new(
                Mode::Testing,
                604_800,
                vec![MxPattern::parse("mx.example.com").unwrap()],
            ),
            from_cache: true,
            stale: false,
        };
        let out = report_outcome(Some(&active), Some(&StsFailure::StartTlsUnavailable));
        assert!(matches!(
            out,
            mtasts::StsOutcome::Failed {
                mode: Mode::Testing,
                failure: StsFailure::StartTlsUnavailable,
                from_cache: true,
            }
        ));
        assert!(matches!(
            report_outcome(Some(&active), None),
            mtasts::StsOutcome::Validated { .. }
        ));
        assert!(matches!(
            report_outcome(None, None),
            mtasts::StsOutcome::NotApplicable
        ));
    }
}
