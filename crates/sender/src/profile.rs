//! Sender behaviour profiles, calibrated to §6.2.
//!
//! Of the 2,394 sender domains in the paper's dataset: 94.6% support TLS,
//! 93.2% are purely opportunistic, 1.3% always require PKIX-valid
//! certificates; 19.6% validate MTA-STS, 29.8% validate DANE, 8.5% both,
//! and 2.6% carry the milter bug that prefers MTA-STS over DANE.

use netbase::{DetRng, DomainName};
use serde::Serialize;

/// Transport-security posture of a sending MTA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TlsSupport {
    /// Plaintext only (the 5.4% without TLS).
    None,
    /// STARTTLS when offered, any certificate accepted.
    Opportunistic,
    /// STARTTLS required with PKIX-valid certificates, always.
    PkixAlways,
}

/// One sending domain's behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SenderProfile {
    /// The sender's domain.
    pub domain: DomainName,
    /// Transport posture.
    pub tls: TlsSupport,
    /// Whether MTA-STS policies are fetched and enforced.
    pub validates_mtasts: bool,
    /// Whether DANE TLSA records are validated.
    pub validates_dane: bool,
    /// The known milter bug: when both protocols apply, MTA-STS wins
    /// (RFC 8461 §2 says DANE should; footnote 11 of the paper).
    pub prefers_mtasts_over_dane: bool,
    /// The mail operator actually running this sender's MTA (EHLO
    /// attribution; §6.1's concentration statistics).
    pub operator: &'static str,
}

/// Calibration: sender-count targets from §6.1-6.2.
pub mod calib {
    /// Unique sender domains in the dataset.
    pub const SENDER_DOMAINS: u64 = 2_394;
    /// Individual deliverability tests.
    pub const TOTAL_TESTS: u64 = 3_806;
    /// P(TLS supported) = 2,264/2,394.
    pub const TLS_RATE: f64 = 2_264.0 / 2_394.0;
    /// P(PKIX always | TLS) — 31 domains.
    pub const PKIX_ALWAYS: u64 = 31;
    /// Senders validating MTA-STS: 469 (19.6%).
    pub const MTASTS_VALIDATORS: u64 = 469;
    /// Senders validating DANE: 714 (29.8%).
    pub const DANE_VALIDATORS: u64 = 714;
    /// Senders validating both: 203 (8.5%).
    pub const BOTH_VALIDATORS: u64 = 203;
    /// Buggy preference for MTA-STS over DANE: 62 (2.6%).
    pub const PREFER_MTASTS: u64 = 62;
    /// Operator shares of EHLO interactions (§6.1): outlook 26.31%,
    /// google 23.03%, the rest of the top 10 ≈ 11.4%, long tail the rest.
    pub const OPERATOR_WEIGHTS: [(&str, f64); 4] = [
        ("outlook.com", 26.31),
        ("google.com", 23.03),
        ("top10-other", 11.36),
        ("long-tail", 39.30),
    ];
}

/// The generated sender population.
#[derive(Debug, Clone)]
pub struct SenderPopulation {
    /// All profiles, in deterministic order.
    pub profiles: Vec<SenderProfile>,
}

impl SenderPopulation {
    /// Generates `n` senders (use [`calib::SENDER_DOMAINS`] for the
    /// paper's population) from a seed.
    pub fn generate(seed: u64, n: u64) -> SenderPopulation {
        let root = DetRng::new(seed).fork("senders");
        let scale = n as f64 / calib::SENDER_DOMAINS as f64;
        let scaled = |count: u64| ((count as f64 * scale).round() as u64).min(n);

        // Deterministic quota assignment over a shuffled order: exact
        // counts rather than binomial noise, matching how the paper
        // reports absolute numbers.
        let mut profiles: Vec<SenderProfile> = (0..n)
            .map(|i| {
                let domain: DomainName = format!("sender{i:04}.example")
                    .parse()
                    .expect("generated names are valid");
                let operator = {
                    let weights: Vec<f64> =
                        calib::OPERATOR_WEIGHTS.iter().map(|(_, w)| *w).collect();
                    let idx = root
                        .fork(&format!("op/{i}"))
                        .weighted_index("operator", &weights);
                    calib::OPERATOR_WEIGHTS[idx].0
                };
                SenderProfile {
                    domain,
                    tls: TlsSupport::Opportunistic,
                    validates_mtasts: false,
                    validates_dane: false,
                    prefers_mtasts_over_dane: false,
                    operator,
                }
            })
            .collect();

        // Quotas, assigned over a deterministic shuffle.
        let mut order: Vec<usize> = (0..profiles.len()).collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut root.stream_for("quota-order"));

        let no_tls = n - scaled((calib::TLS_RATE * calib::SENDER_DOMAINS as f64) as u64);
        let pkix_always = scaled(calib::PKIX_ALWAYS);
        let both = scaled(calib::BOTH_VALIDATORS);
        let mtasts_only = scaled(calib::MTASTS_VALIDATORS).saturating_sub(both);
        let dane_only = scaled(calib::DANE_VALIDATORS).saturating_sub(both);
        let prefer = scaled(calib::PREFER_MTASTS);

        let mut cursor = order.into_iter();
        for _ in 0..no_tls {
            if let Some(i) = cursor.next() {
                profiles[i].tls = TlsSupport::None;
            }
        }
        for _ in 0..pkix_always {
            if let Some(i) = cursor.next() {
                profiles[i].tls = TlsSupport::PkixAlways;
            }
        }
        let mut both_indices = Vec::new();
        for _ in 0..both {
            if let Some(i) = cursor.next() {
                profiles[i].validates_mtasts = true;
                profiles[i].validates_dane = true;
                both_indices.push(i);
            }
        }
        for _ in 0..mtasts_only {
            if let Some(i) = cursor.next() {
                profiles[i].validates_mtasts = true;
            }
        }
        for _ in 0..dane_only {
            if let Some(i) = cursor.next() {
                profiles[i].validates_dane = true;
            }
        }
        // The preference bug lives among the both-validators.
        for &i in both_indices.iter().take(prefer as usize) {
            profiles[i].prefers_mtasts_over_dane = true;
        }
        SenderPopulation { profiles }
    }

    /// Number of senders.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_population_hits_paper_counts() {
        let pop = SenderPopulation::generate(9, calib::SENDER_DOMAINS);
        assert_eq!(pop.len() as u64, calib::SENDER_DOMAINS);
        let tls = pop
            .profiles
            .iter()
            .filter(|p| p.tls != TlsSupport::None)
            .count() as u64;
        assert_eq!(tls, 2_264);
        let pkix = pop
            .profiles
            .iter()
            .filter(|p| p.tls == TlsSupport::PkixAlways)
            .count() as u64;
        assert_eq!(pkix, 31);
        let mtasts = pop.profiles.iter().filter(|p| p.validates_mtasts).count() as u64;
        assert_eq!(mtasts, calib::MTASTS_VALIDATORS);
        let dane = pop.profiles.iter().filter(|p| p.validates_dane).count() as u64;
        assert_eq!(dane, calib::DANE_VALIDATORS);
        let both = pop
            .profiles
            .iter()
            .filter(|p| p.validates_mtasts && p.validates_dane)
            .count() as u64;
        assert_eq!(both, calib::BOTH_VALIDATORS);
        let prefer = pop
            .profiles
            .iter()
            .filter(|p| p.prefers_mtasts_over_dane)
            .count() as u64;
        assert_eq!(prefer, calib::PREFER_MTASTS);
        // The bug only occurs among both-validators.
        assert!(pop
            .profiles
            .iter()
            .filter(|p| p.prefers_mtasts_over_dane)
            .all(|p| p.validates_mtasts && p.validates_dane));
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = SenderPopulation::generate(9, 500);
        let b = SenderPopulation::generate(9, 500);
        assert_eq!(a.profiles, b.profiles);
        let c = SenderPopulation::generate(10, 500);
        assert_ne!(a.profiles, c.profiles);
    }

    #[test]
    fn operator_concentration() {
        let pop = SenderPopulation::generate(3, calib::SENDER_DOMAINS);
        let outlook = pop
            .profiles
            .iter()
            .filter(|p| p.operator == "outlook.com")
            .count() as f64;
        let share = outlook / pop.len() as f64;
        assert!((0.22..0.31).contains(&share), "{share}");
    }
}
